"""Fault-injection layer tests (repro.faults; docs/ROBUSTNESS.md).

Covers the spec grammar, plan determinism, the taxi-level fault
primitives, the engine's recovery policy on engineered micro-scenarios
(breakdown -> continuation, pre-pickup cancellation, zonal shock), and
the two run-level guarantees: faulted runs are deterministic for a
given fault seed, and the request-accounting identity closes under
churn for every scheme.  The session-wide conftest fixture arms the
runtime contracts, so every simulation here also exercises the
schedule/clock/accounting invariants.
"""

from __future__ import annotations

import math

import pytest

from repro.config import SystemConfig
from repro.baselines.nosharing import NoSharing
from repro.core.payment import PaymentModel
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    RequestCancellation,
    ShockWindow,
    TaxiBreakdown,
    build_fault_plan,
    format_fault_spec,
    parse_fault_spec,
)
from repro.faults.recovery import CONTINUATION_ID_BASE, continuation_request
from repro.fleet.schedule import dropoff, pickup, remove_request_stops
from repro.fleet.taxi import Taxi, TaxiError, TaxiRoute, build_route
from repro.sim.engine import Simulator
from tests.conftest import make_request


class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = parse_fault_spec(
            "seed=3,breakdown_rate=0.05,cancel_rate=0.1,shock_windows=2,"
            "shock_delay_s=120,shock_duration_s=600,shock_radius_frac=0.25,"
            "continuation_rho=2.0,continuation_wait_s=900"
        )
        assert spec.seed == 3
        assert spec.breakdown_rate == 0.05
        assert spec.cancel_rate == 0.1
        assert spec.shock_windows == 2
        assert spec.shock_delay_s == 120.0
        assert spec.continuation_rho == 2.0
        assert spec.enabled

    def test_parse_empty_is_all_off(self):
        spec = parse_fault_spec("")
        assert spec == FaultSpec()
        assert not spec.enabled

    def test_seed_alone_is_disabled(self):
        assert not parse_fault_spec("seed=42").enabled

    @pytest.mark.parametrize(
        "text",
        ["breakdown", "rate=0.1", "breakdown_rate=lots", "breakdown_rate=1.5"],
    )
    def test_parse_rejects_bad_entries(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cancel_rate": -0.1},
            {"shock_windows": -1},
            {"shock_delay_s": -1.0},
            {"continuation_rho": 0.5},
            {"continuation_wait_s": -1.0},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_format_roundtrip(self):
        spec = FaultSpec(seed=7, breakdown_rate=0.2, shock_windows=1)
        assert parse_fault_spec(format_fault_spec(spec)) == spec
        assert format_fault_spec(FaultSpec()) == ""


class TestFaultPlan:
    @pytest.fixture(scope="class")
    def workload(self, test_scenario):
        return test_scenario.make_fleet(10, seed=1), test_scenario.requests()

    def test_same_spec_same_plan(self, test_scenario, workload):
        taxis, requests = workload
        spec = FaultSpec(seed=5, breakdown_rate=0.3, cancel_rate=0.2, shock_windows=2)
        a = build_fault_plan(spec, taxis, requests, test_scenario.network)
        b = build_fault_plan(spec, taxis, requests, test_scenario.network)
        assert a.fingerprint() == b.fingerprint()
        assert a.num_events > 0

    def test_different_seed_different_plan(self, test_scenario, workload):
        taxis, requests = workload
        plans = [
            build_fault_plan(
                FaultSpec(seed=s, breakdown_rate=0.5, cancel_rate=0.5),
                taxis, requests, test_scenario.network,
            )
            for s in (1, 2)
        ]
        assert plans[0].fingerprint() != plans[1].fingerprint()

    def test_events_sorted_and_in_range(self, test_scenario, workload):
        taxis, requests = workload
        spec = FaultSpec(seed=9, breakdown_rate=0.5, cancel_rate=0.5, shock_windows=3)
        plan = build_fault_plan(spec, taxis, requests, test_scenario.network)
        times = [e.time for e in plan.breakdowns]
        assert times == sorted(times)
        cancel_times = [e.time for e in plan.cancellations]
        assert cancel_times == sorted(cancel_times)
        by_id = {r.request_id: r for r in requests}
        for event in plan.cancellations:
            request = by_id[event.request_id]
            # Strictly after release and inside the waiting window.
            assert request.release_time < event.time
            assert event.time <= request.release_time + request.max_wait + 1e-9
        for window in plan.shocks:
            assert window.end == window.start + spec.shock_duration_s
            assert window.delay_s == spec.shock_delay_s

    def test_all_off_spec_builds_empty_plan(self, test_scenario, workload):
        taxis, requests = workload
        plan = build_fault_plan(FaultSpec(seed=1), taxis, requests, test_scenario.network)
        assert plan.empty
        assert plan.num_events == 0

    def test_scenario_fault_plan_helper(self, test_scenario, workload):
        taxis, requests = workload
        assert test_scenario.fault_plan(None, taxis, requests) is None
        assert test_scenario.fault_plan("seed=4", taxis, requests) is None
        plan = test_scenario.fault_plan("seed=4,breakdown_rate=0.5", taxis, requests)
        assert isinstance(plan, FaultPlan)
        assert plan.breakdowns
        with pytest.raises(TypeError):
            test_scenario.fault_plan(123, taxis, requests)


def straight_route(nodes, start_time, per_hop, stop_positions=()):
    times = [start_time + i * per_hop for i in range(len(nodes))]
    return TaxiRoute(nodes=list(nodes), times=times, stop_positions=list(stop_positions))


class TestTaxiFaultPrimitives:
    def test_break_down_sheds_commitments(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r0 = make_request(request_id=0, origin=0, destination=8,
                          direct_cost=tiny_engine.cost(0, 8), rho=2.5)
        r1 = make_request(request_id=1, origin=1, destination=7,
                          direct_cost=tiny_engine.cost(1, 7), rho=2.5)
        stops = [pickup(r0), pickup(r1), dropoff(r1), dropoff(r0)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.assign(r0)
        taxi.assign(r1)
        taxi.set_plan(stops, route)
        # Advance far enough to pick up r0 only (it boards at the start).
        taxi.advance(1e-6)
        assert taxi.occupancy == 1

        onboard, assigned = taxi.break_down()
        assert [r.request_id for r in onboard] == [0]
        assert [r.request_id for r in assigned] == [1]
        assert taxi.out_of_service
        assert taxi.idle and taxi.occupancy == 0 and taxi.committed == 0
        assert taxi.route.empty and taxi.pending_stops() == []

    def test_out_of_service_rejects_new_work(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.break_down()
        r = make_request()
        with pytest.raises(TaxiError):
            taxi.assign(r)
        with pytest.raises(TaxiError):
            taxi.set_plan([], TaxiRoute())

    def test_unassign(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request(num_passengers=2)
        taxi.assign(r)
        assert taxi.committed == 2
        taxi.unassign(r)
        assert taxi.committed == 0
        with pytest.raises(TaxiError):
            taxi.unassign(r)

    def test_apply_delay_shifts_remaining_route(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.set_plan([], straight_route([0, 1, 2, 3], 0.0, 10.0))
        taxi.advance(15.0)  # cursor past nodes 0 and 1
        assert taxi.apply_delay(100.0)
        assert taxi.route.times == [0.0, 10.0, 120.0, 130.0]

    def test_apply_delay_noop_cases(self):
        idle = Taxi(taxi_id=0, capacity=3, loc=0)
        assert not idle.apply_delay(60.0)  # no route at all
        cruising = Taxi(taxi_id=1, capacity=3, loc=0)
        cruising.set_plan([], straight_route([0, 1], 0.0, 10.0))
        assert not cruising.apply_delay(0.0)  # non-positive delay
        cruising.advance(1e9)  # route fully consumed
        assert not cruising.apply_delay(60.0)

    def test_remove_request_stops(self):
        r0 = make_request(request_id=0)
        r1 = make_request(request_id=1)
        stops = [pickup(r0), pickup(r1), dropoff(r0), dropoff(r1)]
        remaining = remove_request_stops(stops, 0)
        assert [s.request.request_id for s in remaining] == [1, 1]
        assert remove_request_stops(stops, 99) == stops


class TestContinuationRequest:
    def test_builds_valid_request(self, tiny_engine):
        original = make_request(origin=0, destination=8,
                                direct_cost=tiny_engine.cost(0, 8), rho=1.3,
                                num_passengers=2)
        cont = continuation_request(
            tiny_engine, original, CONTINUATION_ID_BASE, origin=4, now=500.0,
            rho=1.5, wait_s=600.0,
        )
        assert cont is not None
        assert cont.request_id == CONTINUATION_ID_BASE
        assert cont.origin == 4
        assert cont.destination == original.destination
        assert cont.release_time == 500.0
        assert cont.num_passengers == 2
        assert not cont.offline
        assert cont.direct_cost == pytest.approx(tiny_engine.cost(4, 8))
        # Validity: the deadline leaves a positive waiting budget.
        assert cont.deadline >= cont.release_time + cont.direct_cost + 600.0 - 1e-9

    def test_unreachable_vertex_returns_none(self):
        class DeadEngine:
            def cost(self, u, v):
                return math.inf

        original = make_request(origin=0, destination=8)
        assert continuation_request(
            DeadEngine(), original, CONTINUATION_ID_BASE, 4, 0.0, 1.5, 600.0
        ) is None


# ----------------------------------------------------------------------
# engineered micro-scenarios on the 10x10 city
# ----------------------------------------------------------------------
@pytest.fixture()
def micro(small_net, small_engine):
    """A NoSharing dispatcher over the small city with a wide search range."""
    width = small_net.xy[:, 0].max() - small_net.xy[:, 0].min()
    config = SystemConfig(search_range_m=float(width) * 2.0,
                          speed_mps=small_net.speed_mps)
    return NoSharing(small_net, small_engine, config)


def _trip_request(engine, request_id, origin, destination, release_time=0.0,
                  rho=3.0):
    return make_request(
        request_id=request_id, release_time=release_time, origin=origin,
        destination=destination, direct_cost=engine.cost(origin, destination),
        rho=rho,
    )


def _plan(breakdowns=(), cancellations=(), shocks=(), **spec_kwargs):
    spec_kwargs.setdefault("breakdown_rate", 1.0 if breakdowns else 0.0)
    spec_kwargs.setdefault("cancel_rate", 1.0 if cancellations else 0.0)
    return FaultPlan(
        spec=FaultSpec(**spec_kwargs),
        breakdowns=tuple(breakdowns),
        cancellations=tuple(cancellations),
        shocks=tuple(shocks),
    )


class TestBreakdownRecovery:
    def test_onboard_passenger_continues_on_second_taxi(self, micro, small_engine):
        # Taxi 0 parks at the request origin and wins the match; taxi 1
        # waits at the far corner and must pick up the continuation.
        request = _trip_request(small_engine, 0, origin=0, destination=99)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0),
                 Taxi(taxi_id=1, capacity=3, loc=99)]
        plan = _plan(breakdowns=[TaxiBreakdown(time=120.0, taxi_id=0)],
                     continuation_wait_s=3600.0)
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()

        assert m.breakdowns == 1
        assert m.continuations == 1
        assert m.reassigned == 1
        assert m.stranded == 0
        assert m.served_online == 1  # the root request keeps its bucket
        assert fleet[0].out_of_service
        # The continuation was delivered by the surviving taxi.
        cont_trips = [t for t in sim.log.trips.values()
                      if t.request.request_id >= CONTINUATION_ID_BASE]
        assert len(cont_trips) == 1
        assert cont_trips[0].taxi_id == 1
        assert cont_trips[0].completed
        assert cont_trips[0].request.destination == request.destination
        assert m.counters.get("fault.breakdowns") == 1
        assert m.counters.get("fault.continuations") == 1

    def test_no_spare_taxi_strands_passenger(self, micro, small_engine):
        request = _trip_request(small_engine, 0, origin=0, destination=99)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0)]
        plan = _plan(breakdowns=[TaxiBreakdown(time=120.0, taxi_id=0)])
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()

        assert m.breakdowns == 1
        assert m.stranded_online == 1
        assert m.served_online == 0
        assert m.reassigned == 0
        m.check_balance()

    def test_assigned_request_redispatches(self, micro, small_engine):
        # Taxi 0 is nearer and wins; it dies before reaching the pick-up
        # (the first fault boundary is the t=60 drain step, well before
        # its ~2-hop approach ends), so the request is re-dispatched
        # as-is to taxi 1.
        request = _trip_request(small_engine, 0, origin=11, destination=99,
                                rho=6.0)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0),
                 Taxi(taxi_id=1, capacity=3, loc=55)]
        plan = _plan(breakdowns=[TaxiBreakdown(time=30.0, taxi_id=0)])
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()

        assert m.breakdowns == 1
        assert m.reassigned == 1
        assert m.continuations == 0  # nobody was aboard yet
        assert m.served_online == 1
        trip = sim.log.trips[0]
        assert trip.taxi_id == 1
        assert trip.completed

    def test_breakdown_of_idle_taxi_only_counts(self, micro, small_engine):
        request = _trip_request(small_engine, 0, origin=0, destination=9)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0),
                 Taxi(taxi_id=1, capacity=3, loc=55)]
        # Taxi 1 never gets work; its breakdown must not touch accounting.
        plan = _plan(breakdowns=[TaxiBreakdown(time=60.0, taxi_id=1)])
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()
        assert m.breakdowns == 1
        assert m.served_online == 1
        assert m.stranded == 0 and m.reassigned == 0
        m.check_balance()


class TestBreakdownOnRebalanceCruise:
    """A breakdown mid-repositioning-cruise (ISSUE/PR 10 satellite).

    A cruising taxi carries nobody and owes nobody: its breakdown must
    not settle a phantom payment episode, must evict the taxi from
    every supply index (it was *idle*, hence indexed), and must retire
    the in-flight destination so later rebalance ticks do not credit a
    dead cruise.
    """

    def test_cruising_breakdown_is_clean(self, test_scenario):
        scheme = test_scenario.make_scheme("mt-share")
        fleet = test_scenario.make_fleet(2, seed=1)
        rebalance = test_scenario.rebalance_policy("on")
        sim = Simulator(scheme, fleet, [], payment=PaymentModel(),
                        rebalance=rebalance)
        sim.stream_begin()
        taxi = fleet[0]
        # Steer taxi 0 toward some other partition's landmark, exactly
        # as the rebalance tick handler would.
        home = rebalance.partition_of(taxi.loc)
        target = next(
            z for z in range(rebalance.landmarks.num_partitions)
            if z != home and rebalance.cruise_route(taxi.loc, 0.0, z) is not None
        )
        taxi.set_plan([], rebalance.cruise_route(taxi.loc, 0.0, target))
        sim._rebalance_dest[taxi.taxi_id] = target
        scheme.on_taxi_replanned(taxi, 0.0)
        assert taxi.cruising

        sim._handle_breakdown(taxi, 30.0)

        assert taxi.out_of_service and taxi.route.empty
        assert sim._rebalance_dest == {}
        # Nobody was aboard or assigned: no salvage, no stranding.
        m = sim.stream_finish()
        assert m.breakdowns == 1
        assert m.continuations == 0 and m.reassigned == 0 and m.stranded == 0
        # No phantom episode settlement: the payment aggregates never moved.
        assert m.regular_fares == 0.0 and m.shared_fares == 0.0
        assert m.unsettled_episodes == 0
        assert m.counters.get("rebalance.broken") == 1
        # The partition index no longer advertises the dead taxi's supply.
        for z in range(rebalance.landmarks.num_partitions):
            assert taxi.taxi_id not in [
                tid for tid, _ in scheme._pindex.taxis_in(z)
            ]
        m.check_balance()

    def test_chaos_with_rebalancing_is_deterministic(self, test_scenario):
        def one_run():
            scheme = test_scenario.make_scheme("mt-share")
            fleet = test_scenario.make_fleet(25, seed=1)
            requests = test_scenario.requests()
            plan = test_scenario.fault_plan(
                "seed=5,breakdown_rate=0.3,cancel_rate=0.2,shock_windows=1",
                fleet, requests,
            )
            return Simulator(
                scheme, fleet, requests, payment=PaymentModel(), faults=plan,
                rebalance=test_scenario.rebalance_policy("cadence_s=120,max_moves=6"),
            ).run()

        from tests.test_runner_parallel import decision_fingerprint

        a = one_run()
        b = one_run()
        assert decision_fingerprint(a) == decision_fingerprint(b)
        assert a.breakdowns > 0
        assert a.counters.get("rebalance.ticks", 0) > 0
        a.check_balance()


class TestCancellation:
    def test_pre_pickup_cancel_frees_the_taxi(self, micro, small_engine):
        # The taxi starts far away, so the cancel at t=30 lands before
        # the pick-up; the plan is torn down and the taxi parks.
        request = _trip_request(small_engine, 0, origin=55, destination=99,
                                rho=6.0)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0)]
        plan = _plan(cancellations=[RequestCancellation(time=30.0, request_id=0)])
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()

        assert m.cancelled_online == 1
        assert m.served_online == 0
        assert m.completed == 0
        assert fleet[0].idle and not fleet[0].assigned
        assert not fleet[0].out_of_service
        m.check_balance()

    def test_post_pickup_cancel_is_too_late(self, micro, small_engine):
        request = _trip_request(small_engine, 0, origin=0, destination=99)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0)]
        # Passengers board immediately at t=0; a cancel at t=60 is a no-op.
        plan = _plan(cancellations=[RequestCancellation(time=60.0, request_id=0)])
        sim = Simulator(micro, fleet, [request], payment=PaymentModel(), faults=plan)
        m = sim.run()

        assert m.cancelled == 0
        assert m.served_online == 1
        assert m.completed == 1

    def test_cancel_of_unmatched_request_is_noop(self, micro, small_engine):
        request = _trip_request(small_engine, 0, origin=0, destination=99)
        plan = _plan(cancellations=[RequestCancellation(time=30.0, request_id=0)])
        sim = Simulator(micro, [], [request], payment=PaymentModel(), faults=plan)
        m = sim.run()
        assert m.unserved_online == 1
        assert m.cancelled == 0
        m.check_balance()


class TestShockWindows:
    def _run(self, micro, small_engine, small_net, shocks):
        request = _trip_request(small_engine, 0, origin=0, destination=99)
        fleet = [Taxi(taxi_id=0, capacity=3, loc=0)]
        sim = Simulator(
            micro, fleet, [request], payment=PaymentModel(),
            faults=_plan(shocks=shocks, shock_windows=1) if shocks else None,
        )
        m = sim.run()
        return m, sim.log.trips[0]

    def test_shock_delays_the_dropoff(self, micro, small_engine, small_net):
        xy = small_net.xy
        everywhere = ShockWindow(
            start=0.0, end=3600.0,
            cx=float(xy[:, 0].mean()), cy=float(xy[:, 1].mean()),
            radius_m=1e9, delay_s=240.0,
        )
        plain, plain_trip = self._run(micro, small_engine, small_net, None)
        shocked, shocked_trip = self._run(micro, small_engine, small_net, [everywhere])
        assert shocked.shock_delays == 1
        assert shocked_trip.dropoff_time == pytest.approx(
            plain_trip.dropoff_time + 240.0
        )
        assert shocked.counters.get("fault.shock_delays") == 1

    def test_disc_outside_taxi_is_untouched(self, micro, small_engine, small_net):
        far = ShockWindow(start=0.0, end=3600.0, cx=-1e7, cy=-1e7,
                          radius_m=10.0, delay_s=240.0)
        m, trip = self._run(micro, small_engine, small_net, [far])
        assert m.shock_delays == 0
        assert trip.completed


# ----------------------------------------------------------------------
# run-level guarantees on the shared scenarios
# ----------------------------------------------------------------------
CHAOS = "seed=7,breakdown_rate=0.3,cancel_rate=0.15,shock_windows=2"

#: Wall-clock-derived summary keys; everything else must match exactly.
MEASURED_KEYS = frozenset(
    {"response_ms", "stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"}
)


def _run_faulted(scenario, scheme, faults, num_taxis=15):
    requests = scenario.requests()
    fleet = scenario.make_fleet(num_taxis, seed=1)
    plan = scenario.fault_plan(faults, fleet, requests)
    sim = Simulator(
        scenario.make_scheme(scheme), fleet, requests,
        payment=PaymentModel(), faults=plan,
    )
    metrics = sim.run()
    trips = {
        rid: (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
        for rid, t in sim.log.trips.items()
    }
    return metrics, trips


class TestFaultedRuns:
    @pytest.mark.parametrize("name", ["no-sharing", "t-share", "pgreedydp", "mt-share"])
    def test_balance_closes_under_churn(self, test_scenario, name):
        m, _trips = _run_faulted(test_scenario, name, CHAOS)
        assert m.breakdowns > 0
        assert m.cancelled + m.reassigned + m.shock_delays > 0
        m.check_balance()  # served + failed + cancelled + stranded == total

    def test_offline_buckets_close_under_churn(self, test_nonpeak_scenario):
        m, _trips = _run_faulted(test_nonpeak_scenario, "mt-share", CHAOS)
        assert m.breakdowns > 0
        m.check_balance()

    def test_same_fault_seed_same_run(self, test_scenario):
        a_m, a_trips = _run_faulted(test_scenario, "mt-share", CHAOS)
        b_m, b_trips = _run_faulted(test_scenario, "mt-share", CHAOS)
        assert a_trips == b_trips
        a = {k: v for k, v in a_m.summary().items() if k not in MEASURED_KEYS}
        b = {k: v for k, v in b_m.summary().items() if k not in MEASURED_KEYS}
        assert a == b

    def test_different_fault_seed_diverges(self, test_scenario):
        a_m, _ = _run_faulted(test_scenario, "mt-share", CHAOS)
        b_m, _ = _run_faulted(
            test_scenario, "mt-share",
            "seed=8,breakdown_rate=0.3,cancel_rate=0.15,shock_windows=2",
        )
        assert a_m.summary() != b_m.summary()

    def test_empty_plan_is_bit_identical_to_none(self, test_scenario):
        plain_m, plain_trips = _run_faulted(test_scenario, "mt-share", None)
        empty = FaultPlan(spec=FaultSpec(seed=3))
        requests = test_scenario.requests()
        fleet = test_scenario.make_fleet(15, seed=1)
        sim = Simulator(
            test_scenario.make_scheme("mt-share"), fleet, requests,
            payment=PaymentModel(), faults=empty,
        )
        m = sim.run()
        trips = {
            rid: (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
            for rid, t in sim.log.trips.items()
        }
        assert trips == plain_trips
        a = {k: v for k, v in m.summary().items() if k not in MEASURED_KEYS}
        b = {k: v for k, v in plain_m.summary().items() if k not in MEASURED_KEYS}
        assert a == b

    def test_fault_free_metrics_have_zero_fault_buckets(self, test_scenario):
        m, _trips = _run_faulted(test_scenario, "mt-share", None)
        assert m.breakdowns == 0 and m.cancelled == 0 and m.stranded == 0
        assert m.reassigned == 0 and m.shock_delays == 0
        assert m.unsettled_episodes == 0
        assert m.summary()["cancelled"] == 0
