"""Unit tests for the policy-agnostic discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    DRAIN_TICK,
    REQUEST_RELEASE,
    TIMER,
    Event,
    EventQueue,
    Kernel,
    KernelError,
    RngRegistry,
    ScheduledInPast,
)


class TestEventQueue:
    def test_heap_orders_by_time(self):
        q = EventQueue()
        for i, t in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            q.push(Event(time=t, kind=TIMER, seq=i))
        assert [q.pop().time for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_equal_time_stable_by_seq(self):
        q = EventQueue()
        for i in range(10):
            q.push(Event(time=7.0, kind=TIMER, seq=i, payload=i))
        assert [q.pop().payload for _ in range(10)] == list(range(10))

    def test_priority_breaks_ties_before_seq(self):
        q = EventQueue()
        q.push(Event(time=1.0, kind=TIMER, seq=0, payload="late", priority=1))
        q.push(Event(time=1.0, kind=TIMER, seq=1, payload="early", priority=0))
        assert q.pop().payload == "early"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(Event(time=1.0, kind=TIMER, seq=0))
        assert q.peek().time == 1.0
        assert len(q) == 1
        assert q.peek_time() == 1.0

    def test_empty_queue_raises(self):
        q = EventQueue()
        assert not q
        assert q.peek_time() is None
        with pytest.raises(KernelError):
            q.pop()
        with pytest.raises(KernelError):
            q.peek()


class TestKernelClock:
    def test_clock_commits_monotonically(self):
        kernel = Kernel()
        seen = []
        kernel.subscribe(TIMER, lambda e: seen.append(kernel.now))
        for t in (30.0, 10.0, 20.0):
            kernel.schedule(t, TIMER)
        kernel.run()
        assert seen == [10.0, 20.0, 30.0]
        assert kernel.now == 30.0

    def test_schedule_in_past_refused(self):
        kernel = Kernel()
        kernel.subscribe(TIMER, lambda e: None)
        kernel.schedule(10.0, TIMER)
        kernel.run()
        with pytest.raises(ScheduledInPast):
            kernel.schedule(9.0, TIMER)
        # At the committed clock is fine (same-instant follow-up work).
        kernel.schedule(10.0, TIMER)

    def test_handler_may_schedule_followups(self):
        kernel = Kernel()
        fired = []

        def tick(event):
            fired.append(event.time)
            if event.time < 3.0:
                kernel.schedule(event.time + 1.0, TIMER)

        kernel.subscribe(TIMER, tick)
        kernel.schedule(1.0, TIMER)
        kernel.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_bound_is_exclusive_beyond(self):
        kernel = Kernel()
        fired = []
        kernel.subscribe(TIMER, lambda e: fired.append(e.time))
        for t in (1.0, 2.0, 3.0):
            kernel.schedule(t, TIMER)
        assert kernel.run(until=2.0) == 2
        assert fired == [1.0, 2.0]
        assert kernel.pending == 1
        assert kernel.run() == 1

    def test_max_events_bound(self):
        kernel = Kernel()
        kernel.subscribe(TIMER, lambda e: None)
        for t in range(5):
            kernel.schedule(float(t), TIMER)
        assert kernel.run(max_events=2) == 2
        assert kernel.pending == 3

    def test_step_on_idle_kernel(self):
        assert Kernel().step() is None

    def test_counters(self):
        kernel = Kernel()
        kernel.subscribe(TIMER, lambda e: None)
        kernel.schedule(1.0, TIMER)
        kernel.schedule(2.0, TIMER)
        kernel.run()
        assert kernel.events_scheduled == 2
        assert kernel.events_processed == 2

    def test_handlers_fire_in_subscription_order(self):
        kernel = Kernel()
        order = []
        kernel.subscribe(TIMER, lambda e: order.append("a"))
        kernel.subscribe(TIMER, lambda e: order.append("b"))
        kernel.schedule(1.0, TIMER)
        kernel.run()
        assert order == ["a", "b"]

    def test_kinds_are_isolated(self):
        kernel = Kernel()
        hits = {REQUEST_RELEASE: 0, DRAIN_TICK: 0}

        def make(kind):
            def handler(event):
                hits[kind] += 1
            return handler

        kernel.subscribe(REQUEST_RELEASE, make(REQUEST_RELEASE))
        kernel.subscribe(DRAIN_TICK, make(DRAIN_TICK))
        kernel.schedule(1.0, REQUEST_RELEASE)
        kernel.schedule(2.0, DRAIN_TICK)
        kernel.schedule(3.0, REQUEST_RELEASE)
        kernel.run()
        assert hits == {REQUEST_RELEASE: 2, DRAIN_TICK: 1}


class TestRngRegistry:
    def test_streams_are_deterministic(self):
        a = RngRegistry(42).stream("cruise").random(4).tolist()
        b = RngRegistry(42).stream("cruise").random(4).tolist()
        assert a == b

    def test_streams_differ_by_name_and_seed(self):
        reg = RngRegistry(42)
        assert reg.stream("a").random(4).tolist() != reg.stream("b").random(4).tolist()
        assert (
            RngRegistry(42).stream("a").random(4).tolist()
            != RngRegistry(43).stream("a").random(4).tolist()
        )

    def test_new_consumer_does_not_perturb_existing(self):
        # The property ad-hoc ``seed + k`` schemes lose: draws of one
        # named stream are independent of which other streams exist.
        solo = RngRegistry(7)
        solo_draws = solo.stream("dispatch").random(8).tolist()
        crowded = RngRegistry(7)
        crowded.stream("faults")
        crowded.stream("cruise")
        assert crowded.stream("dispatch").random(8).tolist() == solo_draws

    def test_stream_memoised(self):
        reg = RngRegistry(0)
        assert reg.stream("x") is reg.stream("x")
        assert reg.names() == ["x"]

    def test_kernel_lazy_registry(self):
        kernel = Kernel(seed=5)
        assert kernel.rng.root_seed == 5
        assert kernel.rng is kernel.rng
