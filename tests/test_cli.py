"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_prints_schemes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mt-share" in out
        assert "fig6" in out
        assert "cruising" in out


class TestSimulate:
    def test_simulate_runs(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "no-sharing",
                "--taxis", "10",
                "--requests", "120",
                "--grid", "10",
                "--partitions", "9",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert "response_ms" in out

    def test_simulate_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--scheme", "uber"])

    def test_simulate_nonpeak(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "mt-share",
                "--kind", "nonpeak",
                "--taxis", "10",
                "--requests", "120",
                "--grid", "10",
                "--partitions", "9",
                "--seed", "3",
            ]
        )
        assert code == 0
        assert "served_offline" in capsys.readouterr().out


class TestExperiment:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFaultsFlag:
    def test_simulate_with_faults(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "mt-share",
                "--taxis", "10",
                "--requests", "120",
                "--grid", "10",
                "--partitions", "9",
                "--seed", "3",
                "--faults", "seed=7,breakdown_rate=0.3,cancel_rate=0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault events" in out
        assert "breakdowns" in out  # fault buckets reach the summary

    def test_simulate_rejects_bad_faults_spec(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "no-sharing",
                "--taxis", "5",
                "--requests", "50",
                "--grid", "8",
                "--partitions", "4",
                "--faults", "breakdown_rate=not-a-number",
            ]
        )
        assert code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_simulate_rejects_unknown_faults_key(self, capsys):
        code = main(
            [
                "simulate",
                "--scheme", "no-sharing",
                "--taxis", "5",
                "--requests", "50",
                "--grid", "8",
                "--partitions", "4",
                "--faults", "meteor_rate=0.5",
            ]
        )
        assert code == 2
        assert "meteor_rate" in capsys.readouterr().err
