"""Tests for mobility vectors and the mobility-cluster index."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mobility_cluster import (
    DEFAULT_LAMBDA,
    MobilityClusterIndex,
    MobilityVector,
)


def vec(ox, oy, dx, dy):
    return MobilityVector(ox, oy, dx, dy)


EAST = vec(0, 0, 100, 0)
WEST = vec(0, 0, -100, 0)
NORTH = vec(0, 0, 0, 100)
NORTHEAST = vec(0, 0, 100, 100)


class TestMobilityVector:
    def test_direction(self):
        assert vec(10, 20, 30, 50).direction == (20, 30)

    def test_similarity_identical(self):
        assert EAST.similarity(vec(5, 5, 105, 5)) == pytest.approx(1.0)

    def test_similarity_opposite(self):
        assert EAST.similarity(WEST) == pytest.approx(-1.0)

    def test_similarity_orthogonal(self):
        assert EAST.similarity(NORTH) == pytest.approx(0.0)

    def test_is_aligned_threshold(self):
        assert EAST.is_aligned(NORTHEAST, lam=0.707)  # 45 degrees exactly
        assert not EAST.is_aligned(NORTH, lam=0.707)

    def test_default_lambda_is_cos45(self):
        assert DEFAULT_LAMBDA == pytest.approx(math.cos(math.radians(45)), abs=1e-3)


class TestClusterIndexRequests:
    def test_first_request_founds_cluster(self):
        idx = MobilityClusterIndex()
        cid = idx.add_request(1, EAST)
        assert idx.num_clusters == 1
        assert idx.cluster_of_request(1) == cid
        assert idx.members_of(cid) == {1}

    def test_aligned_request_joins(self):
        idx = MobilityClusterIndex()
        cid = idx.add_request(1, EAST)
        cid2 = idx.add_request(2, vec(10, 0, 110, 10))
        assert cid2 == cid
        assert idx.members_of(cid) == {1, 2}

    def test_misaligned_request_founds_new(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        idx.add_request(2, WEST)
        assert idx.num_clusters == 2

    def test_general_vector_is_mean(self):
        idx = MobilityClusterIndex()
        cid = idx.add_request(1, vec(0, 0, 100, 0))
        idx.add_request(2, vec(20, 0, 120, 40))
        gv = idx.general_vector(cid)
        assert gv.ox == pytest.approx(10.0)
        assert gv.dx == pytest.approx(110.0)
        assert gv.dy == pytest.approx(20.0)

    def test_duplicate_request_rejected(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        with pytest.raises(ValueError):
            idx.add_request(1, EAST)

    def test_remove_deletes_empty_cluster(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        idx.remove_request(1)
        assert idx.num_clusters == 0
        assert idx.cluster_of_request(1) is None
        idx.remove_request(1)  # idempotent

    def test_remove_keeps_nonempty_cluster(self):
        idx = MobilityClusterIndex()
        cid = idx.add_request(1, EAST)
        idx.add_request(2, EAST)
        idx.remove_request(1)
        assert idx.members_of(cid) == {2}

    def test_matching_clusters(self):
        idx = MobilityClusterIndex()
        east = idx.add_request(1, EAST)
        idx.add_request(2, WEST)
        assert idx.matching_clusters(vec(0, 0, 50, 5)) == [east]

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            MobilityClusterIndex(lam=2.0)


class TestClusterIndexTaxis:
    def test_taxi_joins_best_cluster(self):
        idx = MobilityClusterIndex()
        east = idx.add_request(1, EAST)
        idx.add_request(2, WEST)
        assert idx.update_taxi(9, vec(0, 0, 80, 10)) == east
        assert idx.taxi_list(east) == {9}
        assert idx.cluster_of_taxi(9) == east

    def test_unaligned_taxi_joins_nothing(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        assert idx.update_taxi(9, NORTH) is None
        assert idx.cluster_of_taxi(9) is None
        # but its vector is remembered for direct comparisons
        assert idx.taxi_vector(9) is NORTH

    def test_empty_taxi_removed(self):
        idx = MobilityClusterIndex()
        east = idx.add_request(1, EAST)
        idx.update_taxi(9, EAST)
        idx.update_taxi(9, None)
        assert idx.taxi_list(east) == set()
        assert idx.taxi_vector(9) is None

    def test_taxi_reassigned_on_update(self):
        idx = MobilityClusterIndex()
        east = idx.add_request(1, EAST)
        west = idx.add_request(2, WEST)
        idx.update_taxi(9, EAST)
        idx.update_taxi(9, WEST)
        assert idx.taxi_list(east) == set()
        assert idx.taxi_list(west) == {9}

    def test_aligned_taxis_union(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        idx.add_request(2, vec(0, 0, 90, 30))
        idx.update_taxi(7, EAST)
        idx.update_taxi(8, WEST)
        assert idx.aligned_taxis(EAST) == {7}

    def test_cluster_death_unlinks_taxis(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        idx.update_taxi(9, EAST)
        idx.remove_request(1)
        assert idx.cluster_of_taxi(9) is None

    def test_memory(self):
        idx = MobilityClusterIndex()
        idx.add_request(1, EAST)
        idx.update_taxi(9, EAST)
        assert idx.memory_bytes() > 0


class TestClusterProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    ), min_size=1, max_size=25))
    def test_every_request_in_exactly_one_cluster(self, directions):
        idx = MobilityClusterIndex()
        for i, (dx, dy) in enumerate(directions):
            idx.add_request(i, vec(0, 0, dx, dy))
        seen = set()
        for cid in idx.cluster_ids():
            members = idx.members_of(cid)
            assert not (members & seen)
            seen |= members
        assert seen == set(range(len(directions)))
