"""Tests for scenario specs and construction."""

import pytest

from repro.sim.scenario import (
    ScenarioSpec,
    get_scenario,
    nonpeak_spec,
    peak_spec,
)


class TestSpec:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            ScenarioSpec(kind="rush")

    def test_windows(self):
        assert peak_spec().window == (1, 8, False)
        assert nonpeak_spec().window == (5, 10, True)

    def test_hashable_for_memoisation(self):
        assert hash(peak_spec()) == hash(peak_spec())

    def test_get_scenario_memoises(self, test_spec):
        assert get_scenario(test_spec) is get_scenario(test_spec)


class TestScenario:
    def test_window_and_history_disjoint(self, test_scenario):
        day, hour, _weekend = test_scenario.spec.window
        start = (day * 24 + hour) * 3600.0
        in_window = test_scenario.history.window(start, start + 3600.0)
        assert len(in_window) == 0
        assert len(test_scenario.window_trips) > 0

    def test_requests_start_near_zero(self, test_scenario):
        reqs = test_scenario.requests()
        assert reqs
        assert 0.0 <= reqs[0].release_time < 3600.0
        assert all(r.release_time < 3600.0 for r in reqs)

    def test_peak_has_no_offline_by_default(self, test_scenario):
        assert all(not r.offline for r in test_scenario.requests())

    def test_nonpeak_has_offline(self, test_nonpeak_scenario):
        reqs = test_nonpeak_scenario.requests()
        offline = sum(1 for r in reqs if r.offline)
        assert offline == min(test_nonpeak_scenario.spec.offline_count, len(reqs))

    def test_explicit_offline_override(self, test_scenario):
        reqs = test_scenario.requests(offline_count=5)
        assert sum(1 for r in reqs if r.offline) == 5

    def test_fleet_factory(self, test_scenario):
        fleet = test_scenario.make_fleet(7, capacity=4, seed=3)
        assert len(fleet) == 7
        assert all(t.capacity == 4 for t in fleet)
        assert all(0 <= t.loc < test_scenario.network.num_vertices for t in fleet)

    def test_fleet_deterministic(self, test_scenario):
        a = [t.loc for t in test_scenario.make_fleet(5, seed=9)]
        b = [t.loc for t in test_scenario.make_fleet(5, seed=9)]
        assert a == b

    def test_partitioning_memoised(self, test_scenario):
        p1 = test_scenario.partitioning("bipartite")
        p2 = test_scenario.partitioning("bipartite")
        assert p1 is p2

    def test_partitioning_methods(self, test_scenario):
        for method in ("bipartite", "grid", "geo"):
            part = test_scenario.partitioning(method, 9)
            assert part.num_partitions >= 1
        with pytest.raises(ValueError):
            test_scenario.partitioning("voronoi")

    def test_default_config_scales_gamma(self, test_scenario):
        cfg = test_scenario.default_config()
        width = test_scenario.network.xy[:, 0].max() - test_scenario.network.xy[:, 0].min()
        assert cfg.search_range_m == pytest.approx(2500.0 * width / 9400.0, abs=1.0)

    def test_default_config_overrides(self, test_scenario):
        cfg = test_scenario.default_config(rho=1.5)
        assert cfg.rho == 1.5
