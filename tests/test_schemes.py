"""Tests for the dispatch schemes: mT-Share and the three baselines."""

import pytest

from repro.core.mtshare import MTShare
from repro.fleet.taxi import Taxi
from repro.partitioning.bipartite import geo_partition


@pytest.fixture()
def scenario(test_scenario):
    return test_scenario


def small_fleet(scenario, n=12, seed=0):
    return {t.taxi_id: t for t in scenario.make_fleet(n, seed=seed)}


def first_request(scenario):
    return scenario.requests()[0]


class TestSchemeFactory:
    @pytest.mark.parametrize(
        "name, cls_name",
        [
            ("no-sharing", "NoSharing"),
            ("t-share", "TShare"),
            ("pgreedydp", "PGreedyDP"),
            ("mt-share", "MTShare"),
            ("mt-share-pro", "MTShare"),
        ],
    )
    def test_factory(self, scenario, name, cls_name):
        scheme = scenario.make_scheme(name)
        assert type(scheme).__name__ == cls_name

    def test_unknown_rejected(self, scenario):
        with pytest.raises(ValueError):
            scenario.make_scheme("uber")

    def test_pro_variant_flag(self, scenario):
        assert scenario.make_scheme("mt-share-pro").probabilistic
        assert not scenario.make_scheme("mt-share").probabilistic

    def test_probabilistic_attachment_for_baseline(self, scenario):
        scheme = scenario.make_scheme("t-share", probabilistic=True)
        assert scheme.name == "T-Share+prob"
        assert scheme._prob_router is not None


class TestDispatchBasics:
    @pytest.mark.parametrize("name", ["no-sharing", "t-share", "pgreedydp", "mt-share"])
    def test_dispatch_and_install(self, scenario, name):
        scheme = scenario.make_scheme(name)
        fleet = small_fleet(scenario, 20)
        scheme.register_fleet(fleet, now=0.0)
        served = 0
        for request in scenario.requests()[:20]:
            result = scheme.dispatch(request, request.release_time)
            if result is None:
                continue
            served += 1
            taxi = scheme.install(result, request, request.release_time)
            assert request.request_id in taxi.assigned
            assert not taxi.route.empty
        assert served > 0

    @pytest.mark.parametrize("name", ["no-sharing", "t-share", "pgreedydp", "mt-share"])
    def test_dispatch_respects_capacity(self, scenario, name):
        scheme = scenario.make_scheme(name)
        fleet = {0: Taxi(taxi_id=0, capacity=1, loc=0)}
        scheme.register_fleet(fleet, now=0.0)
        assigned = 0
        for request in scenario.requests()[:30]:
            result = scheme.dispatch(request, request.release_time)
            if result is not None:
                scheme.install(result, request, request.release_time)
                assigned += 1
        assert fleet[0].committed <= 1
        assert assigned <= 1 or fleet[0].committed <= 1


class TestNoSharing:
    def test_only_idle_taxis_used(self, scenario):
        scheme = scenario.make_scheme("no-sharing")
        fleet = small_fleet(scenario, 6)
        scheme.register_fleet(fleet, now=0.0)
        requests = scenario.requests()
        matched = []
        for request in requests[:12]:
            result = scheme.dispatch(request, request.release_time)
            if result is not None:
                scheme.install(result, request, request.release_time)
                matched.append(result.taxi_id)
        # a taxi is never matched twice while busy (it never went idle
        # because we never advanced time)
        assert len(matched) == len(set(matched))

    def test_offline_only_for_vacant(self, scenario, request_factory):
        scheme = scenario.make_scheme("no-sharing")
        fleet = small_fleet(scenario, 2)
        scheme.register_fleet(fleet, now=0.0)
        taxi = next(iter(fleet.values()))
        r = scenario.requests()[0]
        assert scheme.try_offline(taxi, r, 0.0) is not None or True
        # make taxi busy: then refuse
        result = scheme.dispatch(r, r.release_time)
        if result is not None:
            busy = scheme.install(result, r, r.release_time)
            other = scenario.requests()[1]
            assert scheme.try_offline(busy, other, r.release_time) is None


class TestTShare:
    def test_returns_first_valid_not_best(self, scenario):
        scheme = scenario.make_scheme("t-share")
        fleet = small_fleet(scenario, 30)
        scheme.register_fleet(fleet, now=0.0)
        request = first_request(scenario)
        result = scheme.dispatch(request, request.release_time)
        if result is not None:
            assert result.num_candidates >= 1

    def test_candidate_count_tracked(self, scenario):
        scheme = scenario.make_scheme("t-share")
        fleet = small_fleet(scenario, 30)
        scheme.register_fleet(fleet, now=0.0)
        request = first_request(scenario)
        scheme.dispatch(request, request.release_time)
        assert scheme.last_candidate_count >= 0


class TestPGreedyDP:
    def test_min_detour_across_candidates(self, scenario):
        scheme = scenario.make_scheme("pgreedydp")
        fleet = small_fleet(scenario, 30)
        scheme.register_fleet(fleet, now=0.0)
        request = first_request(scenario)
        result = scheme.dispatch(request, request.release_time)
        if result is None:
            pytest.skip("no feasible taxi in this draw")
        # No other candidate offers a strictly better insertion.
        best = result.detour_cost
        for taxi in fleet.values():
            found = scheme._min_detour_insertion(taxi, request, request.release_time)
            if found is not None:
                assert found[0] >= best - 1e-6


class TestMTShare:
    def test_memory_accounting(self, scenario):
        scheme = scenario.make_scheme("mt-share")
        fleet = small_fleet(scenario, 10)
        scheme.register_fleet(fleet, now=0.0)
        assert scheme.index_memory_bytes() > 0
        assert scheme.total_memory_bytes() > scheme.index_memory_bytes()

    def test_request_clustered_on_install(self, scenario):
        scheme = scenario.make_scheme("mt-share")
        fleet = small_fleet(scenario, 20)
        scheme.register_fleet(fleet, now=0.0)
        for request in scenario.requests()[:10]:
            result = scheme.dispatch(request, request.release_time)
            if result is None:
                continue
            scheme.install(result, request, request.release_time)
            assert scheme.cluster_index.cluster_of_request(request.request_id) is not None
            scheme.on_request_finished(request)
            assert scheme.cluster_index.cluster_of_request(request.request_id) is None
            break
        else:
            pytest.skip("nothing matched")

    def test_probabilistic_needs_model(self, scenario):
        part = geo_partition(scenario.network, 8)  # no transition model
        with pytest.raises(ValueError):
            MTShare(scenario.network, scenario.engine, scenario.default_config(),
                    part, probabilistic=True)

    def test_grid_partitioned_variant_works(self, scenario):
        scheme = scenario.make_scheme("mt-share", partition_method="grid")
        fleet = small_fleet(scenario, 15)
        scheme.register_fleet(fleet, now=0.0)
        request = first_request(scenario)
        scheme.dispatch(request, request.release_time)  # should not raise

    def test_try_offline_examines_single_taxi(self, scenario):
        scheme = scenario.make_scheme("mt-share")
        fleet = small_fleet(scenario, 5)
        scheme.register_fleet(fleet, now=0.0)
        request = first_request(scenario)
        taxi = next(iter(fleet.values()))
        result = scheme.try_offline(taxi, request, request.release_time)
        if result is not None:
            assert result.taxi_id == taxi.taxi_id


class TestCruising:
    def test_no_cruise_without_prob_router(self, scenario):
        scheme = scenario.make_scheme("mt-share")
        fleet = small_fleet(scenario, 3)
        scheme.register_fleet(fleet, now=0.0)
        taxi = next(iter(fleet.values()))
        assert scheme.maybe_cruise(taxi, 0.0) is False

    def test_pro_cruises_idle_taxi(self, scenario):
        scheme = scenario.make_scheme("mt-share-pro")
        fleet = small_fleet(scenario, 3)
        scheme.register_fleet(fleet, now=0.0)
        taxi = next(iter(fleet.values()))
        cruised = scheme.maybe_cruise(taxi, 0.0)
        if cruised:
            assert taxi.idle  # still no passengers
            assert not taxi.route.empty
            assert taxi.remaining_route_cost(0.0) == 0.0

    def test_cruise_rate_limited(self, scenario):
        scheme = scenario.make_scheme("mt-share-pro")
        fleet = small_fleet(scenario, 3)
        scheme.register_fleet(fleet, now=0.0)
        taxi = next(iter(fleet.values()))
        if scheme.maybe_cruise(taxi, 0.0):
            # While the cruise is under way, no replanning happens.
            assert scheme.maybe_cruise(taxi, 1.0) is False
