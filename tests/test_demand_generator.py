"""Tests for the synthetic Chengdu-like demand generator."""

import numpy as np
import pytest

from repro.demand.generator import (
    WEEKEND_HOURLY_PROFILE,
    WORKDAY_HOURLY_PROFILE,
    ZONE_TYPES,
    ChengduLikeDemand,
    _flow_matrix,
    _origin_weights,
)


@pytest.fixture(scope="module")
def demand(small_net):
    return ChengduLikeDemand(small_net, num_zones=8, vertices_per_zone=8,
                             hourly_requests=200, seed=1)


class TestProfiles:
    def test_profiles_have_24_hours(self):
        assert WORKDAY_HOURLY_PROFILE.shape == (24,)
        assert WEEKEND_HOURLY_PROFILE.shape == (24,)

    def test_workday_peaks_at_8(self):
        assert int(np.argmax(WORKDAY_HOURLY_PROFILE)) == 8

    def test_weekend_flatter_than_workday(self):
        assert WEEKEND_HOURLY_PROFILE.std() < WORKDAY_HOURLY_PROFILE.std()

    @pytest.mark.parametrize("hour", [3, 8, 12, 18, 22])
    @pytest.mark.parametrize("weekend", [False, True])
    def test_flow_matrix_stochastic(self, hour, weekend):
        m = _flow_matrix(hour, weekend, concentration=4.0)
        assert m.shape == (4, 4)
        assert np.allclose(m.sum(axis=1), 1.0)
        assert (m >= 0).all()

    def test_morning_commute_targets_business(self):
        m = _flow_matrix(8, weekend=False)
        residential, business = 0, 1
        assert m[residential, business] == m[residential].max()

    def test_origin_weights_normalised(self):
        for hour in (4, 8, 17, 23):
            for weekend in (False, True):
                w = _origin_weights(hour, weekend)
                assert w.sum() == pytest.approx(1.0)


class TestZones:
    def test_zone_count_and_types(self, demand):
        zones = demand.zones
        assert len(zones) == 8
        assert {z.zone_type for z in zones} == set(ZONE_TYPES)

    def test_zone_members_are_vertices(self, demand, small_net):
        for z in demand.zones:
            assert all(0 <= v < small_net.num_vertices for v in z.member_vertices)

    def test_too_few_zones_rejected(self, small_net):
        with pytest.raises(ValueError):
            ChengduLikeDemand(small_net, num_zones=2)

    def test_bad_rate_rejected(self, small_net):
        with pytest.raises(ValueError):
            ChengduLikeDemand(small_net, hourly_requests=0)

    def test_bad_concentration_rejected(self, small_net):
        with pytest.raises(ValueError):
            ChengduLikeDemand(small_net, concentration=0.0)


class TestGeneration:
    def test_hour_volume_tracks_profile(self, demand):
        peak = demand.generate_hour(0, 8, weekend=False)
        night = demand.generate_hour(0, 3, weekend=False)
        assert len(peak) > 3 * len(night)

    def test_trips_sorted_and_in_hour(self, demand):
        trips = demand.generate_hour(2, 10, weekend=False)
        times = [t for t, _o, _d in trips]
        assert times == sorted(times)
        start = (2 * 24 + 10) * 3600.0
        assert all(start <= t < start + 3600.0 for t in times)

    def test_no_self_trips(self, demand):
        trips = demand.generate_hour(0, 8)
        assert all(o != d for _t, o, d in trips)

    def test_deterministic_given_seed(self, small_net):
        a = ChengduLikeDemand(small_net, num_zones=6, hourly_requests=100, seed=9)
        b = ChengduLikeDemand(small_net, num_zones=6, hourly_requests=100, seed=9)
        assert a.generate_hour(0, 8) == b.generate_hour(0, 8)

    def test_rate_scale(self, demand):
        big = demand.generate_hour(0, 8, rate_scale=2.0)
        small = demand.generate_hour(0, 8, rate_scale=0.25)
        assert len(big) > len(small)

    def test_generate_window(self, demand):
        ds = demand.generate_window(1, 8, 2, weekend=False)
        assert len(ds) > 0
        hours = set((ds.release_times // 3600).astype(int).tolist())
        assert hours <= {1 * 24 + 8, 1 * 24 + 9}

    def test_generate_days(self, demand):
        ds = demand.generate_days(2)
        assert ds.release_times.max() < 2 * 86400.0
        # Both days contribute trips.
        assert len(ds.window(0.0, 86400.0)) > 0
        assert len(ds.window(86400.0, 2 * 86400.0)) > 0

    def test_corridor_structure_learnable(self, demand):
        """Trips from one zone should concentrate on few partner zones."""
        trips = demand.generate_window(0, 7, 3, weekend=False)
        # entropy check: the destination distribution per origin vertex
        # group should be far from uniform.
        origins = trips.origins
        dests = trips.destinations
        top_origin = np.bincount(origins).argmax()
        mask = origins == top_origin
        if mask.sum() >= 10:
            dest_counts = np.bincount(dests[mask])
            top_share = dest_counts.max() / mask.sum()
            assert top_share > 0.15
