"""Double-run determinism smoke test.

Runs the quick Fig. 21-style scenario twice in one process — caches
cleared in between, so the second run rebuilds the scenario and
re-simulates from scratch — and requires bit-identical dispatch
decisions and metric summaries.  This is the cheap in-process cousin of
test_runner_parallel's cross-process determinism check, and the one a
hash-seed- or set-iteration-order regression trips first.
"""

from __future__ import annotations

from repro.experiments.runner import RunKey, clear_cache, run
from repro.sim.scenario import ScenarioSpec

from .test_runner_parallel import decision_fingerprint

QUICK_SPEC = ScenarioSpec(
    kind="peak",
    grid_rows=8,
    grid_cols=8,
    spacing_m=180.0,
    hourly_requests=120,
    history_days=2,
    num_partitions=9,
    offline_count=10,
    seed=3,
)

#: Wall-clock-derived summary keys; everything else must match exactly.
MEASURED_KEYS = frozenset(
    {"response_ms", "stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"}
)


def decision_summary(metrics) -> dict[str, float]:
    return {k: v for k, v in metrics.summary().items() if k not in MEASURED_KEYS}


def test_double_run_identical_decisions_and_metrics():
    key = RunKey(spec=QUICK_SPEC, scheme="mt-share", num_taxis=20)

    clear_cache()
    first = run(key)
    clear_cache()
    second = run(key)
    clear_cache()

    assert decision_fingerprint(first) == decision_fingerprint(second)
    assert decision_summary(first) == decision_summary(second)


def test_double_run_baseline_scheme():
    key = RunKey(spec=QUICK_SPEC, scheme="t-share", num_taxis=15)

    clear_cache()
    first = run(key)
    clear_cache()
    second = run(key)
    clear_cache()

    assert decision_fingerprint(first) == decision_fingerprint(second)
    assert decision_summary(first) == decision_summary(second)
