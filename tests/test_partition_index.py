"""Tests for the partition-based taxi index (P_z.L_t lists)."""

import pytest

from repro.index.partition_index import PartitionTaxiIndex


class TestValidation:
    def test_needs_partitions(self):
        with pytest.raises(ValueError):
            PartitionTaxiIndex(0)

    def test_needs_positive_horizon(self):
        with pytest.raises(ValueError):
            PartitionTaxiIndex(3, horizon_s=0.0)


class TestUpdates:
    def test_update_and_query(self):
        idx = PartitionTaxiIndex(4)
        idx.update_taxi(7, {0: 100.0, 2: 250.0})
        assert idx.taxis_in(0) == [(7, 100.0)]
        assert idx.taxi_ids_in(2) == {7}
        assert idx.arrival_time(2, 7) == 250.0
        assert idx.arrival_time(1, 7) is None
        assert idx.partitions_of(7) == {0, 2}

    def test_update_replaces(self):
        idx = PartitionTaxiIndex(4)
        idx.update_taxi(7, {0: 100.0})
        idx.update_taxi(7, {3: 50.0})
        assert idx.taxis_in(0) == []
        assert idx.taxis_in(3) == [(7, 50.0)]

    def test_remove(self):
        idx = PartitionTaxiIndex(2)
        idx.update_taxi(1, {0: 5.0})
        idx.remove_taxi(1)
        assert idx.taxis_in(0) == []
        assert idx.partitions_of(1) == set()
        idx.remove_taxi(42)  # unknown: no-op

    def test_sorted_by_arrival(self):
        idx = PartitionTaxiIndex(1)
        idx.update_taxi(1, {0: 30.0})
        idx.update_taxi(2, {0: 10.0})
        idx.update_taxi(3, {0: 20.0})
        assert [t for t, _a in idx.taxis_in(0)] == [2, 3, 1]

    def test_place_idle(self):
        idx = PartitionTaxiIndex(3)
        idx.place_idle_taxi(9, 1, now=42.0)
        assert idx.taxis_in(1) == [(9, 42.0)]

    def test_union(self):
        idx = PartitionTaxiIndex(3)
        idx.update_taxi(1, {0: 1.0})
        idx.update_taxi(2, {1: 1.0})
        idx.update_taxi(3, {0: 1.0, 2: 2.0})
        assert idx.union_taxis([0, 1]) == [1, 2, 3]
        assert idx.union_taxis([2]) == [3]
        assert idx.union_taxis([]) == []

    def test_union_sorted_by_id(self):
        # Candidate enumeration order must not depend on the hash seed.
        idx = PartitionTaxiIndex(2)
        for taxi_id in (17, 3, 42, 8, 25):
            idx.update_taxi(taxi_id, {0: float(taxi_id)})
        assert idx.union_taxis([0, 1]) == [3, 8, 17, 25, 42]


class TestFromRoute:
    def test_first_arrival_per_partition(self):
        idx = PartitionTaxiIndex(3, horizon_s=1000.0)
        partition_of = {0: 0, 1: 0, 2: 1, 3: 2}.__getitem__
        idx.update_taxi_from_route(
            5,
            route_nodes=[0, 1, 2, 3],
            route_times=[0.0, 10.0, 20.0, 30.0],
            partition_of=partition_of,
            now=0.0,
        )
        assert idx.arrival_time(0, 5) == 0.0   # first visit, not 10.0
        assert idx.arrival_time(1, 5) == 20.0
        assert idx.arrival_time(2, 5) == 30.0

    def test_horizon_truncates(self):
        idx = PartitionTaxiIndex(2, horizon_s=15.0)
        partition_of = {0: 0, 1: 1}.__getitem__
        idx.update_taxi_from_route(
            1, [0, 1], [0.0, 100.0], partition_of, now=0.0
        )
        assert idx.arrival_time(1, 1) is None

    def test_past_times_clamped_to_now(self):
        idx = PartitionTaxiIndex(1)
        idx.update_taxi_from_route(1, [0], [5.0], lambda v: 0, now=50.0)
        assert idx.arrival_time(0, 1) == 50.0

    def test_total_entries_and_memory(self):
        idx = PartitionTaxiIndex(3)
        idx.update_taxi(1, {0: 1.0, 1: 2.0})
        idx.update_taxi(2, {2: 3.0})
        assert idx.total_entries() == 3
        assert idx.memory_bytes() > 0
