"""Equivalence tests: DP insertion operator vs exhaustive enumeration."""

import numpy as np
import pytest

from repro.fleet.insertion_dp import best_insertion_dp
from repro.fleet.schedule import (
    arrival_times,
    capacity_ok,
    deadlines_met,
    enumerate_insertions,
)
from tests.conftest import make_request


def grid_cost(u, v):
    """Manhattan travel cost on an abstract 10x10 grid of nodes 0..99."""
    ux, uy = u % 10, u // 10
    vx, vy = v % 10, v // 10
    return 10.0 * (abs(ux - vx) + abs(uy - vy))


def reference_best(start_node, start_time, stops, request, cost_fn, capacity, onboard):
    """Ground truth: full enumeration + feasibility filtering."""
    best = None
    for _i, _j, new_stops in enumerate_insertions(stops, request):
        if not capacity_ok(new_stops, onboard, capacity):
            continue
        times = arrival_times(start_node, start_time, new_stops, cost_fn)
        if not deadlines_met(times and new_stops, times):
            continue
        base = arrival_times(start_node, start_time, list(stops), cost_fn)
        base_total = (base[-1] - start_time) if base else 0.0
        detour = (times[-1] - start_time) - base_total
        if best is None or detour < best[0] - 1e-12:
            best = (detour, new_stops)
    return best


def random_case(seed):
    rng = np.random.default_rng(seed)
    m_pairs = int(rng.integers(0, 4))
    start_node = int(rng.integers(100))
    start_time = float(rng.uniform(0, 100))
    capacity = int(rng.integers(1, 5))
    onboard = 0

    from repro.demand.request import RideRequest
    from repro.fleet.schedule import dropoff, pickup

    # Draw OD pairs, lay out a provisional schedule, then derive each
    # existing passenger's deadline from their *actual* arrival times so
    # the base schedule is always feasible but still binding.
    pairs = []
    provisional = []
    for k in range(m_pairs):
        o = int(rng.integers(100))
        d = int(rng.integers(100))
        if o == d:
            d = (d + 1) % 100
        r = make_request(request_id=100 + k, release_time=start_time,
                         origin=o, destination=d,
                         direct_cost=grid_cost(o, d), rho=5.0)
        pairs.append(r)
        provisional.append(pickup(r))
        provisional.append(dropoff(r))
    if len(provisional) >= 4 and rng.random() < 0.5:
        provisional[1], provisional[2] = provisional[2], provisional[1]

    times = arrival_times(start_node, start_time, provisional, grid_cost)
    arrival_of = {}
    for stop, t in zip(provisional, times):
        arrival_of[(stop.request.request_id, stop.kind.value)] = t

    rebuilt = {}
    for r in pairs:
        direct = r.direct_cost
        need = max(
            start_time + direct,
            arrival_of[(r.request_id, "pickup")] + direct,
            arrival_of[(r.request_id, "dropoff")],
        )
        margin = float(rng.uniform(0.0, 60.0))
        rebuilt[r.request_id] = RideRequest(
            request_id=r.request_id,
            release_time=start_time,
            origin=r.origin,
            destination=r.destination,
            deadline=need + margin,
            direct_cost=direct,
        )
    stops = []
    for stop in provisional:
        r2 = rebuilt[stop.request.request_id]
        stops.append(pickup(r2) if stop.kind.value == "pickup" else dropoff(r2))

    times = arrival_times(start_node, start_time, stops, grid_cost)
    assert deadlines_met(stops, times)
    if not capacity_ok(stops, onboard, capacity):
        return None

    o = int(rng.integers(100))
    d = int(rng.integers(100))
    if o == d:
        d = (d + 1) % 100
    request = make_request(
        request_id=1,
        release_time=start_time,
        origin=o,
        destination=d,
        direct_cost=grid_cost(o, d),
        rho=float(rng.uniform(1.1, 3.0)),
    )
    return start_node, start_time, stops, request, capacity, onboard


@pytest.mark.parametrize("seed", range(150))
def test_dp_matches_enumeration(seed):
    case = random_case(seed)
    if case is None:
        pytest.skip("infeasible base draw")
    start_node, start_time, stops, request, capacity, onboard = case
    expected = reference_best(start_node, start_time, stops, request,
                              grid_cost, capacity, onboard)
    got = best_insertion_dp(start_node, start_time, stops, request,
                            grid_cost, capacity, onboard)
    if expected is None:
        assert got is None
        return
    assert got is not None
    assert got[0] == pytest.approx(expected[0], abs=1e-6)
    # The returned schedule must itself be feasible with the same detour.
    times = arrival_times(start_node, start_time, got[1], grid_cost)
    assert deadlines_met(got[1], times)
    assert capacity_ok(got[1], onboard, capacity)


def test_empty_schedule_insertion():
    r = make_request(request_id=1, origin=3, destination=47,
                     direct_cost=grid_cost(3, 47), rho=2.0)
    got = best_insertion_dp(0, 0.0, [], r, grid_cost, capacity=3)
    assert got is not None
    detour, stops = got
    assert detour == pytest.approx(grid_cost(0, 3) + grid_cost(3, 47))
    assert [s.kind.value for s in stops] == ["pickup", "dropoff"]


def test_full_taxi_returns_none():
    r = make_request(request_id=1, origin=3, destination=47,
                     direct_cost=grid_cost(3, 47), rho=2.0)
    assert best_insertion_dp(0, 0.0, [], r, grid_cost, capacity=1,
                             initial_onboard=1) is None
