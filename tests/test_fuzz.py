"""Randomised end-to-end checks: simulator invariants under varied worlds.

Property-style tests over randomly drawn small scenarios, fleets and
parameters: whatever the draw, served trips respect deadlines, metrics
stay consistent, and schemes never corrupt taxi state.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.mtshare import MTShare
from repro.core.payment import PaymentModel
from repro.demand.dataset import TripDataset
from repro.fleet.taxi import Taxi
from repro.network.generators import grid_city
from repro.network.shortest_path import ShortestPathEngine
from repro.partitioning.bipartite import bipartite_partition
from repro.sim.engine import Simulator


def random_world(seed: int):
    """A small random city, trace, fleet and mT-Share dispatcher."""
    rng = np.random.default_rng(seed)
    size = int(rng.integers(7, 11))
    net = grid_city(rows=size, cols=size, spacing_m=float(rng.uniform(120, 260)),
                    removal_rate=float(rng.uniform(0.0, 0.15)), seed=seed)
    engine = ShortestPathEngine(net)

    n = net.num_vertices
    m = int(rng.integers(40, 140))
    origins = rng.integers(0, n, size=m)
    dests = rng.integers(0, n, size=m)
    times = np.sort(rng.uniform(0, 1800, size=m))
    ds = TripDataset(
        release_times=times,
        origins=origins,
        destinations=dests,
        taxi_ids=np.zeros(m, dtype=int),
    )
    rho = float(rng.uniform(1.15, 1.6))
    offline = int(rng.integers(0, max(1, m // 4)))
    requests = ds.to_requests(engine, rho=rho, offline_count=min(offline, m))

    hist = rng.integers(0, n, size=(800, 2))
    part = bipartite_partition(net, hist, num_partitions=int(rng.integers(4, 12)),
                               num_transition_clusters=3, seed=seed)
    config = SystemConfig(
        num_partitions=part.num_partitions,
        search_range_m=float(rng.uniform(400, 1200)),
        rho=rho,
        capacity=int(rng.integers(2, 5)),
    )
    scheme = MTShare(net, engine, config, part,
                     probabilistic=bool(rng.integers(0, 2)))
    fleet = [
        Taxi(taxi_id=i, capacity=config.capacity, loc=int(rng.integers(n)))
        for i in range(int(rng.integers(4, 16)))
    ]
    return scheme, fleet, requests


@pytest.mark.parametrize("seed", range(10))
def test_random_world_invariants(seed):
    scheme, fleet, requests = random_world(seed)
    sim = Simulator(scheme, fleet, requests, payment=PaymentModel())
    metrics = sim.run()

    # Conservation: every assignment completes; counters agree.
    assert metrics.completed == metrics.served
    assert metrics.served <= metrics.num_requests
    assert metrics.served_online <= metrics.num_online + metrics.num_offline

    # Deadlines hold for every completed trip.
    for trip in sim.log.completed():
        assert trip.pickup_time >= trip.request.release_time - 1e-6
        assert trip.pickup_time <= trip.request.pickup_deadline + 1e-6
        assert trip.dropoff_time <= trip.request.deadline + 1e-6
        assert trip.shared_travel_cost >= trip.request.direct_cost - 1e-6

    # Taxi state fully drained.
    for taxi in sim.fleet.values():
        assert taxi.occupancy == 0
        assert not taxi.assigned
        assert taxi.committed == 0

    # Monetary invariants when anything was settled.
    if metrics.regular_fares > 0:
        assert metrics.shared_fares <= metrics.regular_fares + 1e-6
        assert metrics.driver_incomes >= metrics.route_fares - 1e-6


@pytest.mark.parametrize("seed", range(5))
def test_random_world_deterministic(seed):
    scheme_a, fleet_a, requests = random_world(seed)
    m_a = Simulator(scheme_a, fleet_a, requests).run()
    scheme_b, fleet_b, _ = random_world(seed)
    m_b = Simulator(scheme_b, fleet_b, requests).run()
    assert m_a.served == m_b.served
    assert m_a.served_offline == m_b.served_offline
