"""Runtime invariant contracts: violations raise, disabled mode is free.

The suite-wide ``_contracts_on`` fixture (conftest) keeps contracts
enabled for every other test, so the whole tier-1 run doubles as an
integration test of the hooked invariants; this file checks the
contract functions themselves plus the disabled path.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import contracts
from repro.analysis.contracts import ContractViolation
from repro.fleet.schedule import dropoff, pickup
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationMetrics

from .conftest import make_request


@pytest.fixture
def toggling():
    """Restore the module flag no matter what a test does to it."""
    previous = contracts.enabled()
    yield
    contracts.enable(previous)


# ----------------------------------------------------------------------
# check_schedule
# ----------------------------------------------------------------------
def test_valid_schedule_passes():
    a, b = make_request(request_id=1), make_request(request_id=2)
    stops = [pickup(a), pickup(b), dropoff(a), dropoff(b)]
    contracts.check_schedule(stops, occupancy=0, capacity=3)


def test_dropoff_before_pickup_raises():
    a = make_request(request_id=1)
    with pytest.raises(ContractViolation, match="before its pick-up"):
        contracts.check_schedule([dropoff(a), pickup(a)], occupancy=0, capacity=3)


def test_double_pickup_raises():
    a = make_request(request_id=1)
    with pytest.raises(ContractViolation, match="picked up twice"):
        contracts.check_schedule(
            [pickup(a), pickup(a), dropoff(a)], occupancy=0, capacity=3
        )


def test_onboard_dropoff_without_pickup_is_legal():
    # A passenger already on board when the schedule starts has a
    # drop-off with no preceding pick-up; that is the normal case.
    a = make_request(request_id=1)
    contracts.check_schedule([dropoff(a)], occupancy=1, capacity=3)


def test_capacity_exceeded_raises():
    a = make_request(request_id=1, num_passengers=2)
    b = make_request(request_id=2, num_passengers=2)
    stops = [pickup(a), pickup(b), dropoff(a), dropoff(b)]
    with pytest.raises(ContractViolation, match="capacity exceeded"):
        contracts.check_schedule(stops, occupancy=0, capacity=3)


def test_negative_occupancy_raises():
    a = make_request(request_id=1)
    with pytest.raises(ContractViolation, match="negative occupancy"):
        contracts.check_schedule([dropoff(a)], occupancy=0, capacity=3)


# ----------------------------------------------------------------------
# check_monotone_clock / check_request_accounting
# ----------------------------------------------------------------------
def test_monotone_clock():
    contracts.check_monotone_clock(10.0, 10.0)
    contracts.check_monotone_clock(10.0, 11.0)
    with pytest.raises(ContractViolation, match="moved backwards"):
        contracts.check_monotone_clock(11.0, 10.0)


def test_request_accounting_upper_bound():
    m = SimulationMetrics()
    m.num_online = 2
    m.num_offline = 1
    m.served_online = 2
    contracts.check_request_accounting(m)
    m.unserved_online = 1
    with pytest.raises(ContractViolation, match="overshoots"):
        contracts.check_request_accounting(m)


# ----------------------------------------------------------------------
# enablement and overhead
# ----------------------------------------------------------------------
def test_disabled_contracts_are_noops(toggling):
    contracts.enable(False)
    a = make_request(request_id=1)
    contracts.check_schedule([dropoff(a), pickup(a)], occupancy=0, capacity=0)
    contracts.check_monotone_clock(11.0, 10.0)
    m = SimulationMetrics()
    m.served_online = 5
    contracts.check_request_accounting(m)


def test_env_parsing(monkeypatch):
    for value, expected in [
        ("", False),
        ("0", False),
        ("false", False),
        ("off", False),
        ("1", True),
        ("yes", True),
    ]:
        monkeypatch.setenv(contracts.ENV_VAR, value)
        assert contracts._env_enabled() is expected, value
    monkeypatch.delenv(contracts.ENV_VAR)
    assert contracts._env_enabled() is False


def test_invariant_metadata():
    assert contracts.check_schedule.__name__ == "check_schedule"
    assert "capacity" in contracts.check_schedule.contract_description


def test_disabled_overhead_below_five_percent(toggling, test_scenario):
    """Mirror of test_obs's overhead bound, for the contract layer.

    A disabled contract check costs one call + one flag branch.  Bound
    the projected total (per-call cost x calls a small run makes)
    against 5% of that run's wall time.
    """
    contracts.enable(False)

    reps = 200_000
    t0 = time.perf_counter()
    for _ in range(reps):
        contracts.check_monotone_clock(1.0, 2.0)
    per_call = (time.perf_counter() - t0) / reps

    contracts.enable(True)
    sim = Simulator(
        test_scenario.make_scheme("mt-share"),
        test_scenario.make_fleet(15, seed=1),
        test_scenario.requests(),
    )
    metrics = sim.run()
    # One clock + one accounting check per event, one schedule check
    # per installed plan: bounded by requests + served counts.
    calls = 2 * metrics.num_requests + metrics.served + len(metrics.waiting_times_s)
    projected = per_call * calls
    assert projected <= 0.05 * metrics.wall_time_s, (
        f"disabled contracts projected at {projected:.6f}s "
        f"vs wall {metrics.wall_time_s:.3f}s"
    )
