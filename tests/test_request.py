"""Tests for ride requests and served-trip records."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.demand.request import RequestError, RideRequest, ServedTrip, TripRecord


class TestRideRequest:
    def test_basic_fields(self, request_factory):
        r = request_factory(request_id=7, release_time=10.0, direct_cost=100.0, rho=1.3)
        assert r.request_id == 7
        assert r.deadline == pytest.approx(10.0 + 130.0)

    def test_pickup_deadline(self, request_factory):
        r = request_factory(release_time=0.0, direct_cost=100.0, rho=1.3)
        assert r.pickup_deadline == pytest.approx(30.0)

    def test_max_wait_equals_slack(self, request_factory):
        r = request_factory(release_time=50.0, direct_cost=200.0, rho=1.5)
        assert r.max_wait == pytest.approx(100.0)
        assert r.slack == pytest.approx(100.0)

    def test_negative_release_rejected(self):
        with pytest.raises(RequestError):
            RideRequest(0, -1.0, 0, 1, 100.0, 50.0)

    def test_infeasible_deadline_rejected(self):
        with pytest.raises(RequestError):
            RideRequest(0, 0.0, 0, 1, deadline=40.0, direct_cost=50.0)

    def test_zero_passengers_rejected(self):
        with pytest.raises(RequestError):
            RideRequest(0, 0.0, 0, 1, 100.0, 50.0, num_passengers=0)

    def test_negative_direct_cost_rejected(self):
        with pytest.raises(RequestError):
            RideRequest(0, 0.0, 0, 1, 100.0, -5.0)

    def test_rho_below_one_rejected(self, request_factory):
        with pytest.raises(RequestError):
            request_factory(rho=0.9)

    def test_offline_flag(self, request_factory):
        assert request_factory(offline=True).offline
        assert not request_factory().offline

    def test_frozen(self, request_factory):
        with pytest.raises(AttributeError):
            request_factory().deadline = 1.0

    @given(
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1.0, max_value=2.0),
    )
    def test_flexible_factor_invariants(self, t, cost, rho):
        r = RideRequest.from_flexible_factor(0, t, 0, 1, cost, rho=rho)
        assert r.deadline >= r.release_time + r.direct_cost - 1e-9
        assert r.max_wait == pytest.approx((rho - 1.0) * cost, rel=1e-6, abs=1e-6)
        assert r.pickup_deadline <= r.deadline


class TestTripRecord:
    def test_fields(self):
        rec = TripRecord(trip_id=1, taxi_id=2, release_time=3.0, origin=4, destination=5)
        assert (rec.trip_id, rec.taxi_id, rec.origin, rec.destination) == (1, 2, 4, 5)


class TestServedTrip:
    def test_lifecycle(self, request_factory):
        r = request_factory(release_time=100.0, direct_cost=300.0, rho=1.5)
        trip = ServedTrip(request=r, taxi_id=3, assign_time=101.0)
        assert not trip.completed
        trip.pickup_time = 160.0
        trip.dropoff_time = 500.0
        trip.shared_travel_cost = 340.0
        assert trip.completed
        assert trip.waiting_time == pytest.approx(60.0)
        assert trip.detour_time == pytest.approx(40.0)

    def test_detour_clamped_at_zero(self, request_factory):
        r = request_factory(direct_cost=300.0)
        trip = ServedTrip(request=r, taxi_id=0, assign_time=0.0)
        trip.pickup_time = 0.0
        trip.dropoff_time = 290.0
        trip.shared_travel_cost = 290.0
        assert trip.detour_time == 0.0

    def test_incomplete_has_nan_fields(self, request_factory):
        trip = ServedTrip(request=request_factory(), taxi_id=0, assign_time=0.0)
        assert math.isnan(trip.dropoff_time)
