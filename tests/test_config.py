"""Tests for the system configuration."""

import pytest

from repro.config import SystemConfig


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_taxis", 0),
            ("capacity", 0),
            ("search_range_m", 0.0),
            ("rho", 0.9),
            ("lam", 1.5),
            ("epsilon", -0.1),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SystemConfig(**{field: value})

    def test_defaults_match_table2(self):
        cfg = SystemConfig()
        assert cfg.num_taxis == 2000
        assert cfg.capacity == 3
        assert cfg.search_range_m == 2500.0
        assert cfg.rho == 1.3
        assert cfg.lam == pytest.approx(0.707)
        assert cfg.epsilon == 1.0
        assert cfg.beta == 0.8
        assert cfg.eta == 0.01
        assert cfg.num_transition_clusters == 20
        assert cfg.index_horizon_s == 3600.0


class TestReplace:
    def test_replace_creates_variant(self):
        base = SystemConfig()
        variant = base.replace(rho=1.5, capacity=4)
        assert variant.rho == 1.5
        assert variant.capacity == 4
        assert base.rho == 1.3  # unchanged

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            SystemConfig().replace(capacity=-1)


class TestGamma:
    def test_static_default(self):
        cfg = SystemConfig(search_range_m=2000.0)
        assert cfg.gamma_for_wait(600.0) == 2000.0

    def test_adaptive(self):
        cfg = SystemConfig(adaptive_gamma=True, speed_mps=5.0)
        assert cfg.gamma_for_wait(100.0) == 500.0
        assert cfg.gamma_for_wait(-5.0) == 0.0

    def test_grid_cell_defaults_to_half_gamma(self):
        cfg = SystemConfig(search_range_m=2000.0)
        assert cfg.grid_cell_m == 1000.0

    def test_grid_cell_override(self):
        cfg = SystemConfig(baseline_grid_cell_m=333.0)
        assert cfg.grid_cell_m == 333.0
