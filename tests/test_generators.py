"""Tests for the synthetic road-network generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse
from scipy.sparse import csgraph

from repro.network.generators import grid_city, ring_radial_city


def is_strongly_connected(net) -> bool:
    rows, cols = [], []
    for u, v, _l in net.edges():
        rows.append(u)
        cols.append(v)
    mat = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(net.num_vertices, net.num_vertices),
    )
    n, _ = csgraph.connected_components(mat, directed=True, connection="strong")
    return n == 1


class TestGridCity:
    def test_default_is_strongly_connected(self):
        net = grid_city(rows=10, cols=10, seed=1)
        assert is_strongly_connected(net)

    def test_deterministic_for_seed(self):
        a = grid_city(rows=8, cols=8, seed=42)
        b = grid_city(rows=8, cols=8, seed=42)
        assert a.num_vertices == b.num_vertices
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = grid_city(rows=8, cols=8, seed=1)
        b = grid_city(rows=8, cols=8, seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_vertex_count_bounded(self):
        net = grid_city(rows=6, cols=7, seed=0)
        assert 1 <= net.num_vertices <= 42

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_city(rows=1, cols=5)

    def test_no_removals_keeps_full_grid(self):
        net = grid_city(rows=5, cols=5, removal_rate=0.0, one_way_rate=0.0, seed=0)
        assert net.num_vertices == 25
        assert net.num_edges == 2 * (2 * 5 * 4)  # 40 undirected segments

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=100))
    def test_always_strongly_connected(self, size, seed):
        net = grid_city(rows=size, cols=size, removal_rate=0.15, one_way_rate=0.2, seed=seed)
        assert is_strongly_connected(net)

    def test_spacing_scales_extent(self):
        small = grid_city(rows=5, cols=5, spacing_m=100.0, jitter=0.0, removal_rate=0.0, seed=0)
        big = grid_city(rows=5, cols=5, spacing_m=300.0, jitter=0.0, removal_rate=0.0, seed=0)
        assert big.xy[:, 0].max() == pytest.approx(3 * small.xy[:, 0].max())


class TestRingRadialCity:
    def test_connected(self):
        net = ring_radial_city(num_rings=4, num_radials=8, seed=0)
        assert is_strongly_connected(net)

    def test_vertex_count(self):
        net = ring_radial_city(num_rings=3, num_radials=6, seed=0)
        assert net.num_vertices == 1 + 3 * 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ring_radial_city(num_rings=0)
        with pytest.raises(ValueError):
            ring_radial_city(num_radials=2)


class TestSmallTestNetwork:
    def test_layout(self, tiny_net):
        assert tiny_net.num_vertices == 9
        assert tiny_net.point(0).x == 0.0
        assert tiny_net.point(8).y == 200.0

    def test_strongly_connected(self, tiny_net):
        assert is_strongly_connected(tiny_net)
