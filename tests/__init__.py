"""Test package for the mT-Share reproduction.

The package marker keeps `tests.conftest` importable regardless of how
pytest is invoked (`pytest` vs `python -m pytest`).
"""
