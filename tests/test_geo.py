"""Unit tests for the geographic primitives."""

import math

import pytest
from hypothesis import assume, given, strategies as st

from repro.network.geo import (
    Point,
    bearing_deg,
    centroid,
    cosine_similarity,
    euclidean,
    haversine_m,
    latlng_to_xy,
    xy_to_latlng,
)

finite = st.floats(min_value=-5e4, max_value=5e4, allow_nan=False)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_unpacking(self):
        x, y = Point(1.5, -2.5)
        assert (x, y) == (1.5, -2.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0.0, 0.0).x = 1.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(30.0, 104.0, 30.0, 104.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is about 111.2 km everywhere.
        d = haversine_m(30.0, 104.0, 31.0, 104.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        a = haversine_m(30.66, 104.06, 30.70, 104.10)
        b = haversine_m(30.70, 104.10, 30.66, 104.06)
        assert a == pytest.approx(b)


class TestProjection:
    def test_origin_maps_to_zero(self):
        p = latlng_to_xy(30.6598, 104.0633)
        assert p.x == pytest.approx(0.0, abs=1e-6)
        assert p.y == pytest.approx(0.0, abs=1e-6)

    def test_round_trip(self):
        lat, lng = 30.70, 104.10
        p = latlng_to_xy(lat, lng)
        lat2, lng2 = xy_to_latlng(p.x, p.y)
        assert lat2 == pytest.approx(lat, abs=1e-9)
        assert lng2 == pytest.approx(lng, abs=1e-9)

    def test_projection_close_to_haversine(self):
        lat, lng = 30.69, 104.09
        p = latlng_to_xy(lat, lng)
        planar = math.hypot(p.x, p.y)
        true = haversine_m(30.6598, 104.0633, lat, lng)
        assert planar == pytest.approx(true, rel=0.001)

    @given(
        st.floats(min_value=30.5, max_value=30.8),
        st.floats(min_value=103.9, max_value=104.2),
    )
    def test_round_trip_property(self, lat, lng):
        p = latlng_to_xy(lat, lng)
        lat2, lng2 = xy_to_latlng(p.x, p.y)
        assert abs(lat2 - lat) < 1e-9
        assert abs(lng2 - lng) < 1e-9


class TestCosineSimilarity:
    def test_parallel(self):
        assert cosine_similarity(1.0, 0.0, 2.0, 0.0) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(1.0, 0.0, 0.0, 1.0) == pytest.approx(0.0)

    def test_opposite(self):
        assert cosine_similarity(1.0, 1.0, -1.0, -1.0) == pytest.approx(-1.0)

    def test_zero_vector_counts_as_aligned(self):
        # Degenerate vectors impose no directional constraint.
        assert cosine_similarity(0.0, 0.0, 1.0, 2.0) == 1.0
        assert cosine_similarity(1.0, 2.0, 0.0, 0.0) == 1.0

    @given(finite, finite, finite, finite)
    def test_bounded(self, ax, ay, bx, by):
        v = cosine_similarity(ax, ay, bx, by)
        assert -1.0 - 1e-9 <= v <= 1.0 + 1e-9

    @given(finite, finite, st.floats(min_value=0.1, max_value=100.0))
    def test_scale_invariant(self, ax, ay, k):
        # Subnormal magnitudes underflow to a true zero vector when
        # scaled, which legitimately changes the answer — skip them.
        assume(math.hypot(ax, ay) > 1e-12)
        v1 = cosine_similarity(ax, ay, 3.0, 4.0)
        v2 = cosine_similarity(ax * k, ay * k, 3.0, 4.0)
        assert v1 == pytest.approx(v2, abs=1e-9)


class TestBearing:
    @pytest.mark.parametrize(
        "dx, dy, expected",
        [(1.0, 0.0, 0.0), (0.0, 1.0, 90.0), (-1.0, 0.0, 180.0), (0.0, -1.0, 270.0)],
    )
    def test_cardinal_directions(self, dx, dy, expected):
        assert bearing_deg(0.0, 0.0, dx, dy) == pytest.approx(expected)

    def test_range(self):
        assert 0.0 <= bearing_deg(0.0, 0.0, -1.0, -1.0) < 360.0


class TestEuclideanAndCentroid:
    def test_euclidean(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_centroid_of_square(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        c = centroid(pts)
        assert (c.x, c.y) == (1.0, 1.0)

    def test_centroid_single_point(self):
        c = centroid([Point(5.0, -1.0)])
        assert (c.x, c.y) == (5.0, -1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])
