"""End-to-end simulator tests: invariants that must hold for every scheme."""

import math

import pytest

from repro.core.payment import PaymentModel
from repro.sim.engine import Simulator


SCHEMES = ["no-sharing", "t-share", "pgreedydp", "mt-share"]


@pytest.fixture(scope="module")
def peak_runs(test_scenario):
    """One simulation per scheme on the shared test scenario."""
    runs = {}
    requests = test_scenario.requests()
    for name in SCHEMES:
        sim = Simulator(
            test_scenario.make_scheme(name),
            test_scenario.make_fleet(15, seed=1),
            requests,
            payment=PaymentModel(),
        )
        metrics = sim.run()
        runs[name] = (sim, metrics)
    return runs


class TestInvariants:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_served_bounded_by_requests(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert 0 <= m.served <= m.num_requests

    @pytest.mark.parametrize("name", SCHEMES)
    def test_some_requests_served(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert m.served > 0

    @pytest.mark.parametrize("name", SCHEMES)
    def test_completed_trips_meet_deadlines(self, peak_runs, name):
        sim, _m = peak_runs[name]
        for trip in sim.log.completed():
            assert trip.dropoff_time <= trip.request.deadline + 1e-6
            assert trip.pickup_time <= trip.request.pickup_deadline + 1e-6
            assert trip.pickup_time >= trip.request.release_time - 1e-6

    @pytest.mark.parametrize("name", SCHEMES)
    def test_waiting_and_detour_non_negative(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert all(w >= -1e-9 for w in m.waiting_times_s)
        assert all(d >= 0.0 for d in m.detour_times_s)

    @pytest.mark.parametrize("name", SCHEMES)
    def test_assigned_trips_complete(self, peak_runs, name):
        sim, m = peak_runs[name]
        # Every assignment eventually completes within the drain horizon.
        incomplete = [t for t in sim.log.trips.values() if not t.completed]
        assert len(incomplete) == 0
        assert m.completed == m.served

    @pytest.mark.parametrize("name", SCHEMES)
    def test_response_time_measured(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert len(m.response_times_s) == m.num_online
        assert m.avg_response_ms >= 0.0

    def test_no_sharing_has_zero_detour(self, peak_runs):
        _sim, m = peak_runs["no-sharing"]
        assert m.avg_detour_min == pytest.approx(0.0)

    def test_sharing_serves_at_least_no_sharing(self, peak_runs):
        base = peak_runs["no-sharing"][1].served
        for name in ("t-share", "pgreedydp", "mt-share"):
            assert peak_runs[name][1].served >= base * 0.8

    @pytest.mark.parametrize("name", SCHEMES)
    def test_fleet_ends_idle(self, peak_runs, name):
        sim, _m = peak_runs[name]
        for taxi in sim.fleet.values():
            assert taxi.occupancy == 0
            assert not taxi.assigned

    @pytest.mark.parametrize("name", SCHEMES)
    def test_payment_aggregates_consistent(self, peak_runs, name):
        _sim, m = peak_runs[name]
        if m.regular_fares > 0:
            assert m.shared_fares <= m.regular_fares + 1e-6
            assert m.driver_incomes >= m.route_fares - 1e-6


class TestDeterminism:
    def test_same_seed_same_outcome(self, test_scenario):
        results = []
        for _ in range(2):
            sim = Simulator(
                test_scenario.make_scheme("mt-share"),
                test_scenario.make_fleet(10, seed=2),
                test_scenario.requests(),
            )
            m = sim.run()
            results.append((m.served, tuple(sorted(sim.log.trips))))
        assert results[0] == results[1]


class TestOfflineHandling:
    @pytest.fixture(scope="class")
    def nonpeak_run(self, test_nonpeak_scenario):
        sim = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share-pro"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            test_nonpeak_scenario.requests(),
        )
        return sim, sim.run()

    def test_offline_requests_counted(self, nonpeak_run):
        _sim, m = nonpeak_run
        assert m.num_offline > 0
        assert m.num_online + m.num_offline == m.num_requests

    def test_offline_can_be_served(self, nonpeak_run):
        _sim, m = nonpeak_run
        assert m.served_offline >= 0
        assert m.served_offline <= m.num_offline

    def test_offline_served_trips_respect_deadlines(self, nonpeak_run):
        sim, _m = nonpeak_run
        for trip in sim.log.completed():
            if trip.request.offline:
                assert trip.pickup_time >= trip.request.release_time - 1e-6
                assert trip.dropoff_time <= trip.request.deadline + 1e-6

    def test_no_redispatch_serves_fewer_or_equal(self, test_nonpeak_scenario):
        requests = test_nonpeak_scenario.requests()
        with_r = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            requests,
            redispatch_encounters=True,
        ).run()
        without_r = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            requests,
            redispatch_encounters=False,
        ).run()
        assert without_r.served_offline <= with_r.served_offline

    def test_encounter_radius_zero_still_works(self, test_nonpeak_scenario):
        m = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(10, seed=0),
            test_nonpeak_scenario.requests(),
            encounter_radius_m=0.0,
        ).run()
        assert m.served >= 0  # exact-vertex encounters only


class TestMetricsSummary:
    def test_summary_keys(self, peak_runs):
        s = peak_runs["mt-share"][1].summary()
        for key in ("served", "response_ms", "waiting_min", "detour_min", "candidates"):
            assert key in s

    def test_str_renders(self, peak_runs):
        assert "mT-Share" in str(peak_runs["mt-share"][1])

    def test_service_rate(self, peak_runs):
        m = peak_runs["mt-share"][1]
        assert m.service_rate == pytest.approx(m.served / m.num_requests)
