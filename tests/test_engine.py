"""End-to-end simulator tests: invariants that must hold for every scheme."""

import pytest

from repro.core.payment import PaymentModel
from repro.fleet.schedule import dropoff, pickup
from repro.fleet.taxi import Taxi, TaxiRoute, build_route
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationMetrics
from tests.conftest import make_request


SCHEMES = ["no-sharing", "t-share", "pgreedydp", "mt-share"]


@pytest.fixture(scope="module")
def peak_runs(test_scenario):
    """One simulation per scheme on the shared test scenario."""
    runs = {}
    requests = test_scenario.requests()
    for name in SCHEMES:
        sim = Simulator(
            test_scenario.make_scheme(name),
            test_scenario.make_fleet(15, seed=1),
            requests,
            payment=PaymentModel(),
        )
        metrics = sim.run()
        runs[name] = (sim, metrics)
    return runs


class TestInvariants:
    @pytest.mark.parametrize("name", SCHEMES)
    def test_served_bounded_by_requests(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert 0 <= m.served <= m.num_requests

    @pytest.mark.parametrize("name", SCHEMES)
    def test_some_requests_served(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert m.served > 0

    @pytest.mark.parametrize("name", SCHEMES)
    def test_completed_trips_meet_deadlines(self, peak_runs, name):
        sim, _m = peak_runs[name]
        for trip in sim.log.completed():
            assert trip.dropoff_time <= trip.request.deadline + 1e-6
            assert trip.pickup_time <= trip.request.pickup_deadline + 1e-6
            assert trip.pickup_time >= trip.request.release_time - 1e-6

    @pytest.mark.parametrize("name", SCHEMES)
    def test_waiting_and_detour_non_negative(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert all(w >= -1e-9 for w in m.waiting_times_s)
        assert all(d >= 0.0 for d in m.detour_times_s)

    @pytest.mark.parametrize("name", SCHEMES)
    def test_assigned_trips_complete(self, peak_runs, name):
        sim, m = peak_runs[name]
        # Every assignment eventually completes within the drain horizon.
        incomplete = [t for t in sim.log.trips.values() if not t.completed]
        assert len(incomplete) == 0
        assert m.completed == m.served

    @pytest.mark.parametrize("name", SCHEMES)
    def test_response_time_measured(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert len(m.response_times_s) == m.num_online
        assert m.avg_response_ms >= 0.0

    def test_no_sharing_has_zero_detour(self, peak_runs):
        _sim, m = peak_runs["no-sharing"]
        assert m.avg_detour_min == pytest.approx(0.0)

    def test_sharing_serves_at_least_no_sharing(self, peak_runs):
        base = peak_runs["no-sharing"][1].served
        for name in ("t-share", "pgreedydp", "mt-share"):
            assert peak_runs[name][1].served >= base * 0.8

    @pytest.mark.parametrize("name", SCHEMES)
    def test_fleet_ends_idle(self, peak_runs, name):
        sim, _m = peak_runs[name]
        for taxi in sim.fleet.values():
            assert taxi.occupancy == 0
            assert not taxi.assigned

    @pytest.mark.parametrize("name", SCHEMES)
    def test_payment_aggregates_consistent(self, peak_runs, name):
        _sim, m = peak_runs[name]
        if m.regular_fares > 0:
            assert m.shared_fares <= m.regular_fares + 1e-6
            assert m.driver_incomes >= m.route_fares - 1e-6


class TestDeterminism:
    def test_same_seed_same_outcome(self, test_scenario):
        results = []
        for _ in range(2):
            sim = Simulator(
                test_scenario.make_scheme("mt-share"),
                test_scenario.make_fleet(10, seed=2),
                test_scenario.requests(),
            )
            m = sim.run()
            results.append((m.served, tuple(sorted(sim.log.trips))))
        assert results[0] == results[1]


class TestOfflineHandling:
    @pytest.fixture(scope="class")
    def nonpeak_run(self, test_nonpeak_scenario):
        sim = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share-pro"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            test_nonpeak_scenario.requests(),
        )
        return sim, sim.run()

    def test_offline_requests_counted(self, nonpeak_run):
        _sim, m = nonpeak_run
        assert m.num_offline > 0
        assert m.num_online + m.num_offline == m.num_requests

    def test_offline_can_be_served(self, nonpeak_run):
        _sim, m = nonpeak_run
        assert m.served_offline >= 0
        assert m.served_offline <= m.num_offline

    def test_offline_served_trips_respect_deadlines(self, nonpeak_run):
        sim, _m = nonpeak_run
        for trip in sim.log.completed():
            if trip.request.offline:
                assert trip.pickup_time >= trip.request.release_time - 1e-6
                assert trip.dropoff_time <= trip.request.deadline + 1e-6

    def test_no_redispatch_serves_fewer_or_equal(self, test_nonpeak_scenario):
        requests = test_nonpeak_scenario.requests()
        with_r = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            requests,
            redispatch_encounters=True,
        ).run()
        without_r = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(15, seed=1),
            requests,
            redispatch_encounters=False,
        ).run()
        assert without_r.served_offline <= with_r.served_offline

    def test_encounter_radius_zero_still_works(self, test_nonpeak_scenario):
        m = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(10, seed=0),
            test_nonpeak_scenario.requests(),
            encounter_radius_m=0.0,
        ).run()
        assert m.served >= 0  # exact-vertex encounters only


class TestRequestAccounting:
    """Regression: every request must land in exactly one outcome bucket.

    Expired offline requests used to vanish silently in the encounter
    scan, leaving ``served + failed`` short of the request total."""

    @pytest.mark.parametrize("name", SCHEMES)
    def test_online_balance(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert m.served_online + m.unserved_online == m.num_online

    @pytest.mark.parametrize("name", SCHEMES)
    def test_offline_balance(self, peak_runs, name):
        _sim, m = peak_runs[name]
        assert m.expired_offline >= 0
        assert (
            m.served_offline + m.expired_offline + m.unserved_offline
            == m.num_offline
        )

    def test_nonpeak_offline_balance(self, test_nonpeak_scenario):
        m = Simulator(
            test_nonpeak_scenario.make_scheme("mt-share"),
            test_nonpeak_scenario.make_fleet(12, seed=4),
            test_nonpeak_scenario.requests(),
        ).run()
        assert (
            m.served_offline + m.expired_offline + m.unserved_offline
            == m.num_offline
        )
        assert m.served_online + m.unserved_online == m.num_online

    def test_check_balance_raises_on_leak(self):
        m = SimulationMetrics(scheme_name="x")
        m.num_online = 2
        m.served_online = 1  # one request unaccounted for
        with pytest.raises(ValueError, match="online"):
            m.check_balance()
        m.unserved_online = 1
        m.check_balance()  # balanced now
        m.num_offline = 3
        m.served_offline = 1
        m.expired_offline = 1
        with pytest.raises(ValueError, match="offline"):
            m.check_balance()
        m.unserved_offline = 1
        m.check_balance()


class TestStopFiringSignal:
    """Regression: ``on_taxi_advanced`` must report true stop firings.

    ``stops_fired`` was computed as ``taxi.idle or ...``, so an idle
    taxi cruising through vertices claimed "stops fired" on every tick
    and triggered needless index refreshes."""

    @staticmethod
    def _route_through(tiny_net, tiny_engine, origin, destination):
        nodes = tiny_engine.path(origin, destination)
        times = [0.0]
        for u, v in zip(nodes, nodes[1:]):
            times.append(times[-1] + tiny_net.path_cost_s([u, v]))
        return nodes, times

    def test_cruise_does_not_fire_stops(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        nodes, times = self._route_through(tiny_net, tiny_engine, 0, 8)
        # A demand-seeking cruise: a concrete route with no stops.
        taxi.set_plan([], TaxiRoute(nodes=nodes, times=times, stop_positions=[]))
        assert taxi.idle  # no pending stops
        traversed = taxi.advance(times[-1] + 1.0)
        assert len(traversed) == len(nodes)  # the taxi really moved
        assert taxi.stops_fired_total == 0  # ... but no stop fired

    def test_stop_firings_are_monotone_across_plans(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request(
            origin=0, destination=8, direct_cost=tiny_engine.cost(0, 8), rho=2.5
        )
        stops = [pickup(r), dropoff(r)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.assign(r)
        taxi.set_plan(stops, route)
        taxi.advance(route.end_time + 1.0)
        assert taxi.stops_fired_total == 2
        assert taxi.idle  # schedule completed, per-schedule index reset
        # The lifetime counter survives the next plan installation.
        r2 = make_request(
            request_id=1, release_time=route.end_time + 1.0,
            origin=8, destination=0, direct_cost=tiny_engine.cost(8, 0), rho=2.5,
        )
        stops2 = [pickup(r2), dropoff(r2)]
        route2 = build_route(
            8, route.end_time + 1.0, stops2, tiny_engine.path, tiny_net.path_cost_s
        )
        taxi.assign(r2)
        taxi.set_plan(stops2, route2)
        assert taxi.stops_fired_total == 2
        taxi.advance(route2.end_time + 1.0)
        assert taxi.stops_fired_total == 4

    @pytest.mark.parametrize("name", SCHEMES)
    def test_notifications_bounded_by_advances(self, peak_runs, name):
        _sim, m = peak_runs[name]
        c = m.counters
        assert c.get("sim.stop_notifications", 0) <= c["sim.taxi_advances"]

    def test_index_refreshes_reduced(self, peak_runs):
        # Deadhead legs and post-drop-off repositioning move taxis
        # without firing stops, so true firings must be strictly rarer
        # than movement notifications — the reduction this fix buys.
        _sim, m = peak_runs["mt-share"]
        c = m.counters
        assert 0 < c["sim.stop_notifications"] < c["sim.taxi_advances"]


class TestMetricsSummary:
    def test_summary_keys(self, peak_runs):
        s = peak_runs["mt-share"][1].summary()
        for key in ("served", "response_ms", "waiting_min", "detour_min", "candidates"):
            assert key in s

    def test_str_renders(self, peak_runs):
        assert "mT-Share" in str(peak_runs["mt-share"][1])

    def test_service_rate(self, peak_runs):
        m = peak_runs["mt-share"][1]
        assert m.service_rate == pytest.approx(m.served / m.num_requests)


class TestDeterminism:
    """Two identical runs must produce identical assignments.

    Regression for hash-seed-dependent candidate ordering:
    ``PartitionTaxiIndex.union_taxis`` returns sorted ids so the
    tie-broken match winners do not depend on set-iteration order.
    """

    @pytest.mark.parametrize("name", ["mt-share", "t-share"])
    def test_identical_runs_identical_assignments(self, test_scenario, name):
        def run_once():
            sim = Simulator(
                test_scenario.make_scheme(name),
                test_scenario.make_fleet(15, seed=1),
                test_scenario.requests(),
            )
            sim.run()
            return {
                rid: (trip.taxi_id, trip.assign_time, trip.pickup_time, trip.dropoff_time)
                for rid, trip in sim.log.trips.items()
            }

        assert run_once() == run_once()


class TestDrainClock:
    """Regression: ``Simulator.run`` must commit ``self._now`` on every
    drain step.

    The clock used to stay stale at ``last_release`` for the whole
    drain loop, so ``contracts.check_monotone_clock`` compared each
    step against the wrong previous value and event-boundary logic
    (fault injection) read old time."""

    def test_clock_tracks_drain_steps(self, small_net, small_engine):
        from repro.baselines.nosharing import NoSharing
        from repro.config import SystemConfig
        from repro.sim.engine import DRAIN_STEP_S
        from tests.conftest import make_request

        class ClockRecorder(Simulator):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.boundaries = []

            def _advance_all(self, now):
                self.boundaries.append((self._now, now))
                super()._advance_all(now)

        width = small_net.xy[:, 0].max() - small_net.xy[:, 0].min()
        config = SystemConfig(search_range_m=float(width) * 2.0,
                              speed_mps=small_net.speed_mps)
        scheme = NoSharing(small_net, small_engine, config)
        # One long trip released at t=0: the whole run is drain steps.
        request = make_request(
            request_id=0, release_time=0.0, origin=0, destination=99,
            direct_cost=small_engine.cost(0, 99), rho=3.0,
        )
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        sim = ClockRecorder(scheme, [taxi], [request])
        sim.run()

        drain = [(prev, now) for prev, now in sim.boundaries if now > 0.0]
        assert len(drain) >= 2  # the trip spans several drain steps
        for prev, now in drain:
            # The committed clock is the *previous* boundary, one step
            # behind — not frozen at the last release (0.0).
            assert prev == pytest.approx(now - DRAIN_STEP_S)


class TestDrainHorizonCutoff:
    """Regression: episodes cut off by the drain horizon must be settled.

    Passengers still aboard at the deadline never reached occupancy 0,
    so their episode was never settled and its fares silently vanished
    from ``regular_fares``/``shared_fares``.  The engine now
    force-settles open episodes at the cutoff instant and counts them
    in ``unsettled_episodes``."""

    @pytest.fixture()
    def cutoff_run(self, small_net, small_engine, monkeypatch):
        from repro.baselines.nosharing import NoSharing
        from repro.config import SystemConfig
        from tests.conftest import make_request

        # Cut the run two drain steps after the last release, long
        # before the ~11-minute cross-town trip can finish.
        monkeypatch.setattr("repro.sim.engine.DRAIN_HORIZON_S", 120.0)
        width = small_net.xy[:, 0].max() - small_net.xy[:, 0].min()
        config = SystemConfig(search_range_m=float(width) * 2.0,
                              speed_mps=small_net.speed_mps)
        scheme = NoSharing(small_net, small_engine, config)
        request = make_request(
            request_id=0, release_time=0.0, origin=0, destination=99,
            direct_cost=small_engine.cost(0, 99), rho=3.0,
        )
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        sim = Simulator(scheme, [taxi], [request], payment=PaymentModel())
        return sim, sim.run()

    def test_passenger_still_aboard_at_deadline(self, cutoff_run):
        sim, m = cutoff_run
        trip = sim.log.trips[0]
        assert not trip.completed  # picked up, never dropped off
        assert sim.fleet[0].occupancy == 1

    def test_open_episode_settled_and_counted(self, cutoff_run):
        _sim, m = cutoff_run
        assert m.unsettled_episodes == 1
        # The interrupted episode's fares land in the aggregates
        # instead of vanishing.
        assert m.regular_fares > 0.0
        assert m.shared_fares > 0.0
        assert m.counters.get("sim.unsettled_episodes") == 1

    def test_balance_still_closes(self, cutoff_run):
        _sim, m = cutoff_run
        m.check_balance()  # raises if any bucket leaked
        assert m.served_online == 1


class TestUnsortedStreamIngest:
    """Regression: an unsorted request stream must not corrupt the clock.

    The batch loop used to trust ``self._requests`` to be sorted: any
    out-of-order delivery (a stream source, a caller bypassing the
    constructor) dragged the committed clock backwards — taxis
    re-advanced to an earlier ``now``, fault replay cursors ran ahead,
    and with contracts on the run died on ``check_monotone_clock``.
    The kernel heap-orders ingest, so delivery order no longer matters:
    a shuffled workload must produce bit-identical decisions to the
    sorted one."""

    def _run(self, test_scenario, shuffle_seed=None):
        import random

        requests = test_scenario.requests()
        sim = Simulator(
            test_scenario.make_scheme("mt-share"),
            test_scenario.make_fleet(15, seed=1),
            requests,
        )
        if shuffle_seed is not None:
            # Emulate out-of-order stream delivery by bypassing the
            # constructor's sort.
            shuffled = list(sim._requests)
            random.Random(shuffle_seed).shuffle(shuffled)
            assert shuffled != sim._requests
            sim._requests = shuffled
        m = sim.run()
        trips = {
            rid: (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
            for rid, t in sim.log.trips.items()
        }
        return trips, m

    def test_shuffled_stream_matches_sorted(self, test_scenario):
        # Distinct release times make the heap order total, so the
        # shuffled run must reproduce the sorted run exactly.
        times = [r.release_time for r in test_scenario.requests()]
        assert len(set(times)) == len(times)

        trips_sorted, m_sorted = self._run(test_scenario)
        trips_shuffled, m_shuffled = self._run(test_scenario, shuffle_seed=7)
        assert trips_shuffled == trips_sorted
        assert m_shuffled.served == m_sorted.served
        assert m_shuffled.waiting_times_s == m_sorted.waiting_times_s
        assert m_shuffled.detour_times_s == m_sorted.detour_times_s
        assert m_shuffled.candidate_counts == m_sorted.candidate_counts
        m_shuffled.check_balance()


class TestDrainOvershoot:
    """Regression: the drain loop must not step past its horizon.

    ``while now < deadline: now += DRAIN_STEP_S`` overstepped the
    deadline by up to one full step whenever the horizon was not a
    step multiple — fleet state advanced and episodes settled up to
    ``DRAIN_STEP_S`` seconds past the advertised cutoff.  The kernel
    drain clamps the last tick to the deadline, so the final boundary
    lands exactly on it."""

    def test_last_drain_boundary_lands_on_deadline(
        self, small_net, small_engine, monkeypatch
    ):
        from repro.baselines.nosharing import NoSharing
        from repro.config import SystemConfig
        from tests.conftest import make_request

        # A horizon that is NOT a multiple of DRAIN_STEP_S (60 s).
        monkeypatch.setattr("repro.sim.engine.DRAIN_HORIZON_S", 150.0)

        class ClockRecorder(Simulator):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.boundaries = []

            def _advance_all(self, now):
                self.boundaries.append(now)
                super()._advance_all(now)

        width = small_net.xy[:, 0].max() - small_net.xy[:, 0].min()
        config = SystemConfig(search_range_m=float(width) * 2.0,
                              speed_mps=small_net.speed_mps)
        scheme = NoSharing(small_net, small_engine, config)
        # One cross-town trip (~11 min) released at t=0: the taxi is
        # still busy when the 150 s horizon cuts the run.
        request = make_request(
            request_id=0, release_time=0.0, origin=0, destination=99,
            direct_cost=small_engine.cost(0, 99), rho=3.0,
        )
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        sim = ClockRecorder(scheme, [taxi], [request], payment=PaymentModel())
        m = sim.run()

        drain = [t for t in sim.boundaries if t > 0.0]
        assert drain, "the run must actually drain"
        # No boundary past the horizon, and the last one exactly on it.
        assert max(drain) <= 150.0
        assert drain[-1] == pytest.approx(150.0)
        # The cut-off episode settles at the cutoff instant, not beyond.
        assert sim._now == pytest.approx(150.0)
        assert m.unsettled_episodes == 1
        m.check_balance()
