"""Shared fixtures: tiny deterministic networks and a small scenario."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import contracts
from repro.artifacts import ARTIFACT_DIR_ENV
from repro.demand.request import RideRequest
from repro.network.generators import grid_city, small_test_network
from repro.network.landmarks import LandmarkGraph
from repro.network.shortest_path import ShortestPathEngine
from repro.partitioning.bipartite import bipartite_partition
from repro.sim.scenario import ScenarioSpec, get_scenario


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_store(tmp_path_factory):
    """Keep test artifacts out of the user's real store.

    Unless the caller pinned a store location explicitly, the whole
    session runs against a throwaway directory (still exercising the
    persistence paths, but hermetically).
    """
    if os.environ.get(ARTIFACT_DIR_ENV):
        yield
        return
    os.environ[ARTIFACT_DIR_ENV] = str(tmp_path_factory.mktemp("artifact-store"))
    yield
    os.environ.pop(ARTIFACT_DIR_ENV, None)


@pytest.fixture(scope="session", autouse=True)
def _contracts_on():
    """Run the whole suite with runtime invariant contracts enabled.

    Every simulation in the tier-1 tests then exercises the schedule /
    clock / accounting contracts (see repro.analysis.contracts).  An
    explicit ``REPRO_CONTRACTS=0`` still wins, so the disabled path can
    be measured.
    """
    if os.environ.get(contracts.ENV_VAR, "").strip().lower() in ("0", "false", "off"):
        yield
        return
    previous = contracts.enabled()
    contracts.enable(True)
    yield
    contracts.enable(previous)


@pytest.fixture(scope="session")
def tiny_net():
    """3x3 deterministic bidirectional grid (100 m spacing)."""
    return small_test_network()


@pytest.fixture(scope="session")
def tiny_engine(tiny_net):
    """Full-APSP engine over the tiny network."""
    return ShortestPathEngine(tiny_net)


@pytest.fixture(scope="session")
def small_net():
    """A 10x10 perturbed city used where a bit more structure is needed."""
    return grid_city(rows=10, cols=10, spacing_m=150.0, seed=5)


@pytest.fixture(scope="session")
def small_engine(small_net):
    return ShortestPathEngine(small_net)


@pytest.fixture(scope="session")
def small_trips(small_net):
    """Synthetic historical OD pairs over the small network."""
    rng = np.random.default_rng(11)
    return rng.integers(0, small_net.num_vertices, size=(3000, 2))


@pytest.fixture(scope="session")
def small_partitioning(small_net, small_trips):
    return bipartite_partition(
        small_net, small_trips, num_partitions=10, num_transition_clusters=4, seed=2
    )


@pytest.fixture(scope="session")
def small_landmarks(small_net, small_partitioning, small_engine):
    return LandmarkGraph(small_net, small_partitioning.partitions, small_engine)


@pytest.fixture(scope="session")
def test_spec():
    """A scenario spec small enough for per-test simulations."""
    return ScenarioSpec(
        kind="peak",
        grid_rows=12,
        grid_cols=12,
        spacing_m=180.0,
        hourly_requests=250,
        history_days=2,
        num_partitions=16,
        offline_count=40,
        seed=3,
    )


@pytest.fixture(scope="session")
def test_nonpeak_spec():
    return ScenarioSpec(
        kind="nonpeak",
        grid_rows=12,
        grid_cols=12,
        spacing_m=180.0,
        hourly_requests=250,
        history_days=2,
        num_partitions=16,
        offline_count=40,
        seed=3,
    )


@pytest.fixture(scope="session")
def test_scenario(test_spec):
    return get_scenario(test_spec)


@pytest.fixture(scope="session")
def test_nonpeak_scenario(test_nonpeak_spec):
    return get_scenario(test_nonpeak_spec)


def make_request(
    request_id=0,
    release_time=0.0,
    origin=0,
    destination=8,
    direct_cost=100.0,
    rho=1.3,
    offline=False,
    num_passengers=1,
):
    """Request factory with permissive defaults for unit tests."""
    return RideRequest.from_flexible_factor(
        request_id=request_id,
        release_time=release_time,
        origin=origin,
        destination=destination,
        direct_cost=direct_cost,
        rho=rho,
        offline=offline,
        num_passengers=num_passengers,
    )


@pytest.fixture
def request_factory():
    return make_request
