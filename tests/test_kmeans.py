"""Tests for the internal k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning.kmeans import KMeansResult, cluster_sizes, kmeans


def blobs(seed=0, per=30):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    return np.vstack([c + rng.normal(0, 0.5, size=(per, 2)) for c in centers])


class TestKMeans:
    def test_separated_blobs_recovered(self):
        data = blobs()
        result = kmeans(data, 3, seed=1)
        # Each blob of 30 should land in one cluster.
        assert sorted(cluster_sizes(result.labels, 3).tolist()) == [30, 30, 30]

    def test_label_range(self):
        result = kmeans(blobs(), 3, seed=1)
        assert set(result.labels) <= {0, 1, 2}
        assert result.num_clusters == 3

    def test_deterministic_for_seed(self):
        data = blobs()
        a = kmeans(data, 3, seed=5)
        b = kmeans(data, 3, seed=5)
        assert np.array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia

    def test_k_clamped_to_samples(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(data, 10, seed=0)
        assert result.num_clusters == 2

    def test_k_one(self):
        data = blobs()
        result = kmeans(data, 1, seed=0)
        assert (result.labels == 0).all()
        assert np.allclose(result.centers[0], data.mean(axis=0))

    def test_duplicate_points(self):
        data = np.zeros((10, 2))
        result = kmeans(data, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            kmeans(blobs(), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_result_type(self):
        assert isinstance(kmeans(blobs(), 2, seed=0), KMeansResult)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=50),
    )
    def test_invariants(self, n, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        result = kmeans(data, k, seed=seed)
        k_eff = min(k, n)
        assert result.labels.shape == (n,)
        assert result.centers.shape == (k_eff, 3)
        assert result.inertia >= 0.0
        # Every label used (empty clusters are re-seeded).
        assert set(result.labels) == set(range(k_eff)) or n < k_eff

    def test_inertia_decreases_with_more_clusters(self):
        data = blobs(seed=3)
        i2 = kmeans(data, 2, seed=0).inertia
        i6 = kmeans(data, 6, seed=0).inertia
        assert i6 <= i2


class TestClusterSizes:
    def test_basic(self):
        sizes = cluster_sizes(np.array([0, 0, 1, 2, 2, 2]), 3)
        assert sizes.tolist() == [2, 1, 3]

    def test_infers_k(self):
        assert cluster_sizes(np.array([0, 2])).tolist() == [1, 0, 1]

    def test_empty(self):
        assert cluster_sizes(np.array([], dtype=int)).tolist() == []
