"""Tests for partition filtering (Algorithm 2)."""

import pytest

from repro.core.partition_filter import PartitionFilter
from repro.network.landmarks import LandmarkGraph


@pytest.fixture(scope="module")
def row_lg(tiny_net, tiny_engine):
    """3x3 grid partitioned into its three rows."""
    return LandmarkGraph(tiny_net, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], tiny_engine)


class TestFilter:
    def test_same_partition(self, row_lg):
        pf = PartitionFilter(row_lg)
        assert pf.filter_partitions(1, 1) == [1]

    def test_endpoints_always_retained(self, row_lg):
        pf = PartitionFilter(row_lg, lam=0.999, epsilon=0.0)
        retained = pf.filter_partitions(0, 2)
        assert 0 in retained and 2 in retained

    def test_on_the_way_partition_retained(self, row_lg):
        pf = PartitionFilter(row_lg, lam=0.707, epsilon=1.0)
        # Going from row 0 to row 2 passes row 1: direction is straight
        # north and the cost via row 1's landmark equals the direct cost.
        assert 1 in pf.filter_partitions(0, 2)

    def test_cost_rule_excludes_detours(self, small_landmarks):
        strict = PartitionFilter(small_landmarks, lam=-1.0, epsilon=0.0)
        loose = PartitionFilter(small_landmarks, lam=-1.0, epsilon=10.0)
        k = small_landmarks.num_partitions
        for a in range(min(4, k)):
            for b in range(min(4, k)):
                if a == b:
                    continue
                assert set(strict.filter_partitions(a, b)) <= set(
                    loose.filter_partitions(a, b)
                )

    def test_direction_rule_excludes_backwards(self, small_landmarks):
        # With an extreme cost allowance, direction is the only filter:
        # lam close to 1 keeps nearly nothing beyond the endpoints.
        narrow = PartitionFilter(small_landmarks, lam=0.9999, epsilon=100.0)
        wide = PartitionFilter(small_landmarks, lam=-1.0, epsilon=100.0)
        k = small_landmarks.num_partitions
        a, b = 0, k - 1
        assert len(narrow.filter_partitions(a, b)) <= len(wide.filter_partitions(a, b))

    def test_memoisation(self, row_lg):
        pf = PartitionFilter(row_lg)
        first = pf.filter_partitions(0, 2)
        assert pf.filter_partitions(0, 2) is first
        assert pf.cache_size() == 1
        pf.clear_cache()
        assert pf.cache_size() == 0

    def test_filter_nodes_maps_to_partitions(self, row_lg):
        pf = PartitionFilter(row_lg)
        assert pf.filter_nodes(0, 8) == pf.filter_partitions(0, 2)

    def test_allowed_vertices(self, row_lg):
        pf = PartitionFilter(row_lg)
        allowed = pf.allowed_vertices(0, 2)
        assert {0, 1, 2, 6, 7, 8} <= set(allowed)
        # memoised
        assert pf.allowed_vertices(0, 2) is pf.allowed_vertices(0, 2)
