"""Kernel-equivalence property tests.

The PR-2 array kernels (batched cost queries, batched insertion
evaluation, CSR-subgraph restricted Dijkstra) must be *bit-identical*
to the retained scalar reference paths: same costs, same feasibility
masks, same chosen schedules.  Every test here drives both paths over
randomized small networks and diffs the results exactly — no
``approx`` — in both ``full`` and ``lazy`` engine modes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.matching as matching_mod
from repro.core.matching import Matcher
from repro.core.mobility_cluster import (
    ZERO_UNIT,
    MobilityClusterIndex,
    MobilityVector,
    direction_unit,
    unit_similarity,
)
from repro.core.routing import BasicRouter, compose_route
from repro.demand.request import RideRequest
from repro.fleet.schedule import (
    arrival_times,
    best_insertion_tight,
    capacity_ok,
    deadlines_met,
    dropoff,
    enumerate_insertions,
    evaluate_insertions,
    materialize_insertion,
    pickup,
    score_insertions_tight,
)
from repro.network.generators import grid_city
from repro.network.geo import cosine_similarity
from repro.network.landmarks import LandmarkGraph
from repro.network.shortest_path import (
    PathNotFound,
    ShortestPathEngine,
    clear_subgraph_cache,
    dijkstra_restricted,
    subgraph_cache_stats,
)
from repro.obs import NULL


@pytest.fixture(scope="module")
def net():
    """Perturbed directed grid: irregular edge lengths, no cost ties."""
    return grid_city(rows=7, cols=7, spacing_m=140.0, seed=17)


@pytest.fixture(scope="module", params=["full", "lazy"])
def engine(request, net):
    return ShortestPathEngine(net, mode=request.param)


def _random_request(rng, net, engine, rid):
    n = net.num_vertices
    origin = int(rng.integers(n))
    destination = int(rng.integers(n))
    while destination == origin or not engine.reachable(origin, destination):
        destination = int(rng.integers(n))
    direct = engine.cost(origin, destination)
    deadline = (1.0 + rng.uniform(0.0, 2.0)) * direct + rng.uniform(0.0, 600.0)
    return RideRequest(
        request_id=rid,
        release_time=0.0,
        origin=origin,
        destination=destination,
        deadline=deadline,
        direct_cost=direct,
    )


def _random_pending(rng, net, engine, base_rid):
    """A structurally valid pending schedule plus its onboard count."""
    stops = []
    onboard = 0
    rid = base_rid
    for _ in range(int(rng.integers(0, 3))):  # passengers already aboard
        r = _random_request(rng, net, engine, rid)
        rid += 1
        stops.append(dropoff(r))
        onboard += r.num_passengers
    for _ in range(int(rng.integers(0, 3))):  # assigned, not yet aboard
        r = _random_request(rng, net, engine, rid)
        rid += 1
        i = int(rng.integers(0, len(stops) + 1))
        j = int(rng.integers(i, len(stops) + 1))
        stops.insert(i, pickup(r))
        stops.insert(j + 1, dropoff(r))
    return stops, onboard


# ----------------------------------------------------------------------
# batched cost queries
# ----------------------------------------------------------------------
class TestBatchedCosts:
    def test_cost_many_bit_identical(self, net, engine):
        rng = np.random.default_rng(1)
        for _ in range(20):
            u = int(rng.integers(net.num_vertices))
            vs = rng.integers(0, net.num_vertices, size=15)
            batch = engine.cost_many(u, vs)
            scalar = np.array([engine.cost(u, int(v)) for v in vs])
            assert np.array_equal(batch, scalar)

    def test_cost_matrix_bit_identical(self, net, engine):
        rng = np.random.default_rng(2)
        # Duplicate sources on purpose: exercises the lazy-mode dedup.
        us = rng.integers(0, net.num_vertices, size=12)
        us[5] = us[0]
        vs = rng.integers(0, net.num_vertices, size=9)
        mat = engine.cost_matrix(us, vs)
        assert mat.shape == (12, 9)
        for a, u in enumerate(us):
            for b, v in enumerate(vs):
                assert mat[a, b] == engine.cost(int(u), int(v))

    def test_cost_matrix_accepts_lists(self, net, engine):
        mat = engine.cost_matrix([0, 3], [1])
        assert mat[0, 0] == engine.cost(0, 1)
        assert mat[1, 0] == engine.cost(3, 1)


# ----------------------------------------------------------------------
# batched insertion evaluation
# ----------------------------------------------------------------------
class TestBatchedInsertions:
    def test_matches_scalar_reference(self, net, engine):
        rng = np.random.default_rng(3)
        for trial in range(60):
            pending, onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            request = _random_request(rng, net, engine, rid=trial * 10 + 9)
            start = int(rng.integers(net.num_vertices))
            t0 = float(rng.uniform(0.0, 100.0))
            capacity = int(rng.integers(max(1, onboard + 1), 7))

            batch = evaluate_insertions(
                engine, start, t0, pending, request, onboard, capacity
            )
            rows = list(enumerate_insertions(pending, request))
            assert batch.size == len(rows)
            for k, (i, j, stops) in enumerate(rows):
                assert int(batch.pickup_idx[k]) == i
                assert int(batch.dropoff_idx[k]) == j
                assert batch.stops_for(k) == stops
                times = arrival_times(start, t0, stops, engine.cost)
                assert batch.last_arrival[k] == times[-1]
                ok = capacity_ok(stops, onboard, capacity) and deadlines_met(stops, times)
                assert bool(batch.feasible[k]) == ok

    def test_negative_occupancy_raises_like_scalar(self, net, engine):
        rng = np.random.default_rng(4)
        r1 = _random_request(rng, net, engine, rid=1)
        request = _random_request(rng, net, engine, rid=2)
        # Drop-off with nobody aboard: scalar capacity_ok raises.
        pending = [dropoff(r1)]
        with pytest.raises(ValueError):
            evaluate_insertions(engine, 0, 0.0, pending, request, 0, 4)


# ----------------------------------------------------------------------
# matcher-level choice equivalence
# ----------------------------------------------------------------------
class _FakeTaxi:
    """Just enough taxi surface for ``Matcher._best_insertion``."""

    def __init__(self, node, ready, pending, onboard, capacity):
        self._node = node
        self._ready = ready
        self._pending = pending
        self.occupancy = onboard
        self.capacity = capacity

    def position_at(self, now):
        return self._node, self._ready

    def pending_stops(self):
        return list(self._pending)

    def remaining_route_cost(self, ready):
        return 0.0


class TestMatcherEquivalence:
    def test_best_insertion_matches_scalar(self, net, engine):
        matcher = Matcher.__new__(Matcher)
        matcher._engine = engine
        matcher._obs = NULL
        rng = np.random.default_rng(5)
        chosen = 0
        for trial in range(60):
            pending, onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            request = _random_request(rng, net, engine, rid=trial * 10 + 9)
            taxi = _FakeTaxi(
                node=int(rng.integers(net.num_vertices)),
                ready=float(rng.uniform(0.0, 100.0)),
                pending=pending,
                onboard=onboard,
                capacity=int(rng.integers(max(1, onboard + 1), 7)),
            )
            batched = matcher._best_insertion(taxi, request, now=0.0)
            scalar = matcher._best_insertion_scalar(taxi, request, now=0.0)
            if scalar is None:
                assert batched is None
                continue
            chosen += 1
            assert batched is not None
            assert batched[0] == scalar[0]  # detour, bit-identical
            assert batched[1] == scalar[1]  # chosen stop sequence
        assert chosen > 0  # the fuzz actually exercised feasible cases


# ----------------------------------------------------------------------
# CSR-subgraph restricted Dijkstra
# ----------------------------------------------------------------------
class TestRestrictedDijkstra:
    def _random_allowed(self, rng, net):
        n = net.num_vertices
        size = int(rng.integers(8, n + 1))
        return frozenset(int(v) for v in rng.choice(n, size=size, replace=False))

    def test_csr_matches_scalar_cost(self, net):
        rng = np.random.default_rng(6)
        compared = 0
        for _ in range(40):
            allowed = self._random_allowed(rng, net)
            nodes = sorted(allowed)
            u, v = (int(x) for x in rng.choice(nodes, size=2, replace=False))
            try:
                cost_s, path_s = dijkstra_restricted(net, u, v, allowed, method="scalar")
            except PathNotFound:
                with pytest.raises(PathNotFound):
                    dijkstra_restricted(net, u, v, allowed, method="csr")
                continue
            cost_c, path_c = dijkstra_restricted(net, u, v, allowed, method="csr")
            compared += 1
            assert cost_c == cost_s
            assert path_c[0] == u and path_c[-1] == v
            assert all(w in allowed for w in path_c)
        assert compared > 0

    def test_csr_matches_scalar_with_vertex_weights(self, net):
        rng = np.random.default_rng(7)
        compared = 0
        for _ in range(40):
            allowed = self._random_allowed(rng, net)
            weights = {int(v): float(rng.uniform(0.0, 30.0)) for v in allowed}
            nodes = sorted(allowed)
            u, v = (int(x) for x in rng.choice(nodes, size=2, replace=False))
            try:
                cost_s, _ = dijkstra_restricted(
                    net, u, v, allowed, vertex_weight=weights, method="scalar"
                )
            except PathNotFound:
                continue
            cost_c, path_c = dijkstra_restricted(
                net, u, v, allowed, vertex_weight=weights, method="csr"
            )
            compared += 1
            assert cost_c == cost_s
            assert path_c[0] == u and path_c[-1] == v
        assert compared > 0

    def test_source_equals_target(self, net):
        allowed = frozenset(range(10))
        assert dijkstra_restricted(net, 3, 3, allowed) == (0.0, [3])
        assert dijkstra_restricted(net, 3, 3, allowed, method="scalar") == (0.0, [3])

    def test_endpoints_outside_allowed_fall_back(self, net):
        # auto mode must route endpoints outside the corridor through
        # the scalar path instead of failing.
        allowed = frozenset(range(1, net.num_vertices))
        cost, path = dijkstra_restricted(net, 0, net.num_vertices - 1, allowed)
        assert path[0] == 0
        with pytest.raises(ValueError):
            dijkstra_restricted(net, 0, net.num_vertices - 1, allowed, method="csr")

    def test_subgraph_cache_hits(self, net):
        clear_subgraph_cache()
        allowed = frozenset(range(net.num_vertices))
        dijkstra_restricted(net, 0, 5, allowed)
        before = subgraph_cache_stats()
        dijkstra_restricted(net, 1, 6, allowed)
        after = subgraph_cache_stats()
        assert after["builds"] == before["builds"]
        assert after["hits"] == before["hits"] + 1
        assert after["entries"] >= 1
        assert after["memory_bytes"] > 0
        clear_subgraph_cache()


# ----------------------------------------------------------------------
# tight small-dispatch insertion walk
# ----------------------------------------------------------------------
class TestTightInsertion:
    def _reference_best(self, engine, start, t0, pending, request, onboard, capacity):
        """First-minimum feasible instance via the batched kernel."""
        batch = evaluate_insertions(engine, start, t0, pending, request, onboard, capacity)
        feasible = np.flatnonzero(batch.feasible)
        if feasible.size == 0:
            return None
        k = int(feasible[np.argmin(batch.last_arrival[feasible])])
        return (
            float(batch.last_arrival[k]),
            int(batch.pickup_idx[k]),
            int(batch.dropoff_idx[k]),
        )

    def test_matches_batched_kernel(self, net, engine):
        rng = np.random.default_rng(7)
        found = 0
        for trial in range(60):
            pending, onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            request = _random_request(rng, net, engine, rid=trial * 10 + 9)
            start = int(rng.integers(net.num_vertices))
            t0 = float(rng.uniform(0.0, 100.0))
            capacity = int(rng.integers(max(1, onboard + 1), 7))
            tight = best_insertion_tight(
                engine, start, t0, pending, request, onboard, capacity
            )
            ref = self._reference_best(
                engine, start, t0, pending, request, onboard, capacity
            )
            assert tight == ref  # last arrival bit-identical, same (i, j)
            if ref is not None:
                found += 1
        assert found > 0

    def test_whole_dispatch_scorer(self, net, engine):
        rng = np.random.default_rng(8)
        request = _random_request(rng, net, engine, rid=999)
        starts = []
        refs = []
        for trial in range(12):
            pending, onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            start = int(rng.integers(net.num_vertices))
            t0 = float(rng.uniform(0.0, 100.0))
            capacity = int(rng.integers(max(1, onboard + 1), 7))
            starts.append((start, t0, pending, onboard, capacity))
            refs.append(
                self._reference_best(
                    engine, start, t0, pending, request, onboard, capacity
                )
            )
        out = score_insertions_tight(engine, starts, request)
        expected = [
            (idx, last, i, j)
            for idx, ref in enumerate(refs)
            if ref is not None
            for last, i, j in [ref]
        ]
        assert out == expected

    def test_negative_occupancy_raises_like_scalar(self, net, engine):
        rng = np.random.default_rng(9)
        r1 = _random_request(rng, net, engine, rid=1)
        request = _random_request(rng, net, engine, rid=2)
        with pytest.raises(ValueError):
            best_insertion_tight(engine, 0, 0.0, [dropoff(r1)], request, 0, 4)
        # Idle-taxi special case: a negative initial occupancy raises
        # exactly like the scalar capacity walk.
        with pytest.raises(ValueError):
            score_insertions_tight(engine, [(0, 0.0, [], -1, 4)], request)

    def test_materialize_matches_enumeration(self, net, engine):
        rng = np.random.default_rng(10)
        for trial in range(20):
            pending, _onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            request = _random_request(rng, net, engine, rid=trial * 10 + 9)
            for i, j, stops in enumerate_insertions(pending, request):
                assert materialize_insertion(pending, request, i, j) == stops


# ----------------------------------------------------------------------
# direction units (scalar mobility-cluster fast path)
# ----------------------------------------------------------------------
class TestDirectionUnits:
    def _random_dirs(self, rng, k):
        dirs = [(float(x), float(y)) for x, y in rng.uniform(-3000.0, 3000.0, (k, 2))]
        dirs += [(0.0, 0.0), (1250.0, 0.0), (0.0, -40.0), (1e-8, 1e-8)]
        return dirs

    def test_unit_similarity_matches_cosine(self):
        rng = np.random.default_rng(11)
        dirs = self._random_dirs(rng, 40)
        for ax, ay in dirs:
            ua = direction_unit(ax, ay)
            for bx, by in dirs:
                ub = direction_unit(bx, by)
                assert unit_similarity(ua, ub) == cosine_similarity(ax, ay, bx, by)

    def test_cluster_lookups_match_brute_force(self):
        rng = np.random.default_rng(12)
        index = MobilityClusterIndex(lam=0.5)
        for rid in range(40):
            ox, oy, dx, dy = rng.uniform(-5000.0, 5000.0, 4)
            index.add_request(rid, MobilityVector(float(ox), float(oy), float(dx), float(dy)))
        assert index.num_clusters > 1
        for _ in range(25):
            ox, oy, dx, dy = rng.uniform(-5000.0, 5000.0, 4)
            vec = MobilityVector(float(ox), float(oy), float(dx), float(dy))
            brute = [
                cid
                for cid in index.cluster_ids()
                if index.general_vector(cid).similarity(vec) >= index.lam
            ]
            assert index.matching_clusters(vec) == brute
            best_id, best_sim = index._best_cluster(vec)
            exp_id, exp_sim = None, -2.0
            for cid in index.cluster_ids():
                sim = index.general_vector(cid).similarity(vec)
                if sim > exp_sim:
                    exp_id, exp_sim = cid, sim
            assert (best_id, best_sim) == (exp_id, exp_sim)

    def test_taxi_units_track_vectors(self):
        index = MobilityClusterIndex(lam=0.5)
        index.add_request(0, MobilityVector(0.0, 0.0, 100.0, 0.0))
        index.update_taxi(7, MobilityVector(5.0, 5.0, 90.0, 12.0))
        assert index.taxi_unit(7) == direction_unit(85.0, 7.0)
        index.update_taxi(8, MobilityVector(3.0, 4.0, 3.0, 4.0))
        assert index.taxi_unit(8) is ZERO_UNIT
        index.update_taxi(7, None)
        assert index.taxi_unit(7) is None


# ----------------------------------------------------------------------
# adaptive scorer tiers (tight walk vs grouped kernels)
# ----------------------------------------------------------------------
class TestScorerTierEquivalence:
    def test_tiers_agree_on_whole_dispatch(self, net, engine, monkeypatch):
        matcher = Matcher.__new__(Matcher)
        matcher._engine = engine
        matcher._obs = NULL
        rng = np.random.default_rng(13)
        request = _random_request(rng, net, engine, rid=888)
        candidates = []
        for trial in range(10):
            pending, onboard = _random_pending(rng, net, engine, base_rid=trial * 10)
            taxi = _FakeTaxi(
                node=int(rng.integers(net.num_vertices)),
                ready=float(rng.uniform(0.0, 100.0)),
                pending=pending,
                onboard=onboard,
                capacity=int(rng.integers(max(1, onboard + 1), 7)),
            )
            taxi.taxi_id = trial
            candidates.append(taxi)

        def run(threshold):
            monkeypatch.setattr(matching_mod, "TIGHT_INSERTION_MAX", threshold)
            scored = matcher._score_candidates(candidates, request, now=0.0)
            return [(d, t.taxi_id, build()) for d, t, build in scored]

        tight = run(10**9)  # everything through the tight walk
        grouped = run(0)  # everything through the grouped kernels
        assert tight == grouped
        assert len(tight) > 0


# ----------------------------------------------------------------------
# basic-router leg cache
# ----------------------------------------------------------------------
class TestLegCache:
    def _feasible_stops(self, rng, net, engine, k):
        stops = []
        for rid in range(k):
            r = _random_request(rng, net, engine, rid=rid)
            big = RideRequest(
                request_id=r.request_id,
                release_time=r.release_time,
                origin=r.origin,
                destination=r.destination,
                deadline=r.deadline + 1e9,
                direct_cost=r.direct_cost,
            )
            stops.append(pickup(big))
            stops.append(dropoff(big))
        return stops

    def test_cached_routes_bit_identical(self, net, engine):
        rng = np.random.default_rng(14)
        router = BasicRouter(net, engine)
        for trial in range(8):
            stops = self._feasible_stops(rng, net, engine, k=2)
            start = int(rng.integers(net.num_vertices))
            t0 = float(rng.uniform(0.0, 100.0))
            cold = router.route_for_schedule(start, t0, stops)
            warm = router.route_for_schedule(start, t0, stops)
            legs = []
            node = start
            for stop in stops:
                legs.append(engine.path(node, stop.node))
                node = stop.node
            ref = compose_route(net, start, t0, legs)
            for route in (cold, warm):
                assert route.nodes == ref.nodes
                assert route.times == ref.times  # same sequential float adds
                assert route.stop_positions == ref.stop_positions


# ----------------------------------------------------------------------
# disc-intersection coordinate cache
# ----------------------------------------------------------------------
class TestDiscCache:
    def test_cached_answers_match_array_formula(self, net):
        engine = ShortestPathEngine(net, mode="full")
        n = net.num_vertices
        parts = [list(range(i, n, 4)) for i in range(4)]
        lg = LandmarkGraph(net, parts, engine)
        rng = np.random.default_rng(15)
        for _ in range(30):
            v = int(rng.integers(n))
            x, y = (float(c) for c in net.xy[v])
            radius = float(rng.uniform(0.0, 900.0))
            expected = [
                int(z)
                for z in np.flatnonzero(
                    np.hypot(lg.centroids[:, 0] - x, lg.centroids[:, 1] - y)
                    <= np.array([lg.radius(z) for z in range(4)]) + radius
                )
            ]
            assert lg.partitions_intersecting_disc(x, y, radius) == expected
            # warm (cached distances) answer is identical
            assert lg.partitions_intersecting_disc(x, y, radius) == expected
