"""Tests for the trip-dataset container and Fig. 5 statistics."""

import numpy as np
import pytest

from repro.demand.dataset import TripDataset


def make_dataset(times, origins=None, dests=None, taxis=None):
    m = len(times)
    return TripDataset(
        release_times=np.asarray(times, dtype=float),
        origins=np.asarray(origins if origins is not None else [0] * m),
        destinations=np.asarray(dests if dests is not None else [8] * m),
        taxi_ids=np.asarray(taxis if taxis is not None else [0] * m),
    )


class TestContainer:
    def test_len(self):
        assert len(make_dataset([1.0, 2.0, 3.0])) == 3

    def test_sorts_by_release_time(self):
        ds = make_dataset([5.0, 1.0, 3.0], origins=[5, 1, 3])
        assert ds.release_times.tolist() == [1.0, 3.0, 5.0]
        assert ds.origins.tolist() == [1, 3, 5]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TripDataset(
                release_times=np.array([1.0]),
                origins=np.array([0, 1]),
                destinations=np.array([1]),
                taxi_ids=np.array([0]),
            )

    def test_window(self):
        ds = make_dataset([0.0, 10.0, 20.0, 30.0])
        w = ds.window(10.0, 30.0)
        assert w.release_times.tolist() == [10.0, 20.0]

    def test_exclude_window(self):
        ds = make_dataset([0.0, 10.0, 20.0, 30.0])
        rest = ds.exclude_window(10.0, 30.0)
        assert rest.release_times.tolist() == [0.0, 30.0]

    def test_window_plus_exclusion_partitions(self):
        ds = make_dataset(list(range(10)))
        assert len(ds.window(3, 7)) + len(ds.exclude_window(3, 7)) == 10

    def test_od_pairs(self):
        ds = make_dataset([1.0, 2.0], origins=[3, 4], dests=[5, 6])
        assert ds.od_pairs().tolist() == [[3, 5], [4, 6]]

    def test_records(self):
        recs = make_dataset([1.0], origins=[2], dests=[3], taxis=[9]).records()
        assert len(recs) == 1
        assert recs[0].taxi_id == 9

    def test_concat(self):
        a = make_dataset([5.0])
        b = make_dataset([1.0])
        both = a.concat(b)
        assert both.release_times.tolist() == [1.0, 5.0]


class TestToRequests:
    def test_conversion(self, tiny_engine):
        ds = make_dataset([0.0, 10.0], origins=[0, 1], dests=[8, 7])
        reqs = ds.to_requests(tiny_engine, rho=1.3)
        assert len(reqs) == 2
        assert reqs[0].direct_cost == pytest.approx(tiny_engine.cost(0, 8))
        assert reqs[0].release_time == 0.0

    def test_time_origin_shift(self, tiny_engine):
        ds = make_dataset([100.0], origins=[0], dests=[8])
        reqs = ds.to_requests(tiny_engine, time_origin=90.0)
        assert reqs[0].release_time == pytest.approx(10.0)

    def test_zero_cost_trips_dropped(self, tiny_engine):
        ds = make_dataset([0.0], origins=[4], dests=[4])
        assert ds.to_requests(tiny_engine) == []

    def test_offline_sampling(self, tiny_engine):
        ds = make_dataset([float(i) for i in range(20)], origins=[0] * 20, dests=[8] * 20)
        reqs = ds.to_requests(tiny_engine, offline_count=5, seed=1)
        assert sum(1 for r in reqs if r.offline) == 5

    def test_offline_count_too_large_rejected(self, tiny_engine):
        ds = make_dataset([0.0])
        with pytest.raises(ValueError):
            ds.to_requests(tiny_engine, offline_count=2)

    def test_request_ids_contiguous(self, tiny_engine):
        ds = make_dataset([0.0, 1.0, 2.0], origins=[0, 4, 1], dests=[8, 4, 7])
        reqs = ds.to_requests(tiny_engine)
        assert [r.request_id for r in reqs] == [0, 1]


class TestStatistics:
    def test_hourly_counts(self):
        ds = make_dataset([0.0, 100.0, 3700.0])
        counts = ds.hourly_counts()
        assert counts == {0: 2, 1: 1}

    def test_busiest_hour(self):
        ds = make_dataset([0.0, 100.0, 3700.0])
        assert ds.busiest_hour() == (0, 2)

    def test_busiest_hour_empty_raises(self):
        with pytest.raises(ValueError):
            make_dataset([]).busiest_hour()

    def test_travel_time_distribution(self, tiny_engine):
        ds = make_dataset([0.0, 1.0], origins=[0, 0], dests=[2, 8])
        pct = ds.travel_time_distribution(tiny_engine, percentiles=(50.0,))
        lo = tiny_engine.cost(0, 2)
        hi = tiny_engine.cost(0, 8)
        assert lo <= pct[50.0] <= hi

    def test_utilization_bounded(self, tiny_engine):
        ds = make_dataset([0.0, 600.0, 1200.0], origins=[0, 1, 2], dests=[8, 7, 6],
                          taxis=[0, 0, 1])
        util = ds.hourly_utilization(tiny_engine)
        assert all(0.0 <= u <= 1.0 for u in util.values())
        assert 0 in util

    def test_utilization_empty(self, tiny_engine):
        assert make_dataset([]).hourly_utilization(tiny_engine) == {}
