"""Tests for the transition-probability model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioning.transition import TransitionModel


def simple_model():
    """4 vertices, 2 clusters (vertices 0,1 -> cluster 0; 2,3 -> cluster 1)."""
    labels = np.array([0, 0, 1, 1])
    trips = np.array(
        [
            [0, 2],  # from 0 to cluster 1
            [0, 3],  # from 0 to cluster 1
            [0, 1],  # from 0 to cluster 0
            [1, 2],  # from 1 to cluster 1
        ]
    )
    return TransitionModel.fit(trips, labels, 2)


class TestFit:
    def test_rows_are_distributions(self):
        model = simple_model()
        assert np.allclose(model.matrix.sum(axis=1), 1.0)

    def test_observed_probabilities(self):
        model = simple_model()
        assert model.prob(0, 1) == pytest.approx(2 / 3)
        assert model.prob(0, 0) == pytest.approx(1 / 3)
        assert model.prob(1, 1) == pytest.approx(1.0)

    def test_unobserved_vertex_gets_marginal(self):
        model = simple_model()
        # Vertex 3 has no pickups: falls back to the global marginal
        # (1 trip to cluster 0, 3 trips to cluster 1).
        assert model.vector(3) == pytest.approx([0.25, 0.75])

    def test_pickup_counts(self):
        model = simple_model()
        assert model.pickup_count(0) == 3
        assert model.pickup_count(1) == 1
        assert model.pickup_count(3) == 0

    def test_pickup_frequency_sums_to_one(self):
        model = simple_model()
        total = sum(model.pickup_frequency(v) for v in range(4))
        assert total == pytest.approx(1.0)

    def test_relative_pickup_frequency(self):
        model = simple_model()
        assert model.relative_pickup_frequency(0) == pytest.approx(1.0)
        assert model.relative_pickup_frequency(1) == pytest.approx(1 / 3)
        assert model.relative_pickup_frequency(3) == 0.0

    def test_no_trips(self):
        model = TransitionModel.fit(np.empty((0, 2), dtype=int), np.array([0, 1]), 2)
        assert np.allclose(model.matrix, 0.5)
        assert model.pickup_frequency(0) == 0.0

    def test_smoothing(self):
        labels = np.array([0, 1])
        trips = np.array([[0, 0]])
        model = TransitionModel.fit(trips, labels, 2, smoothing=1.0)
        # counts: [1+1, 0+1] -> [2/3, 1/3]
        assert model.vector(0) == pytest.approx([2 / 3, 1 / 3])

    def test_bad_trip_shape_rejected(self):
        with pytest.raises(ValueError):
            TransitionModel.fit(np.zeros((3, 3), dtype=int), np.array([0]), 1)


class TestQueries:
    def test_mass_to(self):
        model = simple_model()
        assert model.mass_to(0, [1]) == pytest.approx(2 / 3)
        assert model.mass_to(0, [0, 1]) == pytest.approx(1.0)
        assert model.mass_to(0, []) == 0.0

    def test_partition_probability_demand_weighted(self):
        model = simple_model()
        # Vertices {0, 1}, destinations {1}: weighted by pickup share.
        expected = (2 / 3) * (3 / 4) + 1.0 * (1 / 4)
        assert model.partition_probability([0, 1], [1]) == pytest.approx(expected)

    def test_partition_probability_unweighted(self):
        model = simple_model()
        expected = ((2 / 3) + 1.0) / 2
        assert model.partition_probability([0, 1], [1], weight_by_demand=False) == pytest.approx(
            expected
        )

    def test_partition_probability_empty(self):
        model = simple_model()
        assert model.partition_probability([], [1]) == 0.0
        assert model.partition_probability([0], []) == 0.0

    def test_memory(self):
        assert simple_model().memory_bytes() > 0


class TestValidation:
    def test_rows_must_be_stochastic(self):
        with pytest.raises(ValueError):
            TransitionModel(np.array([[0.5, 0.2]]), np.array([1.0]))

    def test_pickup_length_checked(self):
        with pytest.raises(ValueError):
            TransitionModel(np.array([[1.0]]), np.array([1.0, 2.0]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=100))
    def test_fit_always_stochastic(self, m, k, seed):
        rng = np.random.default_rng(seed)
        n = 12
        labels = rng.integers(0, k, size=n)
        trips = rng.integers(0, n, size=(m, 2))
        model = TransitionModel.fit(trips, labels, k)
        assert np.allclose(model.matrix.sum(axis=1), 1.0, atol=1e-9)
        assert (model.matrix >= 0).all()
