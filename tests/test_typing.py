"""Scoped ``mypy --strict`` gate for the simulation core.

mypy is not a runtime dependency and may be absent from the execution
environment (it is absent from the pinned test image); the test skips
cleanly then and CI's dedicated typecheck job provides the enforced
run.  When mypy *is* installed locally, this keeps the strict scope
honest without a separate command.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed; CI's typecheck job enforces this",
)
def test_mypy_strict_on_sim_core():
    # Packages and mypy_path come from [tool.mypy] in pyproject.toml:
    # repro.core, repro.fleet, repro.network, repro.index under strict.
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
