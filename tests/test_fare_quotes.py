"""Tests for online fare quoting at drop-off (Eq. 7/8 in the simulator)."""

import pytest

from repro.core.payment import PaymentModel
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def quoted_run(test_scenario):
    sim = Simulator(
        test_scenario.make_scheme("mt-share"),
        test_scenario.make_fleet(15, seed=1),
        test_scenario.requests(),
        payment=PaymentModel(),
    )
    return sim, sim.run()


class TestQuotes:
    def test_every_completed_trip_quoted(self, quoted_run):
        _sim, m = quoted_run
        assert len(m.quoted_fares) == m.completed

    def test_quotes_bounded(self, quoted_run):
        """Eq. 8 guarantees no rider pays more than solo; it has no
        lower floor (a short-trip rider with a large detour share can
        be quoted near zero), so we only check sanity bounds."""
        sim, m = quoted_run
        payment = PaymentModel()
        speed = sim._scheme.network.speed_mps  # noqa: SLF001
        for rid, quote in m.quoted_fares.items():
            solo = payment.schedule.fare(sim.log.trips[rid].request.direct_cost * speed)
            assert -solo <= quote <= solo + 1e-6

    def test_quotes_close_to_settlement(self, quoted_run):
        """Projected detour rates approximate the final split: totals
        agree within a few percent."""
        _sim, m = quoted_run
        total_quoted = sum(m.quoted_fares.values())
        assert total_quoted == pytest.approx(m.shared_fares, rel=0.05)

    def test_quote_never_exceeds_solo_fare(self, quoted_run):
        sim, m = quoted_run
        payment = PaymentModel()
        speed = sim._scheme.network.speed_mps  # noqa: SLF001 - test introspection
        for rid, quote in m.quoted_fares.items():
            trip = sim.log.trips[rid]
            solo = payment.schedule.fare(trip.request.direct_cost * speed)
            assert quote <= solo + 1e-6

    def test_no_payment_no_quotes(self, test_scenario):
        sim = Simulator(
            test_scenario.make_scheme("no-sharing"),
            test_scenario.make_fleet(8, seed=2),
            test_scenario.requests()[:30],
            payment=None,
        )
        m = sim.run()
        assert m.quoted_fares == {}
