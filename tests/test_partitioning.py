"""Tests for bipartite, geographic and grid map partitioning."""

import numpy as np
import pytest

from repro.partitioning.bipartite import (
    MapPartitioning,
    bipartite_partition,
    geo_partition,
)
from repro.partitioning.grid import grid_labels, grid_partition


class TestMapPartitioning:
    def test_labels_must_be_contiguous(self):
        with pytest.raises(ValueError):
            MapPartitioning(labels=np.array([0, 2, 2]), method="x")

    def test_labels_must_be_nonempty(self):
        with pytest.raises(ValueError):
            MapPartitioning(labels=np.array([]), method="x")

    def test_partitions_cover_vertices(self):
        part = MapPartitioning(labels=np.array([0, 1, 0, 1, 2]), method="x")
        assert part.num_partitions == 3
        covered = sorted(v for p in part.partitions for v in p)
        assert covered == [0, 1, 2, 3, 4]

    def test_partition_of(self):
        part = MapPartitioning(labels=np.array([1, 0, 1]), method="x")
        assert part.partition_of(0) == 1
        assert part.partition_of(1) == 0

    def test_sizes(self):
        part = MapPartitioning(labels=np.array([0, 0, 1]), method="x")
        assert part.sizes().tolist() == [2, 1]


class TestBipartite:
    def test_roughly_requested_count(self, small_net, small_trips):
        part = bipartite_partition(small_net, small_trips, num_partitions=10,
                                   num_transition_clusters=4, seed=1)
        assert 5 <= part.num_partitions <= 20
        assert part.method == "bipartite"
        assert part.iterations >= 1

    def test_transition_model_attached(self, small_partitioning):
        model = small_partitioning.transition_model
        assert model is not None
        assert model.num_clusters == small_partitioning.num_partitions

    def test_every_vertex_assigned(self, small_net, small_partitioning):
        assert small_partitioning.labels.shape == (small_net.num_vertices,)

    def test_deterministic(self, small_net, small_trips):
        a = bipartite_partition(small_net, small_trips, 8, num_transition_clusters=3, seed=9)
        b = bipartite_partition(small_net, small_trips, 8, num_transition_clusters=3, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_partitions_are_geographically_coherent(self, small_net, small_partitioning):
        # Mean member distance to the partition centroid should be much
        # smaller than the city extent.
        xy = np.asarray(small_net.xy)
        extent = xy.max() - xy.min()
        for members in small_partitioning.partitions:
            pts = xy[members]
            c = pts.mean(axis=0)
            spread = np.hypot(*(pts - c).T).mean()
            assert spread < extent / 2

    def test_single_partition(self, small_net, small_trips):
        part = bipartite_partition(small_net, small_trips, 1, num_transition_clusters=1)
        assert part.num_partitions == 1

    def test_invalid_kappa(self, small_net, small_trips):
        with pytest.raises(ValueError):
            bipartite_partition(small_net, small_trips, 0)


class TestGeoPartition:
    def test_basic(self, small_net, small_trips):
        part = geo_partition(small_net, 8, historical_trips=small_trips)
        assert part.method == "geo-kmeans"
        assert part.num_partitions == 8
        assert part.transition_model is not None

    def test_without_trips_no_model(self, small_net):
        part = geo_partition(small_net, 4)
        assert part.transition_model is None


class TestGrid:
    def test_grid_labels_shape(self):
        xy = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0], [10.0, 10.0]])
        labels = grid_labels(xy, 2, 2)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_boundary_points_fall_in_last_cell(self):
        xy = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = grid_labels(xy, 2, 2)
        assert labels[1] == 3

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            grid_labels(np.zeros((2, 2)), 0, 2)

    def test_grid_partition_drops_empty_cells(self, small_net, small_trips):
        part = grid_partition(small_net, 9, historical_trips=small_trips)
        assert part.method == "grid"
        assert 1 <= part.num_partitions <= 9
        assert part.transition_model is not None

    def test_grid_partition_covers_all(self, small_net):
        part = grid_partition(small_net, 16)
        assert sum(len(p) for p in part.partitions) == small_net.num_vertices

    def test_invalid_count(self, small_net):
        with pytest.raises(ValueError):
            grid_partition(small_net, 0)
