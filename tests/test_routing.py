"""Tests for basic and probabilistic routing (Algorithms 3 and 4)."""

import numpy as np
import pytest

from repro.core.mobility_cluster import MobilityVector
from repro.core.partition_filter import PartitionFilter
from repro.core.routing import (
    BasicRouter,
    ProbabilisticRouter,
    RouteInfeasible,
    compose_route,
)
from repro.fleet.schedule import dropoff, pickup
from repro.network.landmarks import LandmarkGraph
from repro.network.shortest_path import ShortestPathEngine
from repro.partitioning.transition import TransitionModel
from tests.conftest import make_request


@pytest.fixture(scope="module")
def row_lg(tiny_net, tiny_engine):
    return LandmarkGraph(tiny_net, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], tiny_engine)


@pytest.fixture(scope="module")
def tiny_model(row_lg):
    """Transition model over the tiny grid's 3 row-partitions.

    Vertex 7 (top middle) is the pick-up hotspot; trips from everywhere
    head to row 2.
    """
    labels = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2])
    trips = np.array([[7, 8]] * 10 + [[1, 6]] * 3 + [[4, 2]] * 2)
    return TransitionModel.fit(trips, labels, 3)


def trip_request(engine, origin, destination, rho=1.5, release=0.0, rid=0):
    return make_request(
        request_id=rid,
        release_time=release,
        origin=origin,
        destination=destination,
        direct_cost=engine.cost(origin, destination),
        rho=rho,
    )


class TestComposeRoute:
    def test_single_leg(self, tiny_net):
        route = compose_route(tiny_net, 0, 10.0, [[0, 1, 2]])
        assert route.nodes == [0, 1, 2]
        assert route.stop_positions == [2]
        assert route.times[0] == 10.0

    def test_legs_must_chain(self, tiny_net):
        with pytest.raises(ValueError):
            compose_route(tiny_net, 0, 0.0, [[0, 1], [2, 5]])

    def test_stationary_leg(self, tiny_net):
        route = compose_route(tiny_net, 4, 0.0, [[4], [4, 5]])
        assert route.stop_positions == [0, 1]


class TestBasicRouter:
    def test_route_is_shortest(self, tiny_net, tiny_engine, row_lg):
        router = BasicRouter(tiny_net, tiny_engine, PartitionFilter(row_lg))
        r = trip_request(tiny_engine, 1, 7)
        route = router.route_for_schedule(1, 0.0, [pickup(r), dropoff(r)])
        assert route.total_cost() == pytest.approx(tiny_engine.cost(1, 7))
        assert tiny_net.is_path(route.nodes)

    def test_no_filter_works(self, tiny_net, tiny_engine):
        router = BasicRouter(tiny_net, tiny_engine, None)
        r = trip_request(tiny_engine, 0, 8)
        route = router.route_for_schedule(0, 0.0, [pickup(r), dropoff(r)])
        assert route.nodes[-1] == 8

    def test_deadline_violation_raises(self, tiny_net, tiny_engine):
        router = BasicRouter(tiny_net, tiny_engine, None)
        r = trip_request(tiny_engine, 1, 7, rho=1.01)
        # Start far away: even the shortest route misses the pick-up window.
        with pytest.raises(RouteInfeasible):
            router.route_for_schedule(2, 1e6, [pickup(r), dropoff(r)])

    def test_cost_matches_engine(self, tiny_net, tiny_engine, row_lg):
        router = BasicRouter(tiny_net, tiny_engine, PartitionFilter(row_lg))
        assert router.cost(0, 8) == tiny_engine.cost(0, 8)

    def test_lazy_engine_uses_filtered_dijkstra(self, tiny_net, row_lg):
        lazy = ShortestPathEngine(tiny_net, mode="lazy")
        router = BasicRouter(tiny_net, lazy, PartitionFilter(row_lg))
        path = router.leg_path(0, 8)
        assert tiny_net.is_path(path)
        assert path[0] == 0 and path[-1] == 8

    def test_multi_stop_schedule(self, tiny_net, tiny_engine):
        router = BasicRouter(tiny_net, tiny_engine, None)
        r1 = trip_request(tiny_engine, 1, 7, rho=2.0, rid=1)
        r2 = trip_request(tiny_engine, 4, 8, rho=2.0, rid=2)
        stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
        route = router.route_for_schedule(0, 0.0, stops)
        assert len(route.stop_positions) == 4
        # stop nodes line up
        for stop, pos in zip(stops, route.stop_positions):
            assert route.nodes[pos] == stop.node


class TestProbabilisticRouter:
    @pytest.fixture()
    def router(self, tiny_net, tiny_engine, row_lg, tiny_model):
        return ProbabilisticRouter(
            tiny_net, tiny_engine, PartitionFilter(row_lg), tiny_model, lam=0.0
        )

    def test_requires_filter(self, tiny_net, tiny_engine, tiny_model):
        with pytest.raises(ValueError):
            ProbabilisticRouter(tiny_net, tiny_engine, None, tiny_model)

    def test_without_vector_falls_back_to_basic(self, router, tiny_engine):
        r = trip_request(tiny_engine, 1, 7)
        route = router.route_for_schedule(1, 0.0, [pickup(r), dropoff(r)])
        assert route.total_cost() == pytest.approx(tiny_engine.cost(1, 7))

    def test_route_meets_deadlines(self, router, tiny_engine, tiny_net):
        r = trip_request(tiny_engine, 1, 7, rho=1.8)
        vec = MobilityVector(*tiny_net.xy[1], *tiny_net.xy[7])
        route = router.route_for_schedule(1, 0.0, [pickup(r), dropoff(r)], taxi_vector=vec)
        arrival = route.times[route.stop_positions[-1]]
        assert arrival <= r.deadline + 1e-6
        assert tiny_net.is_path(route.nodes)

    def test_infeasible_schedule_raises(self, router, tiny_engine):
        r = trip_request(tiny_engine, 1, 7, rho=1.01)
        vec = MobilityVector(0, 0, 0, 100)
        with pytest.raises(RouteInfeasible):
            router.route_for_schedule(2, 1e6, [pickup(r), dropoff(r)], taxi_vector=vec)

    def test_partition_probability_positive_towards_demand(self, router):
        # Direction north (towards row 2 where trips end): row 2's
        # pick-up hotspot (vertex 7) lies in partition 2.
        p = router.partition_probability(2, (0.0, 1.0))
        assert p >= 0.0

    def test_steers_through_hot_vertex_when_free(self, router, tiny_engine, tiny_net):
        # Trip 6 -> 8 (along the top row).  Shortest is 6-7-8 which
        # already passes the hotspot 7; with slack the route must still
        # be valid and end on time.
        r = trip_request(tiny_engine, 6, 8, rho=2.0)
        vec = MobilityVector(*tiny_net.xy[6], *tiny_net.xy[8])
        route = router.route_for_schedule(6, 0.0, [pickup(r), dropoff(r)], taxi_vector=vec)
        assert 7 in route.nodes

    def test_cruise_route(self, router):
        route = router.cruise_route(0, 0.0)
        assert route is not None
        assert route.stop_positions == []
        assert route.nodes[0] == 0
        assert len(route.nodes) >= 2
        # The cruise should end at a demand vertex (7, 1 or 4 have pickups).
        assert route.nodes[-1] in {7, 1, 4}

    def test_cruise_deterministic(self, router):
        a = router.cruise_route(0, 100.0)
        b = router.cruise_route(0, 100.0)
        assert a.nodes == b.nodes

    def test_cruise_from_hotspot_moves_on(self, router):
        route = router.cruise_route(7, 0.0)
        # Either relocates elsewhere or declines; never a zero-length route.
        assert route is None or len(route.nodes) >= 2
