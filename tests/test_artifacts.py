"""Artifact store: keys, round trips, invalidation, cross-process reuse."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.artifacts import (
    ARTIFACT_DIR_ENV,
    ArtifactStore,
    canonical_json,
    get_store,
)
from repro.sim.scenario import Scenario, ScenarioSpec

MICRO_SPEC = ScenarioSpec(
    kind="peak",
    grid_rows=8,
    grid_cols=8,
    spacing_m=180.0,
    hourly_requests=120,
    history_days=2,
    num_partitions=9,
    offline_count=10,
    seed=3,
)


def _run_py(code: str, env_overrides: dict | None = None) -> str:
    """Run a snippet in a fresh interpreter, returning its stdout."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_overrides:
        env.update(env_overrides)
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, check=True
    )
    return out.stdout.strip()


# ----------------------------------------------------------------------
# keys and canonical encoding
# ----------------------------------------------------------------------
def test_canonical_json_is_order_independent():
    a = canonical_json({"b": 2, "a": [1, 2], "c": {"y": 1.5, "x": np.int64(3)}})
    b = canonical_json({"c": {"x": 3, "y": 1.5}, "a": [1, 2], "b": 2})
    assert a == b


def test_key_is_stable_and_spec_sensitive(tmp_path):
    store = ArtifactStore(tmp_path)
    spec = {"generator": "grid_city", "rows": 8, "cols": 8, "seed": 3}
    assert store.key_of("apsp", spec) == store.key_of("apsp", dict(reversed(spec.items())))
    assert store.key_of("apsp", spec) != store.key_of("trace", spec)
    assert store.key_of("apsp", spec) != store.key_of("apsp", {**spec, "seed": 4})


def test_scenario_keys_change_with_every_generating_parameter(tmp_path, monkeypatch):
    """κ, demand rate λ, seed, and generator size all change the store key."""
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    base = Scenario(MICRO_SPEC)
    store = get_store()
    base_key = store.key_of("partition", base._partition_spec("bipartite", 9, 8))

    # κ (partition count) and k_t (transition clusters).
    assert store.key_of("partition", base._partition_spec("bipartite", 12, 8)) != base_key
    assert store.key_of("partition", base._partition_spec("bipartite", 9, 4)) != base_key
    # Method.
    assert store.key_of("partition", base._partition_spec("grid", 9, 8)) != base_key

    # Demand rate (λ), seed, generator size change the trace spec and
    # hence every downstream key.
    from dataclasses import replace

    for field, value in (
        ("hourly_requests", 150),
        ("seed", 4),
        ("grid_rows", 9),
    ):
        other = Scenario(replace(MICRO_SPEC, **{field: value}))
        other_key = store.key_of("partition", other._partition_spec("bipartite", 9, 8))
        assert other_key != base_key, field


# ----------------------------------------------------------------------
# save/load round trips
# ----------------------------------------------------------------------
def test_save_load_round_trip_and_mmap(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key_of("apsp", {"n": 5})
    dist = np.arange(25, dtype=np.float64).reshape(5, 5)
    pred = np.arange(25, dtype=np.int32).reshape(5, 5)
    store.save("apsp", key, {"dist": dist, "pred": pred}, meta={"n": 5})
    assert store.contains("apsp", key)

    art = store.load("apsp", key)
    assert art is not None
    assert isinstance(art["dist"], np.memmap)
    assert np.array_equal(np.asarray(art["dist"]), dist)
    assert np.array_equal(np.asarray(art["pred"]), pred)
    assert art.meta["n"] == 5

    eager = store.load("apsp", key, mmap=False)
    assert not isinstance(eager["dist"], np.memmap)
    assert np.array_equal(eager["dist"], dist)


def test_corrupt_artifact_counts_as_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key_of("trace", {"x": 1})
    store.save("trace", key, {"a": np.ones(3)}, meta={})
    # Remove the array file but keep meta.json: must degrade to a miss.
    victim = next(store._dir_of("trace", key).glob("*.npy"))
    victim.unlink()
    assert store.load("trace", key) is None
    assert store.stats()["trace"]["misses"] >= 1


def test_disabled_store_returns_none(monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, "off")
    assert get_store() is None


def test_info_and_clear(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key_of("trace", {"x": 2})
    store.save("trace", key, {"a": np.ones(4)}, meta={})
    info = store.info()
    assert info["trace"]["artifacts"] == 1
    assert info["trace"]["bytes"] > 0
    assert store.clear() == 1
    assert store.info() == {}


# ----------------------------------------------------------------------
# scenario integration: warm loads are bit-identical and build-free
# ----------------------------------------------------------------------
def test_warm_scenario_bit_identical(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    cold = Scenario(MICRO_SPEC)
    cold_part = cold.partitioning()
    cold_lg = cold.landmark_graph()
    cold_pred = cold.demand_predictor(cold_part)

    warm = Scenario(MICRO_SPEC)
    warm_part = warm.partitioning()
    warm_lg = warm.landmark_graph()
    warm_pred = warm.demand_predictor(warm_part)

    assert not cold.engine.full_mmapped and warm.engine.full_mmapped
    assert warm.mmap_bytes() > 0
    assert np.array_equal(cold.history.release_times, warm.history.release_times)
    assert np.array_equal(cold.history.origins, warm.history.origins)
    assert np.array_equal(cold_part.labels, warm_part.labels)
    assert np.array_equal(
        cold_part.transition_model.matrix, warm_part.transition_model.matrix
    )
    assert cold_lg.landmarks == warm_lg.landmarks
    assert np.array_equal(cold_lg.landmark_cost_matrix(), warm_lg.landmark_cost_matrix())
    # Not just equal *sets*: identical iteration order.  Probabilistic
    # routing enumerates corridors by iterating these sets under a path
    # budget, so a layout difference between a fresh build and a
    # table-restored graph would silently change dispatch decisions.
    for z in range(cold_lg.num_partitions):
        assert list(cold_lg.neighbors(z)) == list(warm_lg.neighbors(z))
    assert np.array_equal(cold_pred.rates, warm_pred.rates)

    # The generator RNG was replayed: later sampling stays identical.
    w_cold = cold.demand.generate_window(1, 8, 1, weekend=False)
    w_warm = warm.demand.generate_window(1, 8, 1, weekend=False)
    assert np.array_equal(w_cold.release_times, w_warm.release_times)
    assert np.array_equal(w_cold.origins, w_warm.origins)
    assert np.array_equal(w_cold.taxi_ids, w_warm.taxi_ids)


_FRESH_PROCESS_SNIPPET = """
import json
import numpy as np
from repro import artifacts
from repro.sim.scenario import Scenario, ScenarioSpec
spec = ScenarioSpec(kind="peak", grid_rows=8, grid_cols=8, spacing_m=180.0,
                    hourly_requests=120, history_days=2, num_partitions=9,
                    offline_count=10, seed=3)
s = Scenario(spec)
part = s.partitioning()
lg = s.landmark_graph()
stats = artifacts.stats()
print(json.dumps({
    "builds": sum(v["builds"] for v in stats.values()),
    "mmap_loads": sum(v["mmap_loads"] for v in stats.values()),
    "mmapped": bool(s.engine.full_mmapped),
    "labels_sha": __import__("hashlib").sha256(part.labels.tobytes()).hexdigest(),
    "tm_sha": __import__("hashlib").sha256(
        np.ascontiguousarray(part.transition_model.matrix).tobytes()).hexdigest(),
    "cost_sha": __import__("hashlib").sha256(
        np.ascontiguousarray(lg.landmark_cost_matrix()).tobytes()).hexdigest(),
}))
"""


def test_second_process_skips_all_recomputation(tmp_path):
    """Acceptance: a fresh process on a warm store does zero builds."""
    env = {ARTIFACT_DIR_ENV: str(tmp_path)}
    first = json.loads(_run_py(_FRESH_PROCESS_SNIPPET, env))
    assert first["builds"] > 0  # cold process did the work once

    second = json.loads(_run_py(_FRESH_PROCESS_SNIPPET, env))
    assert second["builds"] == 0
    assert second["mmap_loads"] > 0
    assert second["mmapped"] is True
    # And the loaded content hashes to exactly the cold build's bytes.
    for field in ("labels_sha", "tm_sha", "cost_sha"):
        assert first[field] == second[field]


def test_preprocessing_deterministic_across_fresh_processes(tmp_path):
    """Bipartite/k-means/transition builds are seed-deterministic: two
    *cold* processes (separate stores) produce byte-identical artifacts."""
    a = json.loads(_run_py(_FRESH_PROCESS_SNIPPET, {ARTIFACT_DIR_ENV: str(tmp_path / "a")}))
    b = json.loads(_run_py(_FRESH_PROCESS_SNIPPET, {ARTIFACT_DIR_ENV: str(tmp_path / "b")}))
    assert a["builds"] > 0 and b["builds"] > 0
    for field in ("labels_sha", "tm_sha", "cost_sha"):
        assert a[field] == b[field]


def test_congestion_variants_share_speed_independent_artifacts(tmp_path, monkeypatch):
    """Distances are in metres, so congestion only re-keys landmark costs."""
    from dataclasses import replace

    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    base = Scenario(MICRO_SPEC)
    base.partitioning()
    base.landmark_graph()
    store = get_store()
    store.reset_stats()

    slow = Scenario(replace(MICRO_SPEC, congestion=0.5))
    slow.partitioning()
    slow.landmark_graph()
    stats = store.stats()
    # APSP, trace and partition artifacts are reused...
    assert stats["apsp"]["loads"] == 1
    assert stats["trace"]["loads"] == 1
    assert stats["partition"]["loads"] == 1
    # ...but landmark costs are in seconds, so they rebuild.
    assert stats["landmarks"]["builds"] == 1


def test_landmark_key_uses_label_content(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    s = Scenario(MICRO_SPEC)
    part = s.partitioning()
    lg_key_spec = {
        "network": s._network_spec,
        "labels_sha": hashlib.sha256(part.labels.tobytes()).hexdigest(),
        "speed_mps": s.network.speed_mps,
        "engine_mode": s.engine.mode,
    }
    store = get_store()
    key = store.key_of("landmarks", lg_key_spec)
    s.landmark_graph()
    assert store.contains("landmarks", key)


# ----------------------------------------------------------------------
# bounded scenario cache (satellite: memory bounding + eviction)
# ----------------------------------------------------------------------
def test_scenario_cache_bounded_and_eviction_frees_memory(monkeypatch):
    import gc
    import weakref
    from dataclasses import replace

    from repro.sim import scenario as sc

    sc.clear_scenarios()
    sc.set_scenario_cache_size(1)
    try:
        s1 = sc.get_scenario(replace(MICRO_SPEC, seed=101))
        ref = weakref.ref(s1)
        engine_ref = weakref.ref(s1.engine)
        assert sc.scenario_cache_stats()["entries"] == 1
        assert sc.scenario_cache_stats()["memory_bytes"] >= s1.memory_bytes()

        sc.get_scenario(replace(MICRO_SPEC, seed=102))  # evicts s1
        stats = sc.scenario_cache_stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 1
        assert stats["evictions"] >= 1

        del s1
        gc.collect()
        assert ref() is None, "evicted scenario must be collectable"
        assert engine_ref() is None, "eviction must free the engine's matrices/mmaps"
    finally:
        sc.set_scenario_cache_size(None)
        sc.clear_scenarios()


def test_scenario_cache_size_env(monkeypatch):
    from repro.sim import scenario as sc

    monkeypatch.setenv(sc.SCENARIO_CACHE_ENV, "3")
    sc.set_scenario_cache_size(None)
    assert sc.scenario_cache_stats()["max_entries"] == 3
    monkeypatch.delenv(sc.SCENARIO_CACHE_ENV)
    assert sc.scenario_cache_stats()["max_entries"] == sc.DEFAULT_SCENARIO_CACHE_SIZE


def test_scenario_cache_rejects_bad_size():
    from repro.sim import scenario as sc

    with pytest.raises(ValueError):
        sc.set_scenario_cache_size(0)


def test_info_is_independent_of_creation_order(tmp_path):
    """REP008 regression: the inventory walk must not depend on the
    filesystem's directory-listing order, so two stores holding the
    same artifacts — written in different orders — report identically."""
    payloads = [("trace", {"x": i}, {"a": np.full(4, float(i))}) for i in range(4)]
    stores = (ArtifactStore(tmp_path / "fwd"), ArtifactStore(tmp_path / "rev"))
    for kind, spec, arrays in payloads:
        stores[0].save(kind, stores[0].key_of(kind, spec), arrays, meta={})
    for kind, spec, arrays in reversed(payloads):
        stores[1].save(kind, stores[1].key_of(kind, spec), arrays, meta={})
    assert stores[0].info() == stores[1].info()
