"""Tests for the SVG rendering helpers."""

import numpy as np
import pytest

from repro import viz


class TestRenderNetwork:
    def test_valid_svg(self, tiny_net):
        svg = viz.render_network(tiny_net)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<line" in svg
        assert "<circle" in svg

    def test_title_rendered(self, tiny_net):
        svg = viz.render_network(tiny_net, title="my city")
        assert "my city" in svg

    def test_each_undirected_edge_once(self, tiny_net):
        svg = viz.render_network(tiny_net)
        # 12 undirected grid edges -> 12 line elements
        assert svg.count("<line") == 12


class TestRenderPartitions:
    def test_colors_vertices(self, small_net, small_partitioning):
        svg = viz.render_partitions(small_net, small_partitioning)
        assert svg.count("<circle") == small_net.num_vertices
        # At least two distinct palette colours appear.
        used = {c for c in viz.PALETTE if c in svg}
        assert len(used) >= 2

    def test_default_title_mentions_method(self, small_net, small_partitioning):
        svg = viz.render_partitions(small_net, small_partitioning)
        assert "bipartite" in svg


class TestRenderRoutes:
    def test_routes_drawn(self, tiny_net, tiny_engine):
        path = tiny_engine.path(0, 8)
        svg = viz.render_routes(tiny_net, [path], markers=[0, 8])
        assert "<polyline" in svg
        assert svg.count("<polyline") == 1

    def test_multiple_routes_different_colors(self, tiny_net, tiny_engine):
        svg = viz.render_routes(
            tiny_net, [tiny_engine.path(0, 8), tiny_engine.path(2, 6)]
        )
        assert svg.count("<polyline") == 2
        assert viz.PALETTE[0] in svg and viz.PALETTE[1] in svg

    def test_single_vertex_route_no_polyline(self, tiny_net):
        svg = viz.render_routes(tiny_net, [[4]])
        assert "<polyline" not in svg


class TestRenderDemand:
    def test_heat_dots_scale(self, tiny_net):
        counts = np.zeros(9)
        counts[4] = 10
        counts[0] = 1
        svg = viz.render_demand(tiny_net, counts)
        assert svg.count('fill="#e15759"') == 2  # only nonzero vertices

    def test_shape_validated(self, tiny_net):
        with pytest.raises(ValueError):
            viz.render_demand(tiny_net, np.zeros(5))

    def test_all_zero_demand(self, tiny_net):
        svg = viz.render_demand(tiny_net, np.zeros(9))
        assert "<svg" in svg


class TestSave:
    def test_save_writes_file(self, tiny_net, tmp_path):
        svg = viz.render_network(tiny_net)
        out = viz.save(svg, tmp_path / "net.svg")
        assert out.exists()
        assert out.read_text() == svg
