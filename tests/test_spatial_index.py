"""Tests for the grid spatial index."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.spatial import GridSpatialIndex

coord = st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False)


class TestBasics:
    def test_insert_and_len(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 0.0, 0.0)
        idx.insert(2, 50.0, 50.0)
        assert len(idx) == 2
        assert 1 in idx
        assert 3 not in idx

    def test_update_moves(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 0.0, 0.0)
        idx.update(1, 1000.0, 1000.0)
        assert len(idx) == 1
        assert idx.position(1) == (1000.0, 1000.0)
        assert idx.query_radius(0.0, 0.0, 10.0) == []

    def test_remove(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 0.0, 0.0)
        idx.remove(1)
        assert len(idx) == 0
        idx.remove(99)  # silently ignored

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridSpatialIndex(0.0)

    def test_bulk_load(self):
        idx = GridSpatialIndex(50.0)
        idx.bulk_load([(i, float(i), 0.0) for i in range(10)])
        assert len(idx) == 10

    def test_memory(self):
        idx = GridSpatialIndex(50.0)
        idx.insert(0, 0.0, 0.0)
        assert idx.memory_bytes() > 0


class TestQueryRadius:
    def test_exact_distances_sorted(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 30.0, 40.0)   # 50 m away
        idx.insert(2, 300.0, 0.0)   # 300 m
        idx.insert(3, 60.0, 80.0)   # 100 m
        hits = idx.query_radius(0.0, 0.0, 150.0)
        assert [h[0] for h in hits] == [1, 3]
        assert hits[0][1] == pytest.approx(50.0)

    def test_radius_zero(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 0.0, 0.0)
        assert [h[0] for h in idx.query_radius(0.0, 0.0, 0.0)] == [1]

    def test_negative_radius(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 0.0, 0.0)
        assert idx.query_radius(0.0, 0.0, -1.0) == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=30),
        coord,
        coord,
        st.floats(min_value=0.0, max_value=3000.0),
    )
    def test_matches_brute_force(self, points, qx, qy, r):
        idx = GridSpatialIndex(250.0)
        for i, (x, y) in enumerate(points):
            idx.insert(i, x, y)
        expected = sorted(
            i for i, (x, y) in enumerate(points) if math.hypot(x - qx, y - qy) <= r
        )
        got = sorted(h[0] for h in idx.query_radius(qx, qy, r))
        assert got == expected


class TestQueryRadiusCells:
    def test_cell_granularity_misses_far_edge(self):
        # Cell size 100: object at (199, 0) lives in cell [100, 200) whose
        # centre is (150, 50).  Query at origin with r=150: centre
        # distance ~158 > 150, so the object is missed even though its
        # exact distance is ~199... wait both are > 150.  Use r=160:
        # exact distance 199 > 160 but centre 158 < 160 -> false positive.
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 199.0, 0.0)
        exact = idx.query_radius(0.0, 0.0, 160.0)
        cells = idx.query_radius_cells(0.0, 0.0, 160.0)
        assert exact == []           # exact distance is 199
        assert [h[0] for h in cells] == [1]  # grid sees the whole cell

    def test_cell_granularity_false_negative(self):
        # Object at (210, 0): cell [200, 300), centre (250, 50), centre
        # distance ~255.  Query r=230 covers the object's true distance
        # (210) but not its cell centre -> missed by the grid.
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 210.0, 0.0)
        assert [h[0] for h in idx.query_radius(0.0, 0.0, 230.0)] == [1]
        assert idx.query_radius_cells(0.0, 0.0, 230.0) == []

    def test_distances_are_cell_centre_based(self):
        idx = GridSpatialIndex(100.0)
        idx.insert(1, 10.0, 10.0)
        hits = idx.query_radius_cells(50.0, 50.0, 100.0)
        assert hits[0][1] == pytest.approx(0.0)  # query sits on the centre
