"""Batch-window global assignment (the ``window-lap`` scheme).

Four properties anchor the scheme (see ISSUE/PR 8):

* the vectorised cost-matrix fill is **bit-identical** to evaluating
  every pruned pair with the scalar per-pair insertion reference;
* ``W -> 0`` (single-request windows) reproduces the greedy mT-Share
  decision stream exactly;
* unmatched requests roll across windows but never past their pick-up
  deadline, and the request accounting still closes;
* windowed runs are deterministic — double ``run()`` and the streaming
  façade produce the same decision fingerprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mtshare import MTShare
from repro.core.window import WindowLAP, solve_window_lap
from repro.sim.engine import Simulator
from repro.sim.scenario import SCHEME_NAMES, SCHEME_REGISTRY

from tests.test_runner_parallel import decision_fingerprint


def _window_scheme(scenario, window_s, **overrides):
    config = scenario.default_config(dispatch_window_s=window_s, **overrides)
    return scenario.make_scheme("window-lap", config=config)


def _run(scenario, scheme, num_taxis=30, fleet_seed=1):
    sim = Simulator(scheme, scenario.make_fleet(num_taxis, seed=fleet_seed), scenario.requests())
    return sim.run()


# ----------------------------------------------------------------------
# registry (satellite: one table drives every scheme surface)
# ----------------------------------------------------------------------
class TestSchemeRegistry:
    def test_window_lap_registered(self):
        assert "window-lap" in SCHEME_NAMES
        assert SCHEME_NAMES == tuple(SCHEME_REGISTRY)

    def test_registry_entries_are_complete(self):
        for key, info in SCHEME_REGISTRY.items():
            assert info.key == key
            assert info.summary
            assert callable(info.factory)

    def test_factory_builds_window_lap(self, test_scenario):
        scheme = test_scenario.make_scheme("window-lap")
        assert isinstance(scheme, WindowLAP)
        assert isinstance(scheme, MTShare)  # inherits indexes + pruning
        assert scheme.dispatch_window_s == test_scenario.default_config().dispatch_window_s

    def test_greedy_schemes_do_not_batch(self, test_scenario):
        scheme = test_scenario.make_scheme("mt-share")
        assert scheme.dispatch_window_s is None
        with pytest.raises(NotImplementedError):
            scheme.match_window([], 0.0)


# ----------------------------------------------------------------------
# LAP solver
# ----------------------------------------------------------------------
class TestSolveWindowLap:
    def test_empty_and_all_infeasible(self):
        assert solve_window_lap(np.empty((0, 0))) == []
        assert solve_window_lap(np.full((3, 2), np.inf)) == []

    def test_prefers_global_optimum_over_greedy(self):
        # Greedy (row order) would give row 0 the cheap taxi 0 (1.0) and
        # leave row 1 with 10.0 (total 11); the LAP swaps to 2 + 2 = 4.
        costs = np.array([[1.0, 2.0], [2.0, 10.0]])
        assert solve_window_lap(costs) == [(0, 1), (1, 0)]

    def test_maximises_matches_before_cost(self):
        # Row 0 could take taxi 0 for 1.0, starving row 1 (only taxi 0
        # feasible there is not: row 1 has only taxi 0).  Masking must
        # keep both rows matched when possible.
        costs = np.array([[1.0, 50.0], [2.0, np.inf]])
        assert solve_window_lap(costs) == [(0, 1), (1, 0)]

    def test_infeasible_rows_are_dropped(self):
        costs = np.array([[np.inf, np.inf], [1.0, 2.0]])
        assert solve_window_lap(costs) == [(1, 0)]


# ----------------------------------------------------------------------
# vectorised cost matrix == scalar per-pair reference, bit for bit
# ----------------------------------------------------------------------
class TestCostMatrixEquivalence:
    def _busy_state(self, scenario):
        """A scheme + fleet where some candidates carry pending stops."""
        scheme = _window_scheme(scenario, 30.0)
        fleet = {t.taxi_id: t for t in scenario.make_fleet(25, seed=5)}
        scheme.register_fleet(fleet, now=0.0)
        requests = [r for r in scenario.requests() if not r.offline]
        matched = 0
        i = 0
        while matched < 10 and i < len(requests):
            r = requests[i]
            i += 1
            result = scheme.dispatch(r, r.release_time)
            if result is not None:
                scheme.install(result, r, r.release_time)
                matched += 1
        batch = requests[i : i + 12]
        now = max(r.release_time for r in batch)
        batch = [r for r in batch if now <= r.pickup_deadline]
        return scheme, fleet, batch, now

    def test_matrix_matches_scalar_reference(self, test_scenario):
        scheme, fleet, batch, now = self._busy_state(test_scenario)
        assert any(fleet[t].pending_stops() for t in fleet), "no busy taxis to exercise"
        fast = scheme.build_cost_matrix(batch, now)
        slow = scheme.build_cost_matrix_scalar(batch, now)
        assert fast.taxi_ids == slow.taxi_ids
        assert fast.num_candidates == slow.num_candidates
        assert fast.costs.shape == slow.costs.shape
        # Bitwise: identical feasibility pattern and identical detours.
        assert np.array_equal(np.isfinite(fast.costs), np.isfinite(slow.costs))
        finite = np.isfinite(fast.costs)
        assert np.array_equal(fast.costs[finite], slow.costs[finite])
        assert finite.any(), "degenerate matrix: nothing feasible"

    def test_matrix_stop_builders_agree(self, test_scenario):
        scheme, _fleet, batch, now = self._busy_state(test_scenario)
        fast = scheme.build_cost_matrix(batch, now)
        slow = scheme.build_cost_matrix_scalar(batch, now)
        for i in range(len(batch)):
            for j in range(len(fast.taxi_ids)):
                if np.isfinite(fast.costs[i, j]):
                    assert fast.build_stops(i, j) == slow.build_stops(i, j)

    def test_production_fill_never_falls_back_to_scalar(self, test_scenario):
        from repro.obs import Instrumentation

        scheme, _fleet, batch, now = self._busy_state(test_scenario)
        obs = Instrumentation()
        scheme.instrument(obs)
        scheme.build_cost_matrix(batch, now)
        counters = obs.counter_snapshot()
        assert counters.get("window.scalar_pair_fallbacks", 0) == 0
        assert counters.get("window.matrix_cells", 0) > 0


# ----------------------------------------------------------------------
# W -> 0 degenerates to the greedy decision stream
# ----------------------------------------------------------------------
class TestZeroWindowEquivalence:
    def test_w0_matches_greedy_fingerprint(self, test_scenario):
        greedy = _run(test_scenario, test_scenario.make_scheme("mt-share"))
        windowed = _run(test_scenario, _window_scheme(test_scenario, 0.0))
        assert decision_fingerprint(windowed) == decision_fingerprint(greedy)

    def test_w0_never_rolls(self, test_scenario):
        m = _run(test_scenario, _window_scheme(test_scenario, 0.0))
        assert m.counters.get("window.rolled", 0) == 0
        assert m.counters.get("window.collected", 0) == m.num_online


# ----------------------------------------------------------------------
# rollover semantics and accounting
# ----------------------------------------------------------------------
class TestRollover:
    def test_rollover_respects_deadlines_and_balance(self, test_scenario):
        scheme = _window_scheme(test_scenario, 60.0)
        sim = Simulator(scheme, test_scenario.make_fleet(6, seed=2), test_scenario.requests())
        decisions = []
        sim.on_decision = lambda req, now, matched, taxi, dt, kind: decisions.append(
            (req, now, matched, kind)
        )
        m = sim.run()
        m.check_balance()
        assert m.counters.get("window.rolled", 0) > 0, "fleet too large to force rollover"
        # A match after the pick-up deadline would be a phantom pickup.
        online = [d for d in decisions if d[3] == "online"]
        assert online, "no online decisions recorded"
        for req, now, matched, _kind in online:
            if matched:
                assert now <= req.pickup_deadline + 1e-9
        # Every online request reaches exactly one terminal decision.
        terminal = {d[0].request_id for d in online}
        assert len(terminal) == m.num_online
        assert m.counters.get("window.unflushed", 0) == 0

    def test_window_counters_present(self, test_scenario):
        m = _run(test_scenario, _window_scheme(test_scenario, 30.0))
        for counter in ("window.collected", "window.flushes", "window.matched"):
            assert m.counters.get(counter, 0) > 0, counter
        assert "window.solve" in m.stages
        assert m.stages["window.solve"]["count"] == m.counters["window.flushes"]


# ----------------------------------------------------------------------
# determinism: double run and the streaming façade
# ----------------------------------------------------------------------
class TestWindowedDeterminism:
    def test_double_run_identical(self, test_scenario):
        a = _run(test_scenario, _window_scheme(test_scenario, 30.0))
        b = _run(test_scenario, _window_scheme(test_scenario, 30.0))
        assert decision_fingerprint(a) == decision_fingerprint(b)

    def test_streaming_matches_batch(self, test_scenario):
        batch = _run(test_scenario, _window_scheme(test_scenario, 30.0))
        sim = Simulator(
            _window_scheme(test_scenario, 30.0),
            test_scenario.make_fleet(30, seed=1),
            [],
        )
        sim.stream_begin()
        for request in test_scenario.requests():
            sim.stream_submit(request)
        streamed = sim.stream_finish()
        assert decision_fingerprint(streamed) == decision_fingerprint(batch)
