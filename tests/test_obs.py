"""Tests for the ``repro.obs`` observability layer.

Covers the aggregation primitives (StageStats, stage nesting, counters,
gauges), the JSONL trace writer, the null-object opt-out, and the
end-to-end contract: a seed-scenario simulation must surface per-stage
dispatch timings and the lazy-cache hit rate in its metrics at an
instrumentation overhead below 5% of the run's wall time.
"""

import json
from time import perf_counter, sleep

import pytest

from repro.core.payment import PaymentModel
from repro.experiments.reporting import observability_table
from repro.obs import NULL, Instrumentation, JsonlTraceWriter, NullInstrumentation, StageStats
from repro.sim.engine import Simulator


class TestStageStats:
    def test_add_folds_spans(self):
        s = StageStats()
        s.add(0.2)
        s.add(0.1)
        s.add(0.3)
        assert s.count == 3
        assert s.total_s == pytest.approx(0.6)
        assert s.mean_s == pytest.approx(0.2)
        assert s.min_s == pytest.approx(0.1)
        assert s.max_s == pytest.approx(0.3)

    def test_empty_stats(self):
        s = StageStats()
        assert s.count == 0
        assert s.mean_s == 0.0
        d = s.as_dict()
        assert d["count"] == 0
        assert d["min_s"] == 0.0  # not inf in snapshots

    def test_merge(self):
        a, b = StageStats(), StageStats()
        a.add(0.1)
        a.add(0.5)
        b.add(0.3)
        a.merge(b)
        assert a.count == 3
        assert a.total_s == pytest.approx(0.9)
        assert a.min_s == pytest.approx(0.1)
        assert a.max_s == pytest.approx(0.5)
        a.merge(StageStats())  # merging empty is a no-op
        assert a.count == 3


class TestInstrumentation:
    def test_stage_records_span(self):
        obs = Instrumentation()
        with obs.stage("x"):
            sleep(0.001)
        assert obs.stages["x"].count == 1
        assert obs.stages["x"].total_s > 0.0

    def test_nesting_is_inclusive_and_tracked(self):
        obs = Instrumentation()
        assert obs.current_stage is None
        with obs.stage("outer"):
            assert obs.current_stage == "outer"
            assert obs.stage_depth == 1
            with obs.stage("inner"):
                assert obs.current_stage == "inner"
                assert obs.stage_depth == 2
                sleep(0.001)
            assert obs.current_stage == "outer"
        assert obs.stage_depth == 0
        assert obs.current_stage is None
        # Outer timing includes the nested inner span.
        assert obs.stages["outer"].total_s >= obs.stages["inner"].total_s

    def test_stack_unwinds_on_exception(self):
        obs = Instrumentation()
        with pytest.raises(RuntimeError):
            with obs.stage("boom"):
                raise RuntimeError("x")
        assert obs.stage_depth == 0
        assert obs.stages["boom"].count == 1  # the span is still recorded

    def test_counters_accumulate(self):
        obs = Instrumentation()
        obs.count("c")
        obs.count("c", 4)
        assert obs.counters["c"] == 5

    def test_gauge_overwrites(self):
        obs = Instrumentation()
        obs.gauge("g", 7)
        obs.gauge("g", 3)
        assert obs.counters["g"] == 3

    def test_snapshots_are_plain_copies(self):
        obs = Instrumentation()
        with obs.stage("s"):
            pass
        obs.count("c", 2)
        stages = obs.stage_snapshot()
        counters = obs.counter_snapshot()
        assert set(stages["s"]) == {"count", "total_s", "mean_s", "min_s", "max_s"}
        counters["c"] = 99
        assert obs.counters["c"] == 2  # mutation does not leak back

    def test_ops_counts_aggregations(self):
        obs = Instrumentation()
        with obs.stage("s"):
            pass
        obs.count("c")
        obs.gauge("g", 1)
        assert obs.ops == 3


class TestNullInstrumentation:
    def test_everything_is_a_noop(self):
        null = NullInstrumentation()
        with null.stage("x"):
            null.count("c", 10)
            null.gauge("g", 5)
            null.record("y", 1.0)
            null.event("e", a=1)
        assert null.stages == {}
        assert null.counters == {}
        assert null.ops == 0
        assert not null.enabled

    def test_shared_instance(self):
        assert isinstance(NULL, NullInstrumentation)
        assert Instrumentation.enabled and not NULL.enabled


class TestJsonlTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(str(path), buffer_lines=2) as w:
            for i in range(5):
                w.emit({"ev": "x", "i": i})
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["i"] for ln in lines] == [0, 1, 2, 3, 4]
        assert w.events_written == 5

    def test_emit_after_close_raises(self, tmp_path):
        w = JsonlTraceWriter(str(tmp_path / "t.jsonl"))
        w.close()
        w.close()  # idempotent
        with pytest.raises(ValueError):
            w.emit({"ev": "x"})

    def test_stage_exits_and_events_are_traced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs = Instrumentation(trace=JsonlTraceWriter(str(path)))
        assert obs.tracing
        with obs.stage("outer"):
            obs.event("custom", value=42)
        obs.close()
        events = [json.loads(ln) for ln in path.read_text().splitlines()]
        kinds = [e["ev"] for e in events]
        assert kinds == ["custom", "stage"]
        # The custom event is attributed to the innermost open stage.
        assert events[0]["stage"] == "outer"
        assert events[0]["value"] == 42
        assert events[1]["name"] == "outer"


@pytest.fixture(scope="module")
def obs_run(test_scenario):
    """One instrumented mT-Share run on the shared seed scenario."""
    sim = Simulator(
        test_scenario.make_scheme("mt-share"),
        test_scenario.make_fleet(15, seed=1),
        test_scenario.requests(),
        payment=PaymentModel(),
    )
    metrics = sim.run()
    return sim, metrics


class TestEndToEnd:
    def test_metrics_carry_stage_timings(self, obs_run):
        _sim, m = obs_run
        for stage in ("sim.dispatch", "match.candidates", "match.insertion",
                      "match.planning", "route.basic"):
            assert stage in m.stages, f"missing stage {stage}"
            assert m.stages[stage]["count"] > 0
            assert m.stages[stage]["total_s"] >= 0.0
        # Sub-stages nest inside the dispatch span (inclusive timings).
        assert m.stage_total_ms("match.candidates") <= m.stage_total_ms("sim.dispatch")

    def test_metrics_carry_counters(self, obs_run):
        _sim, m = obs_run
        c = m.counters
        assert c["match.candidates_found"] > 0
        assert c["match.insertions_evaluated"] > 0
        assert c["match.routes_planned"] > 0
        assert c["sim.taxi_advances"] > 0
        assert c["index.partition_entries"] >= 0
        assert c["index.clusters"] >= 0

    def test_cache_hit_rate_reported(self, obs_run):
        _sim, m = obs_run
        hits = m.counters.get("spe.cache_hits", 0)
        misses = m.counters.get("spe.cache_misses", 0)
        assert hits + misses > 0
        assert 0.0 <= m.lazy_cache_hit_rate <= 1.0
        assert m.lazy_cache_hit_rate == pytest.approx(hits / (hits + misses))
        assert "cache_hit_rate" in m.summary()

    def test_summary_exposes_stage_timings(self, obs_run):
        _sim, m = obs_run
        s = m.summary()
        for key in ("stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"):
            assert key in s

    def test_observability_table_renders(self, obs_run):
        _sim, m = obs_run
        table = observability_table(m)
        assert table is not None
        text = table.render()
        assert "match.planning" in text
        assert "total_ms" in text
        assert any("cache" in note for note in table.notes)

    def test_observability_table_none_without_stages(self, obs_run):
        _sim, m = obs_run
        bare = type(m)(scheme_name="bare")
        assert observability_table(bare) is None

    def test_overhead_below_five_percent(self, obs_run):
        """Aggregation cost, extrapolated from a per-op microbenchmark
        times the run's recorded op count, must stay under 5% of the
        run's wall time (the ISSUE's overhead budget)."""
        sim, m = obs_run
        probe = Instrumentation()
        n = 20_000
        t0 = perf_counter()
        for _ in range(n):
            probe.record("x", 0.0)
        per_record = (perf_counter() - t0) / n
        t0 = perf_counter()
        for _ in range(n):
            probe.count("y")
        per_count = (perf_counter() - t0) / n
        per_op = max(per_record, per_count)  # conservative upper bound
        overhead_s = sim.obs.ops * per_op
        assert overhead_s <= 0.05 * m.wall_time_s, (
            f"instrumentation overhead {overhead_s * 1e3:.2f} ms exceeds 5% "
            f"of wall time {m.wall_time_s * 1e3:.2f} ms ({sim.obs.ops} ops)"
        )

    def test_trace_file_from_simulator(self, tmp_path, test_scenario):
        path = tmp_path / "events.jsonl"
        Simulator(
            test_scenario.make_scheme("mt-share"),
            test_scenario.make_fleet(8, seed=2),
            test_scenario.requests(),
            trace_path=str(path),
        ).run()
        events = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert events, "trace file is empty"
        kinds = {e["ev"] for e in events}
        assert "dispatch" in kinds
        assert "stage" in kinds
        dispatches = [e for e in events if e["ev"] == "dispatch"]
        assert all("elapsed_ms" in e and "matched" in e for e in dispatches)
