"""Tests for landmarks and the landmark graph."""

import numpy as np
import pytest

from repro.network.landmarks import LandmarkGraph
from repro.network.shortest_path import ShortestPathEngine


class TestValidation:
    def test_partitions_must_cover(self, tiny_net, tiny_engine):
        with pytest.raises(ValueError):
            LandmarkGraph(tiny_net, [[0, 1, 2]], tiny_engine)

    def test_partitions_must_not_overlap(self, tiny_net, tiny_engine):
        parts = [[0, 1, 2, 3], [3, 4, 5, 6, 7, 8]]
        with pytest.raises(ValueError):
            LandmarkGraph(tiny_net, parts, tiny_engine)

    def test_engine_network_must_match(self, tiny_net, small_net, small_engine):
        with pytest.raises(ValueError):
            LandmarkGraph(tiny_net, [list(range(9))], small_engine)


class TestStructure:
    @pytest.fixture(scope="class")
    def lg(self, tiny_net, tiny_engine):
        # Rows of the 3x3 grid as partitions.
        parts = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        return LandmarkGraph(tiny_net, parts, tiny_engine)

    def test_counts(self, lg):
        assert lg.num_partitions == 3
        assert len(lg.landmarks) == 3

    def test_landmark_is_row_middle(self, lg):
        # The medoid of each 3-vertex row is its middle vertex.
        assert lg.landmarks == [1, 4, 7]

    def test_partition_of(self, lg):
        assert lg.partition_of(0) == 0
        assert lg.partition_of(4) == 1
        assert lg.partition_of(8) == 2

    def test_partition_of_many(self, lg):
        assert lg.partition_of_many([0, 4, 8]).tolist() == [0, 1, 2]

    def test_adjacency(self, lg):
        assert lg.neighbors(0) == (1,)
        assert lg.neighbors(1) == (0, 2)
        assert lg.adjacent(0, 1)
        assert not lg.adjacent(0, 2)

    def test_landmark_costs_symmetric_grid(self, lg, tiny_net):
        c01 = lg.landmark_cost(0, 1)
        assert c01 == pytest.approx(100.0 / tiny_net.speed_mps)
        assert lg.landmark_cost(1, 0) == pytest.approx(c01)
        assert lg.landmark_cost(2, 2) == 0.0

    def test_landmark_cost_matrix(self, lg):
        mat = lg.landmark_cost_matrix()
        assert mat.shape == (3, 3)
        assert np.allclose(np.diag(mat), 0.0)

    def test_centroid_and_radius(self, lg):
        c = lg.centroid(0)
        assert c[0] == pytest.approx(100.0)
        assert c[1] == pytest.approx(0.0)
        assert lg.radius(0) == pytest.approx(100.0)

    def test_landmark_xy(self, lg):
        assert lg.landmark_xy(0) == (100.0, 0.0)

    def test_disc_query(self, lg):
        # The query is conservative (bounding-disc intersection): a tiny
        # disc at the grid centre touches all three row discs.
        assert lg.partitions_intersecting_disc(100.0, 100.0, 10.0) == [0, 1, 2]
        # A disc far outside the city hits nothing.
        assert lg.partitions_intersecting_disc(2000.0, 2000.0, 10.0) == []
        # A disc centred on the bottom row's landmark with zero radius
        # still includes that row.
        assert 0 in lg.partitions_intersecting_disc(100.0, 0.0, 0.0)

    def test_members(self, lg):
        assert lg.members(2) == [6, 7, 8]

    def test_memory(self, lg):
        assert lg.memory_bytes() > 0


class TestLazyEngineMedoid:
    def test_lazy_mode_uses_euclidean_medoid(self, tiny_net):
        engine = ShortestPathEngine(tiny_net, mode="lazy")
        lg = LandmarkGraph(tiny_net, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], engine)
        assert lg.landmarks == [1, 4, 7]


class TestOnScenarioPartitions:
    def test_real_partitioning_integrates(self, small_landmarks, small_net):
        lg = small_landmarks
        assert lg.num_partitions >= 5
        for z in range(lg.num_partitions):
            assert lg.partition_of(lg.landmark(z)) == z
        # all vertices covered exactly once
        seen = sorted(v for z in range(lg.num_partitions) for v in lg.members(z))
        assert seen == list(range(small_net.num_vertices))


class TestAdjacencyOrderDeterminism:
    """Regression for the PR 3 bug class: adjacency must have an
    explicit, hash-seed-independent iteration order."""

    def test_neighbors_are_sorted_tuples(self, small_landmarks):
        lg = small_landmarks
        for z in range(lg.num_partitions):
            neigh = lg.neighbors(z)
            assert isinstance(neigh, tuple)
            assert list(neigh) == sorted(neigh)

    def test_table_round_trip_preserves_adjacency_exactly(
        self, small_landmarks, small_net, small_partitioning
    ):
        lg = small_landmarks
        restored = LandmarkGraph.from_tables(
            small_net, small_partitioning.partitions, lg.to_tables()
        )
        for z in range(lg.num_partitions):
            assert restored.neighbors(z) == lg.neighbors(z)
