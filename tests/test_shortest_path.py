"""Tests for the shortest-path engines and the restricted Dijkstra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    PathNotFound,
    ShortestPathEngine,
    dijkstra_restricted,
)


@pytest.fixture(scope="module")
def lazy_engine(small_net):
    return ShortestPathEngine(small_net, mode="lazy", cache_size=8)


class TestEngineBasics:
    def test_zero_distance_to_self(self, tiny_engine):
        assert tiny_engine.distance_m(4, 4) == 0.0
        assert tiny_engine.path(4, 4) == [4]

    def test_grid_distance(self, tiny_engine):
        # 0 -> 8 needs 4 hops of 100 m on the 3x3 grid.
        assert tiny_engine.distance_m(0, 8) == pytest.approx(400.0)

    def test_cost_is_distance_over_speed(self, tiny_engine, tiny_net):
        assert tiny_engine.cost(0, 2) == pytest.approx(200.0 / tiny_net.speed_mps)

    def test_path_is_valid_and_shortest(self, tiny_engine, tiny_net):
        path = tiny_engine.path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert tiny_net.is_path(path)
        assert tiny_net.path_length_m(path) == pytest.approx(tiny_engine.distance_m(0, 8))

    def test_unreachable(self):
        net = RoadNetwork([(0, 0), (100, 0)], [(0, 1)])  # one way only
        eng = ShortestPathEngine(net)
        assert eng.distance_m(1, 0) == np.inf
        assert not eng.reachable(1, 0)
        with pytest.raises(PathNotFound):
            eng.path(1, 0)

    def test_mode_validation(self, tiny_net):
        with pytest.raises(ValueError):
            ShortestPathEngine(tiny_net, mode="bogus")

    def test_distances_from_vector(self, tiny_engine):
        dist = tiny_engine.distances_from(0)
        assert dist.shape == (9,)
        assert dist[0] == 0.0
        assert dist[8] == pytest.approx(400.0)

    def test_eccentricity(self, tiny_engine):
        assert tiny_engine.eccentricity_m(0) == pytest.approx(400.0)

    def test_memory_reported(self, tiny_engine):
        assert tiny_engine.memory_bytes() > 0


class TestLazyMode:
    def test_matches_full_mode(self, small_net, small_engine, lazy_engine):
        rng = np.random.default_rng(0)
        for _ in range(20):
            u, v = rng.integers(0, small_net.num_vertices, size=2)
            assert lazy_engine.distance_m(int(u), int(v)) == pytest.approx(
                small_engine.distance_m(int(u), int(v))
            )

    def test_cache_eviction(self, small_net):
        eng = ShortestPathEngine(small_net, mode="lazy", cache_size=2)
        for source in range(5):
            eng.distances_from(source)
        assert len(eng._lazy) <= 2

    def test_paths_valid(self, small_net, lazy_engine):
        path = lazy_engine.path(0, small_net.num_vertices - 1)
        assert small_net.is_path(path)

    def test_auto_mode_selects_full_for_small(self, tiny_net):
        assert ShortestPathEngine(tiny_net, mode="auto").mode == "full"


class TestDijkstraRestricted:
    def test_unrestricted_matches_engine(self, tiny_net, tiny_engine):
        cost, path = dijkstra_restricted(tiny_net, 0, 8)
        assert cost == pytest.approx(tiny_engine.cost(0, 8))
        assert tiny_net.is_path(path)

    def test_allowed_set_respected(self, tiny_net):
        # Only the top row detour is allowed: 0-3-6-7-8.
        allowed = {0, 3, 6, 7, 8}
        _cost, path = dijkstra_restricted(tiny_net, 0, 8, allowed)
        assert set(path) <= allowed

    def test_endpoints_always_admitted(self, tiny_net):
        # Target admitted even if not listed in `allowed`.
        _cost, path = dijkstra_restricted(tiny_net, 0, 2, allowed={0, 1})
        assert path == [0, 1, 2]

    def test_disconnection_raises(self, tiny_net):
        with pytest.raises(PathNotFound):
            dijkstra_restricted(tiny_net, 0, 8, allowed={0, 8})

    def test_vertex_weights_steer(self, tiny_net):
        # Two equal-cost 0->2 alternatives exist via 1; penalise vertex 1
        # heavily and the path must avoid it.
        heavy = {1: 1e6}
        _cost, path = dijkstra_restricted(tiny_net, 0, 2, vertex_weight=heavy)
        assert 1 not in path

    def test_vertex_weight_callable(self, tiny_net):
        _cost, path = dijkstra_restricted(
            tiny_net, 0, 2, vertex_weight=lambda v: 1e6 if v == 1 else 0.0
        )
        assert 1 not in path

    def test_weighted_cost_includes_weights(self, tiny_net):
        base_cost, _ = dijkstra_restricted(tiny_net, 0, 2)
        w_cost, _ = dijkstra_restricted(tiny_net, 0, 2, vertex_weight={5: 7.5, 2: 2.5})
        # 0->1->2 avoids 5; weight on target 2 still applies.
        assert w_cost == pytest.approx(base_cost + 2.5)

    def test_source_equals_target(self, tiny_net):
        cost, path = dijkstra_restricted(tiny_net, 3, 3)
        assert cost == 0.0
        assert path == [3]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
    def test_matches_engine_everywhere(self, u, v):
        from repro.network.generators import small_test_network

        net = small_test_network()
        eng = ShortestPathEngine(net)
        cost, path = dijkstra_restricted(net, u, v)
        assert cost == pytest.approx(eng.cost(u, v))
        assert net.is_path(path)
