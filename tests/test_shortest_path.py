"""Tests for the shortest-path engines and the restricted Dijkstra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.ch import ContractionHierarchy
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    SP_MODE_ENV,
    PathNotFound,
    ShortestPathEngine,
    dijkstra_restricted,
    resolve_sp_mode,
)


@pytest.fixture(scope="module")
def lazy_engine(small_net):
    return ShortestPathEngine(small_net, mode="lazy", cache_size=8)


@pytest.fixture(scope="module")
def ch_engine(small_net):
    return ShortestPathEngine(small_net, mode="ch")


def _random_network(seed, n=36, num_edges=90, zero_frac=0.0):
    """A random directed network; sparse enough to leave some vertex
    pairs disconnected, optionally with exact zero-weight edges."""
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0.0, 1000.0, size=(n, 2))
    edges = []
    while len(edges) < num_edges:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        w = 0.0 if rng.random() < zero_frac else float(rng.uniform(1.0, 500.0))
        edges.append((u, v, w))
    return RoadNetwork(xy, edges)


class TestEngineBasics:
    def test_zero_distance_to_self(self, tiny_engine):
        assert tiny_engine.distance_m(4, 4) == 0.0
        assert tiny_engine.path(4, 4) == [4]

    def test_grid_distance(self, tiny_engine):
        # 0 -> 8 needs 4 hops of 100 m on the 3x3 grid.
        assert tiny_engine.distance_m(0, 8) == pytest.approx(400.0)

    def test_cost_is_distance_over_speed(self, tiny_engine, tiny_net):
        assert tiny_engine.cost(0, 2) == pytest.approx(200.0 / tiny_net.speed_mps)

    def test_path_is_valid_and_shortest(self, tiny_engine, tiny_net):
        path = tiny_engine.path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert tiny_net.is_path(path)
        assert tiny_net.path_length_m(path) == pytest.approx(tiny_engine.distance_m(0, 8))

    def test_unreachable(self):
        net = RoadNetwork([(0, 0), (100, 0)], [(0, 1)])  # one way only
        eng = ShortestPathEngine(net)
        assert eng.distance_m(1, 0) == np.inf
        assert not eng.reachable(1, 0)
        with pytest.raises(PathNotFound):
            eng.path(1, 0)

    def test_mode_validation(self, tiny_net):
        with pytest.raises(ValueError):
            ShortestPathEngine(tiny_net, mode="bogus")

    def test_distances_from_vector(self, tiny_engine):
        dist = tiny_engine.distances_from(0)
        assert dist.shape == (9,)
        assert dist[0] == 0.0
        assert dist[8] == pytest.approx(400.0)

    def test_eccentricity(self, tiny_engine):
        assert tiny_engine.eccentricity_m(0) == pytest.approx(400.0)

    def test_memory_reported(self, tiny_engine):
        assert tiny_engine.memory_bytes() > 0


class TestLazyMode:
    def test_matches_full_mode(self, small_net, small_engine, lazy_engine):
        rng = np.random.default_rng(0)
        for _ in range(20):
            u, v = rng.integers(0, small_net.num_vertices, size=2)
            assert lazy_engine.distance_m(int(u), int(v)) == pytest.approx(
                small_engine.distance_m(int(u), int(v))
            )

    def test_cache_eviction(self, small_net):
        eng = ShortestPathEngine(small_net, mode="lazy", cache_size=2)
        for source in range(5):
            eng.distances_from(source)
        assert len(eng._lazy) <= 2

    def test_paths_valid(self, small_net, lazy_engine):
        path = lazy_engine.path(0, small_net.num_vertices - 1)
        assert small_net.is_path(path)

    def test_auto_mode_selects_full_for_small(self, tiny_net):
        assert ShortestPathEngine(tiny_net, mode="auto").mode == "full"


class TestCHMode:
    """The contraction-hierarchy backend must be observationally
    identical to the scalar/scipy reference engines."""

    def test_bitwise_equal_to_full(self, small_net, small_engine, ch_engine):
        us = list(range(small_net.num_vertices))
        got = ch_engine.cost_matrix(us, us)
        want = small_engine.cost_matrix(us, us)
        assert np.array_equal(got, want)

    def test_pointwise_equal_to_lazy(self, small_net, lazy_engine, ch_engine):
        rng = np.random.default_rng(1)
        for _ in range(50):
            u, v = (int(x) for x in rng.integers(0, small_net.num_vertices, size=2))
            assert ch_engine.distance_m(u, v) == lazy_engine.distance_m(u, v)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs_match_scalar(self, seed):
        net = _random_network(seed)
        ch = ShortestPathEngine(net, mode="ch")
        ref = ShortestPathEngine(net, mode="lazy")
        rng = np.random.default_rng(seed + 100)
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(0, net.num_vertices, size=2))
            want = ref.distance_m(u, v)
            got = ch.distance_m(u, v)
            if np.isinf(want):
                assert np.isinf(got)
            else:
                # Random graphs can hold equal-length alternatives; both
                # answers are then shortest, but their float sums may
                # differ in the last ulp.
                assert got == pytest.approx(want, rel=1e-12, abs=1e-9)

    def test_zero_weight_edges(self):
        net = _random_network(7, zero_frac=0.3)
        ch = ShortestPathEngine(net, mode="ch")
        ref = ShortestPathEngine(net, mode="lazy")
        for u in range(0, net.num_vertices, 3):
            got = ch.cost_many(u, np.arange(net.num_vertices))
            want = ref.cost_many(u, np.arange(net.num_vertices))
            assert got == pytest.approx(want, rel=1e-12, abs=1e-9, nan_ok=False)

    def test_disconnected_components(self):
        # Two 2-cliques with no edges between them.
        net = RoadNetwork(
            [(0, 0), (100, 0), (5000, 0), (5100, 0)],
            [(0, 1), (1, 0), (2, 3), (3, 2)],
        )
        eng = ShortestPathEngine(net, mode="ch")
        assert eng.distance_m(0, 1) == pytest.approx(100.0)
        assert eng.distance_m(0, 2) == np.inf
        assert not eng.reachable(3, 1)
        with pytest.raises(PathNotFound):
            eng.path(0, 3)
        # Batched queries agree with the scalar ones.
        mat = eng.cost_matrix([0, 2], [1, 3])
        assert np.isfinite(mat[0, 0]) and np.isfinite(mat[1, 1])
        assert np.isinf(mat[0, 1]) and np.isinf(mat[1, 0])

    def test_cost_matrix_batched_equals_looped(self, small_net, ch_engine):
        rng = np.random.default_rng(3)
        us = [int(x) for x in rng.integers(0, small_net.num_vertices, size=8)]
        vs = [int(x) for x in rng.integers(0, small_net.num_vertices, size=11)]
        batched = ch_engine.cost_matrix(us, vs)
        for i, u in enumerate(us):
            for j, v in enumerate(vs):
                assert batched[i, j] == ch_engine.cost(u, v)

    def test_warm_matrix_tiers(self, small_net):
        eng = ShortestPathEngine(small_net, mode="ch")
        rng = np.random.default_rng(8)
        us = [int(x) for x in rng.integers(0, small_net.num_vertices, size=5)]
        vs = [int(x) for x in rng.integers(0, small_net.num_vertices, size=9)]
        cold = eng.cost_matrix(us, vs)
        identical = eng.cost_matrix(us, vs)  # result-matrix LRU
        shuffled = eng.cost_matrix(us, list(reversed(vs)))  # memo row fill
        assert np.array_equal(identical, cold)
        assert np.array_equal(shuffled, cold[:, ::-1])
        stats = eng.stats()
        assert stats["sp.ch.mat_hits"] >= 1
        assert stats["sp.ch.memo_hits"] >= len(us) * len(vs)

    def test_cost_many_matches_full(self, small_net, small_engine, ch_engine):
        vs = np.arange(small_net.num_vertices)
        assert np.array_equal(ch_engine.cost_many(17, vs), small_engine.cost_many(17, vs))

    def test_paths_valid_with_matching_cost(self, small_net, ch_engine, small_engine):
        rng = np.random.default_rng(5)
        for _ in range(30):
            u, v = (int(x) for x in rng.integers(0, small_net.num_vertices, size=2))
            path = ch_engine.path(u, v)
            assert path[0] == u and path[-1] == v
            assert small_net.is_path(path)
            assert small_net.path_length_m(path) == pytest.approx(
                small_engine.distance_m(u, v)
            )

    def test_dist_row_matches_full(self, small_engine, ch_engine):
        assert np.array_equal(ch_engine.dist_row(42), small_engine.dist_row(42))
        assert ch_engine.dist_col(42) is None

    def test_stats_keys(self, small_net):
        eng = ShortestPathEngine(small_net, mode="ch")
        eng.distance_m(0, 57)
        stats = eng.stats()
        for key in ("spe.cache_hits", "spe.cache_misses", "spe.cache_entries",
                    "sp.ch.queries", "sp.ch.shortcuts"):
            assert key in stats
        assert stats["sp.ch.queries"] >= 1
        assert stats["sp.ch.shortcuts"] == eng.hierarchy.num_shortcuts
        assert "sp.ch.shortcuts" in eng.STAT_GAUGES

    def test_mode_resolution(self, monkeypatch):
        monkeypatch.delenv(SP_MODE_ENV, raising=False)
        assert resolve_sp_mode("auto", 100) == "full"
        assert resolve_sp_mode("auto", 50_000) == "ch"
        assert resolve_sp_mode("lazy", 50_000) == "lazy"
        monkeypatch.setenv(SP_MODE_ENV, "ch")
        assert resolve_sp_mode("auto", 100) == "ch"
        assert resolve_sp_mode("full", 100) == "full"  # explicit beats env
        monkeypatch.setenv(SP_MODE_ENV, "bogus")
        with pytest.raises(ValueError):
            resolve_sp_mode("auto", 100)


class TestCHArtifacts:
    """The hierarchy must round-trip through arrays deterministically."""

    def test_build_deterministic(self, tiny_net):
        a = ContractionHierarchy.build(tiny_net).to_arrays()
        b = ContractionHierarchy.build(tiny_net).to_arrays()
        assert sorted(a) == sorted(b)
        for name in a:
            assert np.array_equal(a[name], b[name]), name

    def test_round_trip_queries_identical(self, small_net):
        cold = ContractionHierarchy.build(small_net)
        warm = ContractionHierarchy.from_arrays(small_net, cold.to_arrays())
        rng = np.random.default_rng(9)
        for _ in range(40):
            u, v = (int(x) for x in rng.integers(0, small_net.num_vertices, size=2))
            assert cold.distance_m(u, v) == warm.distance_m(u, v)
        us = [int(x) for x in rng.integers(0, small_net.num_vertices, size=6)]
        assert np.array_equal(cold.cost_matrix_m(us, us), warm.cost_matrix_m(us, us))

    def test_engine_warm_flags(self, tiny_net):
        cold = ShortestPathEngine(tiny_net, mode="ch")
        assert cold.ch_built and not cold.ch_mmapped
        arrays = cold.hierarchy_arrays()
        warm = ShortestPathEngine(tiny_net, mode="ch", ch_arrays=arrays)
        assert not warm.ch_built
        assert warm.distance_m(0, 8) == cold.distance_m(0, 8)

    def test_scenario_warm_store(self, tmp_path, monkeypatch):
        from repro.artifacts import get_store
        from repro.sim.scenario import Scenario, ScenarioSpec

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        spec = ScenarioSpec(
            kind="peak",
            grid_rows=8,
            grid_cols=8,
            spacing_m=150.0,
            hourly_requests=50,
            history_days=1,
            num_partitions=4,
            offline_count=5,
            seed=2,
            sp_mode="ch",
        )
        store = get_store()
        store.reset_stats()
        cold = Scenario(spec)
        assert cold.engine.ch_built
        assert store.stats()["ch"]["builds"] == 1

        store.reset_stats()
        warm = Scenario(spec)
        st = store.stats()["ch"]
        assert st["builds"] == 0
        assert st["mmap_loads"] >= 1
        assert not warm.engine.ch_built and warm.engine.ch_mmapped
        assert warm.engine.mmap_bytes() > 0
        # Same content key regardless of which process computes it.
        key = store.key_of("ch", cold._ch_spec())
        assert key == store.key_of("ch", warm._ch_spec())
        entries = store.entries("ch")
        assert len(entries) == 1 and entries[0]["key"] == key
        assert entries[0]["meta"]["vertices"] == cold.network.num_vertices
        # Warm and cold engines answer identically.
        rng = np.random.default_rng(4)
        for _ in range(25):
            u, v = (int(x) for x in rng.integers(0, cold.network.num_vertices, size=2))
            assert cold.engine.distance_m(u, v) == warm.engine.distance_m(u, v)


class TestDijkstraRestricted:
    def test_unrestricted_matches_engine(self, tiny_net, tiny_engine):
        cost, path = dijkstra_restricted(tiny_net, 0, 8)
        assert cost == pytest.approx(tiny_engine.cost(0, 8))
        assert tiny_net.is_path(path)

    def test_allowed_set_respected(self, tiny_net):
        # Only the top row detour is allowed: 0-3-6-7-8.
        allowed = {0, 3, 6, 7, 8}
        _cost, path = dijkstra_restricted(tiny_net, 0, 8, allowed)
        assert set(path) <= allowed

    def test_endpoints_always_admitted(self, tiny_net):
        # Target admitted even if not listed in `allowed`.
        _cost, path = dijkstra_restricted(tiny_net, 0, 2, allowed={0, 1})
        assert path == [0, 1, 2]

    def test_disconnection_raises(self, tiny_net):
        with pytest.raises(PathNotFound):
            dijkstra_restricted(tiny_net, 0, 8, allowed={0, 8})

    def test_vertex_weights_steer(self, tiny_net):
        # Two equal-cost 0->2 alternatives exist via 1; penalise vertex 1
        # heavily and the path must avoid it.
        heavy = {1: 1e6}
        _cost, path = dijkstra_restricted(tiny_net, 0, 2, vertex_weight=heavy)
        assert 1 not in path

    def test_vertex_weight_callable(self, tiny_net):
        _cost, path = dijkstra_restricted(
            tiny_net, 0, 2, vertex_weight=lambda v: 1e6 if v == 1 else 0.0
        )
        assert 1 not in path

    def test_weighted_cost_includes_weights(self, tiny_net):
        base_cost, _ = dijkstra_restricted(tiny_net, 0, 2)
        w_cost, _ = dijkstra_restricted(tiny_net, 0, 2, vertex_weight={5: 7.5, 2: 2.5})
        # 0->1->2 avoids 5; weight on target 2 still applies.
        assert w_cost == pytest.approx(base_cost + 2.5)

    def test_source_equals_target(self, tiny_net):
        cost, path = dijkstra_restricted(tiny_net, 3, 3)
        assert cost == 0.0
        assert path == [3]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=0, max_value=8))
    def test_matches_engine_everywhere(self, u, v):
        from repro.network.generators import small_test_network

        net = small_test_network()
        eng = ShortestPathEngine(net)
        cost, path = dijkstra_restricted(net, u, v)
        assert cost == pytest.approx(eng.cost(u, v))
        assert net.is_path(path)
