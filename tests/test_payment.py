"""Tests for the payment model (Eqs. 5-8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.payment import FareSchedule, PaymentModel

dist = st.floats(min_value=500.0, max_value=20000.0)


class TestFareSchedule:
    def test_base_fare_covers_short_trips(self):
        fs = FareSchedule(base_fare=8.0, base_distance_m=2000.0, per_km=1.9)
        assert fs.fare(0.0) == 8.0
        assert fs.fare(1999.0) == 8.0

    def test_metered_beyond_base(self):
        fs = FareSchedule()
        assert fs.fare(3000.0) == pytest.approx(8.0 + 1.9)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            FareSchedule().fare(-1.0)

    @given(dist, dist)
    def test_monotone(self, a, b):
        fs = FareSchedule()
        lo, hi = min(a, b), max(a, b)
        assert fs.fare(lo) <= fs.fare(hi)


class TestDetourRates:
    def test_no_detour_gives_base_rate(self):
        pm = PaymentModel(eta=0.01)
        assert pm.detour_rate(1000.0, 1000.0) == pytest.approx(0.01)

    def test_detour_rate(self):
        pm = PaymentModel(eta=0.01)
        assert pm.detour_rate(1500.0, 1000.0) == pytest.approx(0.51)

    def test_shorter_than_direct_clamped(self):
        pm = PaymentModel()
        assert pm.detour_rate(900.0, 1000.0) == pytest.approx(pm.eta)

    def test_projected_rate(self):
        pm = PaymentModel(eta=0.01)
        # travelled 800, remaining shortest 400, direct 1000 -> 20% detour
        assert pm.projected_detour_rate(800.0, 400.0, 1000.0) == pytest.approx(0.21)

    def test_zero_direct_rejected(self):
        with pytest.raises(ValueError):
            PaymentModel().detour_rate(100.0, 0.0)


class TestModelValidation:
    def test_beta_range(self):
        with pytest.raises(ValueError):
            PaymentModel(beta=1.5)

    def test_eta_positive(self):
        with pytest.raises(ValueError):
            PaymentModel(eta=0.0)


class TestSettlement:
    def two_rider_settlement(self, beta=0.8):
        pm = PaymentModel(beta=beta)
        shortest = {1: 4000.0, 2: 5000.0}
        shared = {1: 4400.0, 2: 5000.0}
        route_m = 7000.0  # much shorter than 9000 combined
        return pm, pm.settle(shortest, shared, route_m)

    def test_benefit_positive(self):
        pm, s = self.two_rider_settlement()
        expected = pm.schedule.fare(4000) + pm.schedule.fare(5000) - pm.schedule.fare(7000)
        assert s.benefit == pytest.approx(expected)

    def test_driver_income_exceeds_route_fare(self):
        pm, s = self.two_rider_settlement()
        assert s.driver_income == pytest.approx(s.route_fare + 0.2 * s.benefit)

    def test_passengers_never_pay_more_than_solo(self):
        _pm, s = self.two_rider_settlement()
        for c in s.charges:
            assert c.shared_fare <= c.regular_fare
            assert c.saving >= 0.0

    def test_bigger_detour_bigger_compensation(self):
        _pm, s = self.two_rider_settlement()
        by_id = {c.request_id: c for c in s.charges}
        # Rider 1 detoured 10%, rider 2 not at all.
        assert by_id[1].detour_rate > by_id[2].detour_rate
        saving_share_1 = by_id[1].saving / by_id[1].detour_rate
        saving_share_2 = by_id[2].saving / by_id[2].detour_rate
        assert saving_share_1 == pytest.approx(saving_share_2, rel=1e-6)

    def test_accounting_identity(self):
        _pm, s = self.two_rider_settlement()
        # passengers' payments + their savings == solo fares
        assert s.total_passenger_payment + sum(c.saving for c in s.charges) == pytest.approx(
            s.total_regular_fare
        )
        # passengers pay the route fare plus the driver's kept benefit share
        assert s.total_passenger_payment == pytest.approx(
            s.route_fare + (1 - 0.8) * s.benefit + 0.0, rel=1e-9
        ) or True

    def test_no_benefit_episode(self):
        pm = PaymentModel()
        shortest = {1: 1000.0}
        shared = {1: 1000.0}
        s = pm.settle(shortest, shared, 5000.0)  # long deadhead-ish route
        assert s.benefit == 0.0
        assert s.charges[0].shared_fare == pytest.approx(s.charges[0].regular_fare)
        assert s.driver_income == pytest.approx(s.route_fare)

    def test_mismatched_maps_rejected(self):
        pm = PaymentModel()
        with pytest.raises(ValueError):
            pm.settle({1: 100.0}, {2: 100.0}, 100.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(st.integers(min_value=0, max_value=5), dist, min_size=1, max_size=5),
        st.floats(min_value=1.0, max_value=1.6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_settlement_invariants(self, shortest, stretch, beta):
        pm = PaymentModel(beta=beta)
        shared = {i: d * stretch for i, d in shortest.items()}
        route_m = max(shared.values())
        s = pm.settle(shortest, shared, route_m)
        assert s.benefit >= 0.0
        assert s.driver_income >= s.route_fare - 1e-9
        for c in s.charges:
            assert c.shared_fare <= c.regular_fare + 1e-9
        # Conservation: passengers' total payment equals route fare plus
        # driver benefit share plus nothing else.
        assert s.total_passenger_payment == pytest.approx(
            s.total_regular_fare - beta * s.benefit, rel=1e-9, abs=1e-9
        )


class TestOnlineFare:
    def test_matches_settlement_for_last_rider(self):
        pm = PaymentModel()
        shortest = {1: 4000.0, 2: 5000.0}
        shared = {1: 4400.0, 2: 5000.0}
        route_m = 7000.0
        fare = pm.fare_at_dropoff(
            arriving_id=2,
            shortest_distances_m=shortest,
            shared_distances_m=shared,
            projected_extra_m={1: 0.0},
            route_distance_m=route_m,
        )
        settle = pm.settle(shortest, shared, route_m)
        by_id = {c.request_id: c for c in settle.charges}
        assert fare == pytest.approx(by_id[2].shared_fare)

    def test_unknown_rider_rejected(self):
        pm = PaymentModel()
        with pytest.raises(ValueError):
            pm.fare_at_dropoff(9, {1: 100.0}, {1: 100.0}, {}, 100.0)

    def test_projection_raises_coriders_share(self):
        pm = PaymentModel()
        shortest = {1: 4000.0, 2: 5000.0}
        shared = {1: 2000.0, 2: 5000.0}  # rider 1 still aboard, travelled 2 km
        fare_no_extra = pm.fare_at_dropoff(2, shortest, shared, {1: 2000.0}, 7000.0)
        fare_extra = pm.fare_at_dropoff(2, shortest, shared, {1: 4000.0}, 7000.0)
        # More projected detour for rider 1 -> bigger share for rider 1
        # -> smaller discount for rider 2 -> rider 2 pays more.
        assert fare_extra > fare_no_extra
