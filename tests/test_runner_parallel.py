"""Parallel sweep executor, planning mode, and cache-isolation fixes."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace

import numpy as np

from repro.experiments import runner
from repro.experiments.figures import ALL_EXPERIMENTS, NON_RUN_FIGURES, figure_run_keys
from repro.experiments.runner import (
    BenchScale,
    RunKey,
    clear_cache,
    collect_keys,
    collect_observability,
    default_workers,
    run,
    run_many,
)
from repro.sim import scenario as sc
from repro.sim.scenario import ScenarioSpec

MICRO_SPEC = ScenarioSpec(
    kind="peak",
    grid_rows=8,
    grid_cols=8,
    spacing_m=180.0,
    hourly_requests=120,
    history_days=2,
    num_partitions=9,
    offline_count=10,
    seed=3,
)

MICRO_SCALE = BenchScale(
    name="micro",
    peak=MICRO_SPEC,
    nonpeak=replace(MICRO_SPEC, kind="nonpeak"),
    taxi_counts=(20, 30),
    default_taxis=30,
)


def decision_fingerprint(m) -> tuple:
    """Everything a run decides, excluding wall-clock measurements.

    ``response_times_s`` and the stage timings measure *this process's*
    compute latency and are legitimately different across processes;
    every dispatch decision below must be bit-identical.
    """
    return (
        m.served,
        m.num_requests,
        m.served_online,
        m.served_offline,
        m.completed,
        tuple(m.waiting_times_s),
        tuple(m.detour_times_s),
        tuple(m.candidate_counts),
        m.shared_fares,
        m.driver_incomes,
        m.counters.get("match.insertions_evaluated"),
    )


# ----------------------------------------------------------------------
# cache isolation (satellite: clear_cache must clear both layers)
# ----------------------------------------------------------------------
def test_clear_cache_also_clears_scenario_cache():
    spec = replace(MICRO_SPEC, seed=201)
    s1 = sc.get_scenario(spec)
    key = RunKey(spec=spec, scheme="no-sharing", num_taxis=10)
    run(key)
    assert key in runner._CACHE

    clear_cache()
    assert key not in runner._CACHE
    assert sc.get_scenario(spec) is not s1, (
        "clear_cache() left a built scenario resident; the scenario "
        "layer must be cleared together with the run cache"
    )


# ----------------------------------------------------------------------
# planning mode
# ----------------------------------------------------------------------
def test_collect_keys_records_without_running():
    clear_cache()
    keys = collect_keys(
        lambda: [run(RunKey(spec=MICRO_SPEC, scheme="mt-share", num_taxis=n))
                 for n in (10, 20, 10)]
    )
    assert [k.num_taxis for k in keys] == [10, 20]  # deduplicated, ordered
    assert not runner._CACHE, "planning must not execute simulations"
    assert runner._PLANNING is None, "planning flag must be restored"


def test_figure_run_keys_skips_non_run_figures():
    assert "fig5" in NON_RUN_FIGURES and "fig21" in NON_RUN_FIGURES
    keys = figure_run_keys(["fig5", "fig6", "fig7", "table3", "fig21"], MICRO_SCALE)
    assert keys, "run()-routed figures must contribute keys"
    # Figs. 6/7 and Table III share the peak fleet sweep: 4 schemes x 2
    # fleet sizes, deduplicated.
    assert len(keys) == 8
    assert all(k.spec == MICRO_SPEC for k in keys)


def test_figure_run_keys_default_covers_all_run_figures():
    keys = figure_run_keys(scale=MICRO_SCALE)
    assert len(keys) > 20
    names = set(ALL_EXPERIMENTS) - NON_RUN_FIGURES
    assert names, "registry should have run()-routed figures"


# ----------------------------------------------------------------------
# parallel execution
# ----------------------------------------------------------------------
def test_run_many_sequential_path_matches_run():
    clear_cache()
    keys = [RunKey(spec=MICRO_SPEC, scheme="no-sharing", num_taxis=n) for n in (10, 15)]
    results = run_many(keys, workers=1)
    assert [decision_fingerprint(m) for m in results] == [
        decision_fingerprint(run(k)) for k in keys
    ]


def test_run_many_parallel_is_deterministic_and_ordered():
    clear_cache()
    keys = [
        RunKey(spec=MICRO_SPEC, scheme="mt-share", num_taxis=n) for n in (10, 20, 30)
    ]
    sequential = [decision_fingerprint(run(k)) for k in keys]

    clear_cache()
    parallel = run_many(keys, workers=2)
    assert [decision_fingerprint(m) for m in parallel] == sequential

    # Results were memoised exactly as sequential runs would be.
    assert all(k in runner._CACHE for k in keys)
    obs = collect_observability()
    assert len(obs["workers"]) == len(keys)
    for snapshot in obs["workers"]:
        assert "artifact_store" in snapshot and "scenario_cache" in snapshot


def test_run_many_handles_duplicates_and_cached_keys():
    clear_cache()
    key = RunKey(spec=MICRO_SPEC, scheme="no-sharing", num_taxis=12)
    first = run(key)  # pre-cached
    results = run_many([key, key], workers=4)
    assert results[0] is first and results[1] is first


def test_default_workers_env(monkeypatch):
    monkeypatch.delenv(runner.WORKERS_ENV, raising=False)
    assert default_workers() == 1
    monkeypatch.setenv(runner.WORKERS_ENV, "4")
    assert default_workers() == 4
    monkeypatch.setenv(runner.WORKERS_ENV, "bogus")
    assert default_workers() == 1


# ----------------------------------------------------------------------
# cross-process determinism (satellite: in-process vs worker vs warm)
# ----------------------------------------------------------------------
_SUBPROCESS_RUN = """
import json
from repro.experiments.runner import RunKey, run
from repro.sim.scenario import ScenarioSpec
spec = ScenarioSpec(kind="peak", grid_rows=8, grid_cols=8, spacing_m=180.0,
                    hourly_requests=120, history_days=2, num_partitions=9,
                    offline_count=10, seed=3)
m = run(RunKey(spec=spec, scheme="mt-share", num_taxis=25))
print(json.dumps({
    "served": m.served,
    "num_requests": m.num_requests,
    "waiting": list(m.waiting_times_s),
    "detour": list(m.detour_times_s),
    "candidates": list(m.candidate_counts),
    "shared_fares": m.shared_fares,
    "insertions": m.counters.get("match.insertions_evaluated"),
}))
"""


def test_same_runkey_identical_across_processes_and_store_states():
    """One RunKey, three execution paths, one exact answer."""
    clear_cache()
    key = RunKey(spec=MICRO_SPEC, scheme="mt-share", num_taxis=25)
    in_process = decision_fingerprint(run(key))

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # Spawned fresh process against the (now warm) artifact store.
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_RUN],
        env=env, capture_output=True, text=True, check=True,
    )
    worker = json.loads(out.stdout)
    assert worker["served"] == in_process[0]
    assert worker["num_requests"] == in_process[1]
    assert tuple(worker["waiting"]) == in_process[5]
    assert tuple(worker["detour"]) == in_process[6]
    assert tuple(worker["candidates"]) == in_process[7]
    assert worker["shared_fares"] == in_process[8]
    assert worker["insertions"] == in_process[10]

    # Warm-store rebuild in this process (scenario cache dropped).
    clear_cache()
    warm = decision_fingerprint(run(key))
    assert warm == in_process


def test_worker_and_sequential_metrics_bitwise_equal_arrays():
    clear_cache()
    key = RunKey(spec=MICRO_SPEC, scheme="t-share", num_taxis=15)
    a = run(key)
    clear_cache()
    (b,) = run_many([key], workers=1)
    assert np.array_equal(np.asarray(a.waiting_times_s), np.asarray(b.waiting_times_s))
    assert np.array_equal(np.asarray(a.detour_times_s), np.asarray(b.detour_times_s))
