"""Streaming dispatch service tests: equivalence, admission, transport.

The load-bearing guarantee is *equivalence*: a workload replayed
through the service façade — any submission order, any pumping cadence
— must produce decisions bit-identical to batch ``Simulator.run()``
over the same workload, because both reduce to the same heap-ordered
event sequence.  On top of that, admission control (duplicate, late,
backpressure) must keep the request-accounting identity closed.
"""

import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.payment import PaymentModel
from repro.demand.request import RideRequest
from repro.sim.engine import COMPACT_SAMPLE_CAP, Simulator
from repro.sim.scenario import ScenarioSpec, get_scenario
from repro.service import (
    REJECT_BACKPRESSURE,
    REJECT_DUPLICATE,
    REJECT_LATE,
    AdmissionPolicy,
    DispatchService,
    ServiceConfig,
    jsonl_requests,
    request_from_dict,
    request_to_dict,
    synthetic_requests,
)
from repro.service.http import make_server
from tests.conftest import make_request
from tests.test_runner_parallel import decision_fingerprint

SERVICE_SPEC = ScenarioSpec(
    kind="peak",
    grid_rows=8,
    grid_cols=8,
    spacing_m=180.0,
    hourly_requests=120,
    history_days=2,
    num_partitions=9,
    offline_count=10,
    seed=3,
)

MEASURED_KEYS = frozenset(
    {"response_ms", "stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"}
)


@pytest.fixture(scope="module")
def svc_scenario():
    return get_scenario(SERVICE_SPEC)


def _make_sim(scenario, workload, scheme="mt-share", **kwargs):
    return Simulator(
        scenario.make_scheme(scheme),
        scenario.make_fleet(15, seed=1),
        workload,
        payment=PaymentModel(),
        **kwargs,
    )


def _decision_summary(m):
    return {k: v for k, v in m.summary().items() if k not in MEASURED_KEYS}


class TestEquivalence:
    @pytest.fixture(scope="class")
    def batch(self, svc_scenario):
        sim = _make_sim(svc_scenario, svc_scenario.requests())
        return sim, sim.run()

    def test_eager_stream_matches_batch(self, svc_scenario, batch):
        _bsim, bm = batch
        service = DispatchService(_make_sim(svc_scenario, []))
        sm = service.replay(iter(svc_scenario.requests()), pump_every=1)
        assert decision_fingerprint(sm) == decision_fingerprint(bm)
        assert _decision_summary(sm) == _decision_summary(bm)

    def test_out_of_order_delivery_matches_batch(self, svc_scenario, batch):
        # Shuffled delivery with deferred pumping: the heap restores
        # release order, so decisions match the sorted batch exactly.
        _bsim, bm = batch
        shuffled = list(svc_scenario.requests())
        random.Random(11).shuffle(shuffled)
        service = DispatchService(_make_sim(svc_scenario, []))
        sm = service.replay(iter(shuffled), pump_every=None)
        assert decision_fingerprint(sm) == decision_fingerprint(bm)

    def test_chunked_pumping_matches_batch(self, svc_scenario, batch):
        _bsim, bm = batch
        service = DispatchService(_make_sim(svc_scenario, []))
        sm = service.replay(iter(svc_scenario.requests()), pump_every=17)
        assert decision_fingerprint(sm) == decision_fingerprint(bm)

    def test_double_run_determinism_through_facade(self, svc_scenario):
        def run_once():
            service = DispatchService(_make_sim(svc_scenario, []))
            m = service.replay(iter(svc_scenario.requests()), pump_every=1)
            trips = {
                rid: (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
                for rid, t in service.sim.log.trips.items()
            }
            return trips, decision_fingerprint(m), _decision_summary(m)

        assert run_once() == run_once()

    def test_decision_stream_covers_online_requests(self, svc_scenario):
        service = DispatchService(_make_sim(svc_scenario, []))
        m = service.replay(iter(svc_scenario.requests()), pump_every=1)
        online = [d for d in service.decisions if d.kind == "online"]
        # One first-look decision per online request, no more, no less.
        assert len(online) == m.num_online
        matched = sum(1 for d in online if d.status == "matched")
        unmatched = sum(1 for d in online if d.status == "unmatched")
        assert matched + unmatched == m.num_online
        assert unmatched == m.unserved_online
        # Offline installs surface with their own kind.
        offline = [d for d in service.decisions if d.kind == "offline"]
        assert all(d.status == "matched" for d in offline)


class TestAdmission:
    def _service(self, svc_scenario, **policy_kw):
        sim = _make_sim(svc_scenario, [], scheme="no-sharing")
        return DispatchService(
            sim, ServiceConfig(admission=AdmissionPolicy(**policy_kw))
        )

    def test_duplicate_delivery_rejected(self, svc_scenario):
        service = self._service(svc_scenario)
        r = svc_scenario.requests()[0]
        assert service.submit(r).accepted
        outcome = service.submit(r)
        assert not outcome.accepted
        assert outcome.reason == REJECT_DUPLICATE
        m = service.finish()
        assert m.rejected == 1
        assert m.num_requests == 2
        m.check_balance()

    def test_late_arrival_rejected(self, svc_scenario):
        service = self._service(svc_scenario)
        service.submit(make_request(request_id=1, release_time=600.0))
        service.pump()  # clock commits to 600
        outcome = service.submit(make_request(request_id=2, release_time=100.0))
        assert not outcome.accepted
        assert outcome.reason == REJECT_LATE
        m = service.finish()
        assert m.rejected_online == 1
        m.check_balance()

    def test_late_arrival_clamped(self, svc_scenario):
        service = self._service(svc_scenario, late_policy="clamp")
        service.submit(make_request(request_id=1, release_time=600.0))
        service.pump()
        late = make_request(request_id=2, release_time=100.0, rho=20.0)
        outcome = service.submit(late)
        assert outcome.accepted and outcome.clamped
        assert outcome.request.release_time == 600.0
        assert outcome.request.deadline == late.deadline  # deadline kept
        m = service.finish()
        assert m.rejected == 0
        m.check_balance()

    def test_clamp_with_infeasible_deadline_rejects(self, svc_scenario):
        service = self._service(svc_scenario, late_policy="clamp")
        service.submit(make_request(request_id=1, release_time=600.0))
        service.pump()
        # Clamping to t=600 leaves less than direct_cost before the
        # deadline: the trip can no longer happen.
        doomed = make_request(request_id=2, release_time=100.0, rho=1.05)
        outcome = service.submit(doomed)
        assert not outcome.accepted
        assert outcome.reason == REJECT_LATE
        service.finish().check_balance()

    def test_backpressure_bounds_in_flight(self, svc_scenario):
        service = self._service(svc_scenario, max_in_flight=2)
        requests = svc_scenario.requests()[:5]
        outcomes = [service.submit(r) for r in requests]  # never pumped
        accepted = [o for o in outcomes if o.accepted]
        rejected = [o for o in outcomes if not o.accepted]
        assert len(accepted) == 2
        assert len(rejected) == 3
        assert all(o.reason == REJECT_BACKPRESSURE for o in rejected)
        assert service.pending == 2
        m = service.finish()
        assert m.rejected == 3
        assert m.num_requests == 5
        assert service.rejections == {REJECT_BACKPRESSURE: 3}
        m.check_balance()  # rejected requests fold into the identity

    def test_backpressure_recovers_after_pump(self, svc_scenario):
        service = self._service(svc_scenario, max_in_flight=2)
        requests = svc_scenario.requests()[:3]
        service.submit(requests[0])
        service.submit(requests[1])
        assert not service.submit(requests[2]).accepted
        service.pump()  # drain the queue
        retry = service.submit(requests[2])
        assert retry.accepted  # rejection does not poison the id
        service.finish().check_balance()

    def test_rejections_surface_in_contract(self, svc_scenario):
        # The mid-run accounting contract counts rejected buckets, so a
        # rejection right after submission does not trip it.
        from repro.analysis import contracts

        service = self._service(svc_scenario, max_in_flight=1)
        requests = svc_scenario.requests()[:3]
        for r in requests:
            service.submit(r)
        contracts.check_request_accounting(service.sim.metrics)
        service.finish().check_balance()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(late_policy="drop")
        with pytest.raises(ValueError):
            AdmissionPolicy(max_in_flight=0)


class TestDecisionStream:
    def test_records_have_expected_shape(self, svc_scenario):
        service = DispatchService(_make_sim(svc_scenario, [], scheme="no-sharing"))
        service.replay(iter(svc_scenario.requests()[:20]), pump_every=1)
        assert service.decisions
        for d in service.decisions:
            assert d.status in ("matched", "unmatched", "rejected")
            assert d.kind in ("online", "redispatch", "offline") or d.status == "rejected"
            if d.status == "matched":
                assert d.taxi_id is not None

    def test_sink_bypasses_retention(self, svc_scenario):
        seen = []
        service = DispatchService(
            _make_sim(svc_scenario, [], scheme="no-sharing"),
            on_decision=seen.append,
        )
        service.replay(iter(svc_scenario.requests()[:10]), pump_every=1)
        assert seen
        assert service.decisions == []


class TestCodec:
    def test_request_round_trip(self):
        r = make_request(request_id=42, release_time=1.5, offline=True,
                         num_passengers=2)
        assert request_from_dict(request_to_dict(r)) == r

    def test_unknown_keys_ignored(self):
        payload = request_to_dict(make_request(request_id=1))
        payload["annotation"] = "extra"
        assert request_from_dict(payload).request_id == 1

    def test_jsonl_round_trip(self, svc_scenario, tmp_path):
        requests = svc_scenario.requests()[:25]
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as f:
            for r in requests:
                f.write(json.dumps(request_to_dict(r)) + "\n")
        assert list(jsonl_requests(str(path))) == requests

    def test_jsonl_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"request_id": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            list(jsonl_requests(str(path)))


class TestSyntheticSource:
    def test_deterministic_and_sorted(self, small_engine):
        a = list(synthetic_requests(small_engine, 50, seed=9))
        b = list(synthetic_requests(small_engine, 50, seed=9))
        assert a == b
        assert len(a) == 50
        times = [r.release_time for r in a]
        assert times == sorted(times)
        assert all(isinstance(r, RideRequest) and not r.offline for r in a)

    def test_streams_through_service(self, svc_scenario):
        scheme = svc_scenario.make_scheme("no-sharing")
        service = DispatchService(_make_sim(svc_scenario, [], scheme="no-sharing"))
        m = service.replay(
            synthetic_requests(scheme.engine, 100, rate_per_s=0.5, seed=4),
            pump_every=1,
        )
        assert m.num_requests == 100
        m.check_balance()


class TestCompactMode:
    def test_sample_lists_bounded_but_aggregates_exact(self, svc_scenario):
        full = _make_sim(svc_scenario, svc_scenario.requests(), scheme="no-sharing")
        mf = full.run()
        compact = _make_sim(
            svc_scenario, svc_scenario.requests(), scheme="no-sharing", compact=True
        )
        compact.metrics.sample_cap = 5  # force truncation on a small run
        mc = compact.run()
        assert len(mc.waiting_times_s) == 5
        assert mc.waiting_stat.count == len(mf.waiting_times_s)
        assert mc.avg_waiting_min == pytest.approx(mf.avg_waiting_min)
        assert mc.avg_detour_min == pytest.approx(mf.avg_detour_min)
        assert mc.avg_candidates == pytest.approx(mf.avg_candidates)
        # Scalar decisions are untouched by compaction.
        assert mc.served == mf.served
        assert mc.completed == mf.completed

    def test_completed_trips_evicted(self, svc_scenario):
        compact = _make_sim(
            svc_scenario, svc_scenario.requests(), scheme="no-sharing", compact=True
        )
        mc = compact.run()
        assert mc.completed > 0
        assert not compact.log.completed()  # evicted as they finished
        assert compact.metrics.sample_cap == COMPACT_SAMPLE_CAP
        mc.check_balance()


class TestHTTPEndpoint:
    @pytest.fixture()
    def server(self, svc_scenario):
        service = DispatchService(_make_sim(svc_scenario, [], scheme="no-sharing"))
        server, state = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", state
        server.shutdown()
        server.server_close()

    @staticmethod
    def _post(base, path, payload):
        req = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    @staticmethod
    def _get(base, path):
        with urllib.request.urlopen(base + path) as resp:
            return resp.status, json.loads(resp.read())

    def test_end_to_end(self, svc_scenario, server):
        base, _state = server
        requests = svc_scenario.requests()[:6]
        statuses = []
        for r in requests:
            code, body = self._post(base, "/requests", request_to_dict(r))
            assert code == 200 and body["accepted"]
            statuses.extend(d["status"] for d in body["decisions"])
        assert statuses  # eager pumping returns decisions inline

        code, body = self._post(base, "/requests", request_to_dict(requests[0]))
        assert code == 409 and body["reason"] == REJECT_DUPLICATE

        code, body = self._get(base, "/healthz")
        assert code == 200 and body["ok"] and body["submitted"] == 7

        code, body = self._get(base, "/metrics")
        assert code == 200 and body["rejected"] == 1

        code, body = self._post(base, "/finish", {})
        assert code == 200
        summary = body["summary"]
        assert summary["served"] + summary["unserved"] + summary["rejected"] >= 7

        # Submissions after finish are refused cleanly.
        code, body = self._post(base, "/requests", request_to_dict(requests[1]))
        assert code == 409

    def test_malformed_request_is_client_error(self, server):
        base, _state = server
        code, body = self._post(base, "/requests", {"request_id": 1})
        assert code == 400 and "error" in body

    def test_unknown_path_404(self, server):
        base, _state = server
        code, _ = self._get(base, "/healthz")
        assert code == 200
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(base + "/nope")

    def test_concurrent_submissions_no_lost_or_double_counted(
        self, svc_scenario, server, monkeypatch
    ):
        """N threads x M submits with duplicates and out-of-order releases.

        Whatever the interleaving, the single ``state.lock`` must keep
        the books exact: every POST gets a response, ``submitted``
        equals the number of POSTs, each unique request is admitted at
        most once (duplicates are refused, never double-counted), and
        after ``/finish`` the request-accounting identity closes under
        ``REPRO_CONTRACTS=1``.
        """
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        base, state = server

        requests = svc_scenario.requests()[:24]
        posts = requests * 2  # every request submitted twice -> duplicates
        n_threads = 8
        buckets: list[list] = [[] for _ in range(n_threads)]
        for i, r in enumerate(posts):
            buckets[i % n_threads].append(r)
        rng = random.Random(1234)
        for bucket in buckets:
            rng.shuffle(bucket)  # out-of-order releases within each thread

        results: list[list[tuple[int, int, dict]]] = [[] for _ in range(n_threads)]
        barrier = threading.Barrier(n_threads)

        def worker(idx: int) -> None:
            barrier.wait()
            for r in buckets[idx]:
                code, body = self._post(base, "/requests", request_to_dict(r))
                results[idx].append((r.request_id, code, body))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)

        flat = [item for bucket in results for item in bucket]
        assert len(flat) == len(posts)  # no lost requests
        accepted_ids = [rid for rid, _code, body in flat if body["accepted"]]
        rejected = [
            (rid, body["reason"]) for rid, _code, body in flat if not body["accepted"]
        ]
        # Conservation: every POST is exactly one of accepted / rejected.
        assert len(accepted_ids) + len(rejected) == len(posts)
        # No double-counting: a request id is admitted at most once.
        assert len(accepted_ids) == len(set(accepted_ids))
        # The concurrent-duplicate path actually fired.
        reasons = {reason for _rid, reason in rejected}
        assert reasons <= {REJECT_DUPLICATE, REJECT_LATE, REJECT_BACKPRESSURE}
        assert REJECT_DUPLICATE in reasons

        with state.lock:
            service = state.service
            assert service.submitted == len(posts)
            assert service.admitted == len(accepted_ids)
            assert sum(service.rejections.values()) == len(rejected)

        code, body = self._post(base, "/finish", {})
        assert code == 200
        metrics = state.service.sim.metrics
        # Every submission landed in exactly one terminal bucket.
        assert metrics.num_requests == len(posts)
        metrics.check_balance()
