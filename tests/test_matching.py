"""Tests for passenger-taxi matching (candidate search + Algorithm 1)."""

import pytest

from repro.config import SystemConfig
from repro.core.matching import Matcher, request_vector, taxi_vector, taxi_vector_with
from repro.core.mobility_cluster import MobilityClusterIndex
from repro.core.partition_filter import PartitionFilter
from repro.core.routing import BasicRouter
from repro.fleet.schedule import dropoff, pickup
from repro.fleet.taxi import Taxi, build_route
from repro.index.partition_index import PartitionTaxiIndex
from repro.network.landmarks import LandmarkGraph
from tests.conftest import make_request


@pytest.fixture()
def setup(tiny_net, tiny_engine):
    """A matcher over the tiny grid partitioned by rows, plus helpers."""
    lg = LandmarkGraph(tiny_net, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], tiny_engine)
    config = SystemConfig(search_range_m=500.0, num_partitions=3)
    pindex = PartitionTaxiIndex(3)
    cindex = MobilityClusterIndex(lam=config.lam)
    router = BasicRouter(tiny_net, tiny_engine, PartitionFilter(lg))
    matcher = Matcher(tiny_net, tiny_engine, lg, pindex, cindex, config, router)
    return matcher, pindex, cindex, lg


def trip(engine, origin, destination, rho=2.0, rid=0, release=0.0):
    return make_request(
        request_id=rid,
        release_time=release,
        origin=origin,
        destination=destination,
        direct_cost=engine.cost(origin, destination),
        rho=rho,
    )


def idle_taxi(taxi_id, loc, pindex, lg, capacity=3):
    taxi = Taxi(taxi_id=taxi_id, capacity=capacity, loc=loc)
    pindex.place_idle_taxi(taxi_id, lg.partition_of(loc), 0.0)
    return taxi


class TestVectors:
    def test_request_vector(self, tiny_net, tiny_engine):
        r = trip(tiny_engine, 0, 8)
        v = request_vector(tiny_net, r)
        assert v.direction == (200.0, 200.0)

    def test_taxi_vector_none_when_empty(self, tiny_net):
        taxi = Taxi(taxi_id=0, capacity=3, loc=4)
        assert taxi_vector(tiny_net, taxi, 0.0) is None

    def test_taxi_vector_points_at_destination_centroid(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.assign(trip(tiny_engine, 0, 2, rid=1))
        taxi.assign(trip(tiny_engine, 0, 6, rid=2))
        v = taxi_vector(tiny_net, taxi, 0.0)
        # centroid of (200,0) and (0,200) is (100,100); origin (0,0)
        assert v.direction == (100.0, 100.0)

    def test_taxi_vector_with_includes_new_request(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = trip(tiny_engine, 0, 8, rid=5)
        v = taxi_vector_with(tiny_net, taxi, r, 0.0)
        assert v.direction == (200.0, 200.0)


class TestCandidateSearch:
    def test_idle_taxi_in_disc_is_candidate(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        fleet = {0: idle_taxi(0, 0, pindex, lg)}
        r = trip(tiny_engine, 1, 7)
        assert [t.taxi_id for t in matcher.candidate_taxis(r, fleet, 0.0)] == [0]

    def test_full_taxi_filtered(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        taxi = idle_taxi(0, 0, pindex, lg, capacity=1)
        taxi.assign(trip(tiny_engine, 0, 2, rid=9))
        fleet = {0: taxi}
        r = trip(tiny_engine, 1, 7)
        assert matcher.candidate_taxis(r, fleet, 0.0) == []

    def test_unreachable_taxi_filtered(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        fleet = {0: idle_taxi(0, 8, pindex, lg)}
        # rho barely above 1: nobody far away can make the pick-up.
        r = trip(tiny_engine, 0, 2, rho=1.01)
        assert matcher.candidate_taxis(r, fleet, 0.0) == []

    def test_busy_taxi_needs_alignment(self, setup, tiny_engine, tiny_net):
        matcher, pindex, cindex, lg = setup
        # Busy taxi heading east along the top row.
        taxi = Taxi(taxi_id=0, capacity=3, loc=6)
        r_old = trip(tiny_engine, 6, 8, rid=50)
        stops = [pickup(r_old), dropoff(r_old)]
        route = build_route(6, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.assign(r_old)
        taxi.set_plan(stops, route)
        pindex.update_taxi_from_route(0, route.nodes, route.times, lg.partition_of, 0.0)
        cindex.update_taxi(0, taxi_vector(tiny_net, taxi, 0.0))
        fleet = {0: taxi}

        east = trip(tiny_engine, 6, 8, rid=1)
        west = trip(tiny_engine, 8, 6, rid=2)
        assert [t.taxi_id for t in matcher.candidate_taxis(east, fleet, 0.0)] == [0]
        assert matcher.candidate_taxis(west, fleet, 0.0) == []


class TestMatch:
    def test_single_idle_taxi_matched(self, setup, tiny_engine, tiny_net):
        matcher, pindex, _cindex, lg = setup
        fleet = {0: idle_taxi(0, 0, pindex, lg)}
        r = trip(tiny_engine, 1, 7)
        result = matcher.match(r, fleet, 0.0)
        assert result is not None
        assert result.taxi_id == 0
        assert result.num_candidates == 1
        # Route serves pickup then dropoff.
        assert [s.kind.value for s in result.stops] == ["pickup", "dropoff"]
        assert tiny_net.is_path(list(result.route.nodes))

    def test_picks_minimum_detour_taxi(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        near = idle_taxi(0, 1, pindex, lg)
        far = idle_taxi(1, 8, pindex, lg)
        fleet = {0: near, 1: far}
        r = trip(tiny_engine, 1, 7)
        result = matcher.match(r, fleet, 0.0)
        assert result.taxi_id == 0  # zero deadhead wins

    def test_no_candidates_returns_none(self, setup, tiny_engine):
        matcher, _pindex, _cindex, _lg = setup
        r = trip(tiny_engine, 1, 7)
        assert matcher.match(r, {}, 0.0) is None

    def test_detour_cost_reported(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        fleet = {0: idle_taxi(0, 1, pindex, lg)}
        r = trip(tiny_engine, 1, 7)
        result = matcher.match(r, fleet, 0.0)
        assert result.detour_cost == pytest.approx(tiny_engine.cost(1, 7))

    def test_shared_match_inserts_into_schedule(self, setup, tiny_engine, tiny_net):
        matcher, pindex, cindex, lg = setup
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r_old = trip(tiny_engine, 0, 8, rid=50, rho=2.5)
        stops = [pickup(r_old), dropoff(r_old)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.assign(r_old)
        taxi.set_plan(stops, route)
        pindex.update_taxi_from_route(0, route.nodes, route.times, lg.partition_of, 0.0)
        cindex.update_taxi(0, taxi_vector(tiny_net, taxi, 0.0))
        fleet = {0: taxi}

        # New rider along the same diagonal.
        r = trip(tiny_engine, 4, 8, rid=1, rho=2.5)
        result = matcher.match(r, fleet, 0.0)
        assert result is not None
        assert len(result.stops) == 4

    def test_insertion_for_taxi_offline_path(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        taxi = idle_taxi(0, 1, pindex, lg)
        r = trip(tiny_engine, 1, 7)
        result = matcher.insertion_for_taxi(taxi, r, 0.0)
        assert result is not None
        assert result.num_candidates == 1

    def test_insertion_for_full_taxi_is_none(self, setup, tiny_engine):
        matcher, pindex, _cindex, lg = setup
        taxi = idle_taxi(0, 1, pindex, lg, capacity=1)
        taxi.assign(trip(tiny_engine, 1, 5, rid=9))
        r = trip(tiny_engine, 1, 7)
        assert matcher.insertion_for_taxi(taxi, r, 0.0) is None


class InflatingRouter(BasicRouter):
    """Test double: routes planned from ``slow_node`` get ``penalty``
    seconds of extra travel time, modelling a router (probabilistic, or
    a lazy engine with partition-filter detours) whose concrete routes
    are worse than their shortest-path estimates."""

    def __init__(self, *args, slow_node: int, penalty: float, **kwargs):
        super().__init__(*args, **kwargs)
        self.slow_node = slow_node
        self.penalty = penalty
        self.calls = 0

    def route_for_schedule(self, start_node, start_time, stops, taxi_vector=None):
        self.calls += 1
        route = super().route_for_schedule(start_node, start_time, stops)
        if start_node != self.slow_node:
            return route
        from repro.fleet.taxi import TaxiRoute

        times = [route.times[0]] + [t + self.penalty for t in route.times[1:]]
        return TaxiRoute(
            nodes=route.nodes, times=times, stop_positions=route.stop_positions
        )


def build_matcher(tiny_net, tiny_engine, router, **config_kwargs):
    """A matcher over the row-partitioned tiny grid with a given router."""
    lg = LandmarkGraph(tiny_net, [[0, 1, 2], [3, 4, 5], [6, 7, 8]], tiny_engine)
    config = SystemConfig(search_range_m=500.0, num_partitions=3, **config_kwargs)
    pindex = PartitionTaxiIndex(3)
    matcher = Matcher(
        tiny_net,
        tiny_engine,
        lg,
        pindex,
        MobilityClusterIndex(lam=config.lam),
        config,
        router,
    )
    return matcher, pindex, lg


class TestWinnerByActualDetour:
    """Regression: ``match`` must pick the minimum *actual* planned-route
    detour, not the first candidate that survives route planning."""

    def test_worse_estimate_wins_on_actual_detour(self, tiny_net, tiny_engine):
        router = InflatingRouter(
            tiny_net, tiny_engine, None, slow_node=1, penalty=300.0
        )
        matcher, pindex, lg = build_matcher(tiny_net, tiny_engine, router)
        # Taxi 0 sits on the pick-up vertex: best estimated detour, but
        # its planned route is inflated by 300 s.  Taxi 1 is one hop
        # away with an exact route.
        on_origin = idle_taxi(0, 1, pindex, lg)
        one_hop = idle_taxi(1, 2, pindex, lg)
        fleet = {0: on_origin, 1: one_hop}
        r = trip(tiny_engine, 1, 7, rho=3.0)
        result = matcher.match(r, fleet, 0.0)
        assert result is not None
        # First-survivor selection would return taxi 0 here.
        assert result.taxi_id == 1
        assert result.detour_cost == pytest.approx(
            tiny_engine.cost(2, 1) + tiny_engine.cost(1, 7)
        )
        assert router.calls == 2  # both candidates were actually planned

    def test_early_exit_plans_one_route_when_estimates_are_exact(
        self, tiny_net, tiny_engine
    ):
        # With exact routes (full-APSP engine, no inflation) the first
        # candidate's actual detour equals its estimate, so no later
        # estimate can beat it and planning stops after one route.
        router = InflatingRouter(
            tiny_net, tiny_engine, None, slow_node=-1, penalty=0.0
        )
        matcher, pindex, lg = build_matcher(tiny_net, tiny_engine, router)
        fleet = {0: idle_taxi(0, 1, pindex, lg), 1: idle_taxi(1, 8, pindex, lg)}
        r = trip(tiny_engine, 1, 7, rho=3.0)
        result = matcher.match(r, fleet, 0.0)
        assert result.taxi_id == 0
        assert router.calls == 1

    def test_planning_cutoff_bounds_routes_planned(self, tiny_net, tiny_engine):
        # Every candidate's route is inflated, so the estimate-based
        # early exit never triggers; the cutoff must stop planning.
        class SlowEverywhere(InflatingRouter):
            def route_for_schedule(self, start_node, start_time, stops,
                                   taxi_vector=None):
                self.slow_node = start_node
                return super().route_for_schedule(start_node, start_time, stops)

        slow = SlowEverywhere(tiny_net, tiny_engine, None, slow_node=-2,
                              penalty=500.0)
        matcher, pindex, lg = build_matcher(
            tiny_net, tiny_engine, slow, match_planning_cutoff=2
        )
        fleet = {
            0: idle_taxi(0, 1, pindex, lg),
            1: idle_taxi(1, 2, pindex, lg),
            2: idle_taxi(2, 4, pindex, lg),
            3: idle_taxi(3, 0, pindex, lg),
        }
        r = trip(tiny_engine, 1, 7, rho=3.0)
        result = matcher.match(r, fleet, 0.0)
        assert result is not None
        # Inflation keeps the estimate-based exit from firing (every
        # estimate beats every inflated actual), so the cutoff is what
        # stops planning: exactly 2 routes get planned.
        assert slow.calls == 2

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(match_planning_cutoff=0)


class TestMatchObservability:
    def test_match_reports_stages_and_counters(self, tiny_net, tiny_engine):
        from repro.obs import Instrumentation

        router = BasicRouter(tiny_net, tiny_engine, None)
        matcher, pindex, lg = build_matcher(tiny_net, tiny_engine, router)
        obs = Instrumentation()
        matcher.instrument(obs)
        router.instrument(obs)
        fleet = {0: idle_taxi(0, 1, pindex, lg), 1: idle_taxi(1, 8, pindex, lg)}
        r = trip(tiny_engine, 1, 7, rho=3.0)
        assert matcher.match(r, fleet, 0.0) is not None
        for stage in ("match.candidates", "match.insertion", "match.planning",
                      "route.basic"):
            assert obs.stages[stage].count >= 1
        assert obs.counters["match.candidates_found"] == 2
        assert obs.counters["match.insertions_evaluated"] >= 2
        assert obs.counters["match.routes_planned"] == 1
