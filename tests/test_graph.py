"""Unit tests for the road-network graph."""

import numpy as np
import pytest

from repro.network.graph import DEFAULT_SPEED_MPS, RoadNetwork, RoadNetworkError


def line_network(n=4, spacing=100.0, speed=DEFAULT_SPEED_MPS):
    """0 - 1 - 2 - ... - (n-1), bidirectional."""
    xy = [(i * spacing, 0.0) for i in range(n)]
    edges = []
    for i in range(n - 1):
        edges += [(i, i + 1), (i + 1, i)]
    return RoadNetwork(xy, edges, speed_mps=speed)


class TestConstruction:
    def test_basic_counts(self, tiny_net):
        assert tiny_net.num_vertices == 9
        assert tiny_net.num_edges == 24  # 12 undirected grid edges, both ways

    def test_empty_vertices_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork(np.empty((0, 2)), [])

    def test_bad_shape_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork(np.zeros((3, 3)), [])

    def test_self_loop_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork([(0, 0), (1, 1)], [(0, 0)])

    def test_unknown_vertex_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork([(0, 0), (1, 1)], [(0, 5)])

    def test_negative_length_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork([(0, 0), (1, 1)], [(0, 1, -2.0)])

    def test_negative_speed_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork([(0, 0), (1, 1)], [(0, 1)], speed_mps=-1.0)

    def test_parallel_edges_keep_cheapest(self):
        net = RoadNetwork([(0, 0), (100, 0)], [(0, 1, 500.0), (0, 1, 120.0)])
        assert net.num_edges == 1
        assert net.edge_length(0, 1) == 120.0

    def test_default_length_is_euclidean(self):
        net = RoadNetwork([(0, 0), (30, 40)], [(0, 1)])
        assert net.edge_length(0, 1) == pytest.approx(50.0)

    def test_explicit_length_overrides(self):
        net = RoadNetwork([(0, 0), (30, 40)], [(0, 1, 75.0)])
        assert net.edge_length(0, 1) == 75.0

    def test_bad_edge_arity_rejected(self):
        with pytest.raises(RoadNetworkError):
            RoadNetwork([(0, 0), (1, 1)], [(0, 1, 1.0, 2.0)])


class TestAccessors:
    def test_neighbors(self, tiny_net):
        # Centre vertex 4 connects to 1, 3, 5, 7.
        assert sorted(v for v, _l in tiny_net.neighbors(4)) == [1, 3, 5, 7]

    def test_in_neighbors_symmetric_grid(self, tiny_net):
        assert sorted(v for v, _l in tiny_net.in_neighbors(4)) == [1, 3, 5, 7]

    def test_out_degree_corner(self, tiny_net):
        assert tiny_net.out_degree(0) == 2

    def test_has_edge(self, tiny_net):
        assert tiny_net.has_edge(0, 1)
        assert not tiny_net.has_edge(0, 8)

    def test_edge_length_missing_raises(self, tiny_net):
        with pytest.raises(RoadNetworkError):
            tiny_net.edge_length(0, 8)

    def test_edges_iterates_all(self, tiny_net):
        assert sum(1 for _ in tiny_net.edges()) == tiny_net.num_edges

    def test_xy_read_only(self, tiny_net):
        with pytest.raises(ValueError):
            tiny_net.xy[0, 0] = 99.0

    def test_point(self, tiny_net):
        p = tiny_net.point(4)
        assert (p.x, p.y) == (100.0, 100.0)

    def test_nearest_vertex(self, tiny_net):
        assert tiny_net.nearest_vertex(95.0, 105.0) == 4
        assert tiny_net.nearest_vertex(-50.0, -50.0) == 0


class TestConversions:
    def test_edge_cost_uses_speed(self):
        net = line_network(speed=10.0)
        assert net.edge_cost(0, 1) == pytest.approx(10.0)  # 100 m at 10 m/s

    def test_seconds_meters_round_trip(self, tiny_net):
        assert tiny_net.seconds_to_meters(tiny_net.meters_to_seconds(123.0)) == pytest.approx(123.0)

    def test_straight_line(self, tiny_net):
        assert tiny_net.straight_line_m(0, 8) == pytest.approx(200.0 * np.sqrt(2))

    def test_path_length(self, tiny_net):
        assert tiny_net.path_length_m([0, 1, 2, 5]) == pytest.approx(300.0)

    def test_path_cost(self):
        net = line_network(speed=20.0)
        assert net.path_cost_s([0, 1, 2]) == pytest.approx(10.0)

    def test_path_length_invalid_hop_raises(self, tiny_net):
        with pytest.raises(RoadNetworkError):
            tiny_net.path_length_m([0, 8])

    def test_is_path(self, tiny_net):
        assert tiny_net.is_path([0, 1, 4, 7, 8])
        assert not tiny_net.is_path([0, 4])

    def test_single_vertex_is_path(self, tiny_net):
        assert tiny_net.is_path([3])
        assert tiny_net.path_length_m([3]) == 0.0


class TestCsr:
    def test_shape_and_cache(self, tiny_net):
        m1 = tiny_net.to_csr()
        assert m1.shape == (9, 9)
        assert tiny_net.to_csr() is m1

    def test_zero_length_edge_survives(self):
        net = RoadNetwork([(0, 0), (0, 0.0001)], [(0, 1, 0.0)])
        mat = net.to_csr()
        assert mat[0, 1] > 0  # nudged, not dropped
