"""Tests for the post-hoc run analysis."""

import pytest

from repro.experiments.analysis import (
    FleetProfile,
    fleet_profile,
    run_report,
    sharing_profile,
    waiting_by_trip_length,
)
from repro.fleet.taxi import FleetLog
from repro.sim.engine import Simulator
from tests.conftest import make_request


def record_trip(log, rid, taxi_id, release, pickup, dropoff, direct=300.0):
    r = make_request(request_id=rid, release_time=release, direct_cost=direct, rho=3.0)
    log.record_assignment(r, taxi_id, release)
    log.record_pickup(r, pickup)
    log.record_dropoff(r, dropoff)
    return r


class TestSharingProfile:
    def test_disjoint_trips_are_solo(self):
        log = FleetLog()
        record_trip(log, 1, 0, 0.0, 10.0, 100.0)
        record_trip(log, 2, 0, 200.0, 210.0, 300.0)
        profile = sharing_profile(log)
        assert profile.solo_trips == 2
        assert profile.shared_trips == 0
        assert profile.shared_fraction == 0.0

    def test_overlapping_trips_are_shared(self):
        log = FleetLog()
        record_trip(log, 1, 0, 0.0, 10.0, 200.0)
        record_trip(log, 2, 0, 0.0, 100.0, 300.0)
        profile = sharing_profile(log)
        assert profile.shared_trips == 2
        assert profile.avg_corider_time_s == pytest.approx(100.0)

    def test_different_taxis_never_share(self):
        log = FleetLog()
        record_trip(log, 1, 0, 0.0, 10.0, 200.0)
        record_trip(log, 2, 1, 0.0, 10.0, 200.0)
        assert sharing_profile(log).shared_trips == 0

    def test_empty_log(self):
        profile = sharing_profile(FleetLog())
        assert profile.solo_trips == 0
        assert profile.shared_fraction == 0.0


class TestWaitingBuckets:
    def test_bucket_labels(self):
        log = FleetLog()
        record_trip(log, 1, 0, 0.0, 60.0, 200.0, direct=120.0)   # 0-5 min trip
        record_trip(log, 2, 0, 300.0, 420.0, 1400.0, direct=950.0)  # 15+ min trip
        buckets = waiting_by_trip_length(log)
        means = buckets.means_min()
        assert "0-5 min" in means
        assert means["0-5 min"] == pytest.approx(1.0)
        assert any("inf" in k for k in means)


class TestFleetProfile:
    @pytest.fixture(scope="class")
    def finished_sim(self, test_scenario):
        sim = Simulator(
            test_scenario.make_scheme("mt-share"),
            test_scenario.make_fleet(12, seed=5),
            test_scenario.requests(),
        )
        sim.run()
        return sim

    def test_profile_consistency(self, finished_sim):
        profile = fleet_profile(finished_sim)
        assert isinstance(profile, FleetProfile)
        assert profile.num_taxis == 12
        assert 0 < profile.taxis_used <= 12
        assert profile.taxis_unused == 12 - profile.taxis_used
        assert 0.0 <= profile.busy_fraction_mean <= 1.0
        assert profile.trips_per_taxi_max >= profile.trips_per_taxi_mean

    def test_sharing_profile_on_real_run(self, finished_sim):
        profile = sharing_profile(finished_sim.log)
        assert profile.solo_trips + profile.shared_trips == finished_sim.metrics.completed

    def test_run_report_renders(self, finished_sim):
        report = run_report(finished_sim)
        assert "run report" in report
        assert "served" in report
        assert "fleet" in report
