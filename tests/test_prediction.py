"""Tests for the hour-aware demand predictor."""

import numpy as np
import pytest

from repro.demand.dataset import TripDataset
from repro.demand.prediction import DemandPredictor


def dataset(times, origins):
    m = len(times)
    return TripDataset(
        release_times=np.asarray(times, dtype=float),
        origins=np.asarray(origins),
        destinations=np.asarray([0] * m),
        taxi_ids=np.asarray([0] * m),
    )


class TestFit:
    def test_counts_by_hour_and_partition(self):
        labels = np.array([0, 0, 1])
        # Two trips from partition 0 at hour 8, one from partition 1 at hour 9,
        # all on day 0.
        ds = dataset([8 * 3600.0, 8 * 3600.0 + 10, 9 * 3600.0], [0, 1, 2])
        pred = DemandPredictor.fit(ds, labels, 2)
        assert pred.rate(0, 8) == pytest.approx(2.0)
        assert pred.rate(1, 9) == pytest.approx(1.0)
        assert pred.rate(0, 9) == 0.0

    def test_averages_over_days(self):
        labels = np.array([0])
        ds = dataset([8 * 3600.0, 86400.0 + 8 * 3600.0], [0, 0])  # two days
        pred = DemandPredictor.fit(ds, labels, 1)
        assert pred.rate(0, 8) == pytest.approx(1.0)

    def test_empty_history(self):
        pred = DemandPredictor.fit(dataset([], []), np.array([0, 1]), 2)
        assert pred.rate(0, 8) == 0.0

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            DemandPredictor(np.zeros((3, 23)))
        with pytest.raises(ValueError):
            DemandPredictor(-np.ones((2, 24)))


class TestQueries:
    @pytest.fixture()
    def pred(self):
        rates = np.zeros((3, 24))
        rates[0, 8] = 10.0
        rates[1, 8] = 5.0
        rates[2, 20] = 7.0
        return DemandPredictor(rates)

    def test_hour_wraps(self, pred):
        assert pred.rate(0, 32) == pred.rate(0, 8)

    def test_rate_at_time(self, pred):
        assert pred.rate_at_time(0, 8 * 3600.0 + 5.0) == 10.0
        assert pred.rate_at_time(0, (24 + 8) * 3600.0) == 10.0

    def test_hot_partitions(self, pred):
        assert pred.hot_partitions(8, top=2) == [0, 1]
        assert pred.hot_partitions(20) == [2]
        assert pred.hot_partitions(3) == []

    def test_hot_partitions_tie_break_is_partition_id(self):
        # Tie-heavy regression: sparse histories leave many partitions
        # with *identical* rates, and NumPy's default introsort orders
        # equal keys by pivot luck (which can change across NumPy
        # versions).  The stable sort pins equal-rate partitions to
        # ascending id, so the ranking is reproducible everywhere.
        rates = np.zeros((64, 24))
        rates[:, 8] = 3.0  # every partition ties
        rates[41, 8] = 9.0  # one clear winner
        pred = DemandPredictor(rates)
        ranked = pred.hot_partitions(8, top=64)
        assert ranked[0] == 41
        assert ranked[1:] == sorted(set(range(64)) - {41})

    def test_share(self, pred):
        assert pred.share(0, 8) == pytest.approx(10.0 / 15.0)
        assert pred.share(2, 8) == 0.0
        assert pred.share(0, 3) == 0.0  # no demand at all that hour

    def test_memory(self, pred):
        assert pred.memory_bytes() > 0


class TestScenarioIntegration:
    def test_predictor_fits_scenario_history(self, test_scenario):
        part = test_scenario.partitioning("bipartite")
        pred = test_scenario.demand_predictor(part)
        assert pred.num_partitions == part.num_partitions
        # Morning hours carry demand in the synthetic workday trace.
        total_morning = sum(pred.rate(z, 8) for z in range(pred.num_partitions))
        total_night = sum(pred.rate(z, 3) for z in range(pred.num_partitions))
        assert total_morning > total_night

    def test_predictor_memoised(self, test_scenario):
        part = test_scenario.partitioning("bipartite")
        assert test_scenario.demand_predictor(part) is test_scenario.demand_predictor(part)

    def test_opt_in_flag_attaches_predictor(self, test_nonpeak_scenario):
        cfg = test_nonpeak_scenario.default_config(use_demand_prediction=True)
        scheme = test_nonpeak_scenario.make_scheme("mt-share-pro", config=cfg)
        assert scheme._prob_router.demand_predictor is not None  # noqa: SLF001
        scheme_off = test_nonpeak_scenario.make_scheme("mt-share-pro")
        assert scheme_off._prob_router.demand_predictor is None  # noqa: SLF001
