"""The ``repro lint --deep`` tier: call graph, effects, concurrency, protocol.

Each REP10x checker class gets a true-positive fixture, a suppressed
fixture and a clean fixture, mirroring ``test_repro_lint.py``'s
structure for the per-file codes.  Fixture trees are written under a
``repro/<pkg>/`` layout inside ``tmp_path`` so module-qualified names
resolve the same way they do for the shipped tree.  The final tests
gate the shipped tree itself: the deep lint must run clean (no deep
baseline) and fast (< 10 s), and the effects report must prove every
dispatch-path contract root pure.
"""

from __future__ import annotations

import ast
import textwrap
import time
from pathlib import Path

from repro.analysis import lint_paths, main
from repro.analysis.callgraph import build_call_graph, module_name_for
from repro.analysis.effects import infer_effects

ROOT = Path(__file__).resolve().parents[1]


def deep_lint(tmp_path, files: dict[str, str]):
    """Write ``files`` (relpath -> source) and deep-lint the tree."""
    for relfile, source in files.items():
        target = tmp_path / relfile
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], deep=True)


def new_codes(result) -> list[str]:
    return sorted(f.code for f in result.new)


def graph_of(files: dict[str, str], tmp_path):
    for relfile, source in files.items():
        target = tmp_path / relfile
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    parsed = [
        (path.relative_to(tmp_path).as_posix(), ast.parse(path.read_text()))
        for path in sorted(tmp_path.rglob("*.py"))
    ]
    return build_call_graph(parsed)


# ----------------------------------------------------------------------
# call graph construction
# ----------------------------------------------------------------------
def test_module_name_anchors_at_last_repro_segment():
    assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_for("repro/core/__init__.py") == "repro.core"
    assert module_name_for("/tmp/x/repro/a/b.py") == "repro.a.b"


def test_callgraph_resolves_local_imported_and_method_calls(tmp_path):
    graph = graph_of(
        {
            "repro/util.py": """
            def leaf():
                return 1

            def mid():
                return leaf()
            """,
            "repro/app.py": """
            from .util import mid

            class Engine:
                def helper(self):
                    return mid()

                def run(self):
                    return self.helper()
            """,
        },
        tmp_path,
    )
    reachable = graph.reachable(["repro.app.Engine.run"])
    assert "repro.app.Engine.helper" in reachable
    assert "repro.util.mid" in reachable
    assert "repro.util.leaf" in reachable


def test_callgraph_virtual_dispatch_reaches_subclass_overrides(tmp_path):
    graph = graph_of(
        {
            "repro/base.py": """
            class Scheme:
                def run(self):
                    return self.match()

                def match(self):
                    raise NotImplementedError
            """,
            "repro/impl.py": """
            from .base import Scheme

            class Greedy(Scheme):
                def match(self):
                    return 42
            """,
        },
        tmp_path,
    )
    reachable = graph.reachable(["repro.base.Scheme.run"])
    assert "repro.impl.Greedy.match" in reachable


def test_callgraph_event_subscription_indirection(tmp_path):
    graph = graph_of(
        {
            "repro/app.py": """
            TICK = "tick"

            class Sim:
                def __init__(self, kernel):
                    self._kernel = kernel
                    self._kernel.subscribe(TICK, self._on_tick)

                def _on_tick(self, event):
                    return event

                def start(self):
                    self._kernel.schedule(0.0, TICK)
            """,
        },
        tmp_path,
    )
    assert "repro.app.Sim._on_tick" in graph.reachable(["repro.app.Sim.start"])


def test_callgraph_cha_blocklist_keeps_builtin_methods_opaque(tmp_path):
    graph = graph_of(
        {
            "repro/app.py": """
            class Store:
                def get(self, key):
                    return open(key)

            def lookup(mapping):
                return mapping.get("x")
            """,
        },
        tmp_path,
    )
    # dict.get traffic must not alias onto Store.get.
    assert "repro.app.Store.get" not in graph.reachable(["repro.app.lookup"])


# ----------------------------------------------------------------------
# REP101/REP102: effect contracts
# ----------------------------------------------------------------------
_SIM_WITH_CLOCK = {
    "repro/sim/engine.py": """
    import time
    from .helper import stamp

    class Simulator:
        def _on_request_release(self, event):
            return stamp()
    """,
    "repro/sim/helper.py": """
    import time

    def stamp():
        return time.time()
    """,
}


def test_rep101_true_positive_effect_reaches_boundary(tmp_path):
    result = deep_lint(tmp_path, _SIM_WITH_CLOCK)
    assert "REP101" in new_codes(result)
    [finding] = [f for f in result.new if f.code == "REP101"]
    assert "WALL_CLOCK" in finding.message
    assert "stamp" in finding.message  # the witness chain names the leaf


def test_rep101_seed_suppression_clears_the_contract(tmp_path):
    files = dict(_SIM_WITH_CLOCK)
    files["repro/sim/helper.py"] = """
    import time

    def stamp():
        return time.time()  # repro-lint: disable=REP003 reason=metrics only
    """
    result = deep_lint(tmp_path, files)
    assert "REP101" not in new_codes(result)


def test_rep101_clean_boundary(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/sim/engine.py": """
            class Simulator:
                def _on_request_release(self, event):
                    return self._apply(event)

                def _apply(self, event):
                    return event
            """,
        },
    )
    assert new_codes(result) == []


def test_rep101_scheme_match_contract(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/baselines/base.py": """
            class DispatchScheme:
                pass
            """,
            "repro/core/greedy.py": """
            import random
            from ..baselines.base import DispatchScheme

            class Greedy(DispatchScheme):
                def match_window(self, requests):
                    return random.choice(requests)
            """,
        },
    )
    assert "REP101" in new_codes(result)
    [finding] = [f for f in result.new if f.code == "REP101"]
    assert "UNSEEDED_RNG" in finding.message


def test_rep101_obs_is_exempt_from_seeding(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/obs/timing.py": """
            import time

            def measure():
                return time.perf_counter()
            """,
            "repro/sim/engine.py": """
            from ..obs.timing import measure

            class Simulator:
                def _on_drain_tick(self, event):
                    return measure()
            """,
        },
    )
    assert new_codes(result) == []


def test_rep102_true_positive_impure_fingerprint(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/artifacts/plan.py": """
            class Plan:
                def fingerprint(self):
                    with open("/tmp/x") as fh:
                        return fh.read()
            """,
        },
    )
    assert new_codes(result) == ["REP102"]
    assert "FILESYSTEM" in result.new[0].message


def test_rep102_suppressed_on_the_def_line(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/artifacts/plan.py": """
            class Plan:
                def fingerprint(self):  # repro-lint: disable=REP102 reason=reads its own immutable spec file
                    with open("/tmp/x") as fh:
                        return fh.read()
            """,
        },
    )
    assert new_codes(result) == []
    assert [f.code for f in result.suppressed] == ["REP102"]


def test_rep102_clean_pure_fingerprint(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/artifacts/plan.py": """
            import hashlib

            class Plan:
                def fingerprint(self):
                    return hashlib.sha256(b"spec").hexdigest()
            """,
        },
    )
    assert new_codes(result) == []


def test_global_mutation_seed_ignores_locals_shadowing(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/core/mod.py": """
            CACHE = {}

            def fingerprint():
                CACHE[1] = 2
                return 1

            def clean_fingerprint_helper():
                CACHE = {}
                CACHE[1] = 2
                return CACHE
            """,
        },
    )
    # Only the module-global mutation counts; the local shadow is pure.
    assert new_codes(result) == ["REP102"]
    assert "GLOBAL_MUTATION" in result.new[0].message


# ----------------------------------------------------------------------
# REP103/REP104: concurrency discipline
# ----------------------------------------------------------------------
_HANDLER_PREFIX = """
    from http.server import BaseHTTPRequestHandler

    def make_handler(state):
        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
"""


def test_rep103_true_positive_unlocked_mutation(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/service/http.py": _HANDLER_PREFIX
            + """
                state.buffer.append(1)
                with state.lock:
                    state.count = state.count + 1
        return Handler
    """,
        },
    )
    assert new_codes(result) == ["REP103"]
    assert "without holding state.lock" in result.new[0].message


def test_rep103_suppressed_with_reason(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/service/http.py": _HANDLER_PREFIX
            + """
                state.buffer.append(1)  # repro-lint: disable=REP103 reason=append on deque is atomic under the GIL and order is re-sorted at drain
                with state.lock:
                    state.count = state.count + 1
        return Handler
    """,
        },
    )
    assert new_codes(result) == []
    assert [f.code for f in result.suppressed] == ["REP103"]


def test_rep103_clean_when_lock_held(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/service/http.py": _HANDLER_PREFIX
            + """
                with state.lock:
                    state.buffer.append(1)
                    state.count = state.count + 1
        return Handler
    """,
        },
    )
    assert new_codes(result) == []


def test_rep103_only_fires_in_thread_entry_code(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/service/http.py": """
            import threading

            class State:
                def __init__(self):
                    self.lock = threading.Lock()

            def drain(state):
                with state.lock:
                    pass

            def main_thread_setup(state):
                state.buffer = []
            """,
        },
    )
    assert new_codes(result) == []


def test_rep104_true_positive_lambda_and_nested(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/experiments/runner.py": """
            from concurrent.futures import ProcessPoolExecutor

            def run_many(items):
                def worker(item):
                    return item * 2
                with ProcessPoolExecutor() as pool:
                    a = list(pool.map(lambda x: x, items))
                    b = list(pool.map(worker, items))
                return a + b
            """,
        },
    )
    assert new_codes(result) == ["REP104", "REP104"]


def test_rep104_suppressed_with_reason(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/experiments/runner.py": """
            from concurrent.futures import ProcessPoolExecutor

            def run_many(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda x: x, items))  # repro-lint: disable=REP104 reason=fork context on this dev-only path pickles closures fine
            """,
        },
    )
    assert new_codes(result) == []
    assert [f.code for f in result.suppressed] == ["REP104"]


def test_rep104_clean_module_level_worker(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/experiments/runner.py": """
            from concurrent.futures import ProcessPoolExecutor

            def _worker(item):
                return item * 2

            def run_many(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_worker, items))
            """,
        },
    )
    assert new_codes(result) == []


# ----------------------------------------------------------------------
# REP105: the event protocol
# ----------------------------------------------------------------------
_EVENTS_MODULE = """
    TICK = "tick"
    FLUSH = "flush"

    class EventSpec:
        def __init__(self, kind, priority, description):
            pass

    EVENT_TABLE = {
        TICK: EventSpec(TICK, priority=0, description="tick"),
        FLUSH: EventSpec(FLUSH, priority=1, description="flush"),
    }

    def priority_of(kind):
        return EVENT_TABLE[kind].priority
"""

_SUBSCRIBERS = """
    from .events import TICK, FLUSH

    class Sim:
        def __init__(self, kernel):
            self._kernel = kernel
            self._kernel.subscribe(TICK, self._on_tick)
            self._kernel.subscribe(FLUSH, self._on_flush)

        def _on_tick(self, event):
            pass

        def _on_flush(self, event):
            pass
"""


def _protocol_tree(schedule_body: str) -> dict[str, str]:
    return {
        "repro/sim/events.py": _EVENTS_MODULE,
        "repro/sim/engine.py": _SUBSCRIBERS + schedule_body,
    }


def test_rep105_true_positive_string_literal_kind(tmp_path):
    result = deep_lint(
        tmp_path,
        _protocol_tree(
            """
        def start(self):
            self._kernel.schedule(0.0, "tick")
    """
        ),
    )
    assert new_codes(result) == ["REP105"]
    assert "string literal" in result.new[0].message


def test_rep105_true_positive_priority_disagrees_with_table(tmp_path):
    result = deep_lint(
        tmp_path,
        _protocol_tree(
            """
        def start(self):
            self._kernel.schedule(0.0, FLUSH)
    """
        ),
    )
    assert new_codes(result) == ["REP105"]
    assert "priority omitted (= 0)" in result.new[0].message
    assert "declares 1" in result.new[0].message


def test_rep105_true_positive_unknown_kind(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/sim/events.py": _EVENTS_MODULE,
            "repro/sim/engine.py": """
            from .events import TICK, FLUSH

            ROGUE = "rogue"

            class Sim:
                def __init__(self, kernel):
                    self._kernel = kernel
                    self._kernel.subscribe(TICK, self._on_tick)
                    self._kernel.subscribe(FLUSH, self._on_flush)

                def _on_tick(self, event):
                    pass

                def _on_flush(self, event):
                    pass

                def start(self):
                    self._kernel.schedule(0.0, ROGUE)
            """,
        },
    )
    codes = new_codes(result)
    assert "REP105" in codes
    assert any("not declared in EVENT_TABLE" in f.message for f in result.new)


def test_rep105_clean_priority_of_and_literal_match(tmp_path):
    result = deep_lint(
        tmp_path,
        _protocol_tree(
            """
        from .events import priority_of

        def start(self):
            self._kernel.schedule(0.0, TICK)
            self._kernel.schedule(0.0, FLUSH, priority=priority_of(FLUSH))
            self._kernel.schedule(0.0, FLUSH, None, 1)
    """
        ),
    )
    assert new_codes(result) == []


def test_rep105_unsubscribed_kind_flagged_on_the_table_row(tmp_path):
    result = deep_lint(
        tmp_path,
        {
            "repro/sim/events.py": _EVENTS_MODULE,
            "repro/sim/engine.py": """
            from .events import TICK

            class Sim:
                def __init__(self, kernel):
                    self._kernel = kernel
                    self._kernel.subscribe(TICK, self._on_tick)

                def _on_tick(self, event):
                    pass
            """,
        },
    )
    [finding] = result.new
    assert finding.code == "REP105"
    assert "'flush'" in finding.message and "no subscriber" in finding.message
    assert finding.path.endswith("repro/sim/events.py")


def test_rep105_redefinition_drift_outside_the_table(tmp_path):
    result = deep_lint(
        tmp_path,
        _protocol_tree(
            """
        def start(self):
            self._kernel.schedule(0.0, TICK)
    """
        )
        | {
            "repro/service/other.py": """
            TICK = "tick"
            """
        },
    )
    assert new_codes(result) == ["REP105"]
    assert "redefined outside the central table" in result.new[0].message


# ----------------------------------------------------------------------
# the shipped tree: clean, fast, and provably pure where it must be
# ----------------------------------------------------------------------
def test_shipped_tree_deep_lints_clean_with_empty_baseline(monkeypatch):
    monkeypatch.chdir(ROOT)
    result = lint_paths(["src"], deep=True, baseline_path=None)
    assert result.new == [], "\n".join(f.render() for f in result.new)


def test_shipped_tree_deep_lint_completes_quickly(monkeypatch):
    monkeypatch.chdir(ROOT)
    started = time.perf_counter()
    lint_paths(["src"], deep=True, baseline_path=None)
    assert time.perf_counter() - started < 10.0


def test_shipped_dispatch_roots_are_pure(monkeypatch):
    # The "no true positives remain" proof the ISSUE asks for: every
    # REP101 contract root and every fingerprint() in the shipped tree
    # has an empty inferred effect set after documented suppressions.
    monkeypatch.chdir(ROOT)
    from repro.analysis.engine import iter_python_files, parse_suppressions

    parsed, sup = [], {}
    for path in iter_python_files(["src"]):
        rel = path.as_posix()
        source = path.read_text()
        parsed.append((rel, ast.parse(source)))
        sup[rel] = parse_suppressions(source)
    graph = build_call_graph(parsed)
    report = infer_effects(graph, sup)
    roots = report.contract_roots + report.fingerprint_roots
    # The contract roots the ISSUE names must actually be in the graph.
    names = "\n".join(roots)
    assert "repro.sim.engine.Simulator._on_request_release" in names
    assert "repro.sim.engine.Simulator._on_drain_tick" in names
    assert "repro.sim.engine.Simulator._on_window_tick" in names
    assert "repro.core.window.WindowLAP.build_cost_matrix" in names
    assert "fingerprint" in names
    for root in roots:
        assert report.effects_of(root) == [], (root, report.effects_of(root))


def test_effects_report_subcommand(monkeypatch, capsys):
    monkeypatch.chdir(ROOT)
    assert main(["effects", "src"]) == 0
    out = capsys.readouterr().out
    assert "effect contracts" in out
    assert "PURE" in out
    assert "repro.sim.engine.Simulator._on_request_release" in out


def test_list_checkers_includes_deep_catalog(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for code in ("REP101", "REP102", "REP103", "REP104", "REP105"):
        assert code in out
