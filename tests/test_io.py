"""Tests for GAIA-format trace I/O and map matching."""

import numpy as np
import pytest

from repro.demand.dataset import TripDataset
from repro.io.gaia import (
    GAIA_COLUMNS,
    MapMatcher,
    TraceFormatError,
    read_gaia_csv,
    write_gaia_csv,
)


@pytest.fixture()
def sample_dataset(small_net):
    rng = np.random.default_rng(3)
    m = 40
    origins = rng.integers(0, small_net.num_vertices, size=m)
    dests = (origins + 1 + rng.integers(0, small_net.num_vertices - 1, size=m)) % small_net.num_vertices
    return TripDataset(
        release_times=np.sort(rng.uniform(0, 3600, size=m)),
        origins=origins,
        destinations=dests,
        taxi_ids=rng.integers(0, 10, size=m),
    )


class TestMapMatcher:
    def test_exact_vertex(self, tiny_net):
        matcher = MapMatcher(tiny_net)
        x, y = tiny_net.xy[4]
        assert matcher.match_xy(float(x), float(y)) == 4

    def test_nearby_point_snaps(self, tiny_net):
        matcher = MapMatcher(tiny_net, snap_radius_m=60.0)
        assert matcher.match_xy(105.0, 95.0) == 4

    def test_far_point_unmatched(self, tiny_net):
        matcher = MapMatcher(tiny_net, snap_radius_m=100.0)
        assert matcher.match_xy(5000.0, 5000.0) is None

    def test_latlng_round_trip(self, tiny_net):
        from repro.network.geo import xy_to_latlng

        matcher = MapMatcher(tiny_net)
        lat, lng = xy_to_latlng(*map(float, tiny_net.xy[7]))
        assert matcher.match_latlng(lat, lng) == 7

    def test_vectorised(self, tiny_net):
        matcher = MapMatcher(tiny_net, snap_radius_m=60.0)
        pts = np.array([[0.0, 0.0], [9999.0, 9999.0], [200.0, 200.0]])
        assert matcher.match_many_xy(pts).tolist() == [0, -1, 8]

    def test_bad_radius(self, tiny_net):
        with pytest.raises(ValueError):
            MapMatcher(tiny_net, snap_radius_m=0.0)


class TestRoundTrip:
    def test_write_then_read_recovers_trips(self, small_net, sample_dataset, tmp_path):
        path = tmp_path / "trace.csv"
        written = write_gaia_csv(path, sample_dataset, small_net)
        assert written == len(sample_dataset)

        loaded = read_gaia_csv(path, small_net, snap_radius_m=50.0)
        assert len(loaded) == len(sample_dataset)
        assert loaded.origins.tolist() == sample_dataset.origins.tolist()
        assert loaded.destinations.tolist() == sample_dataset.destinations.tolist()
        assert loaded.taxi_ids.tolist() == sample_dataset.taxi_ids.tolist()
        assert np.allclose(loaded.release_times, sample_dataset.release_times, atol=0.1)

    def test_header_written(self, small_net, sample_dataset, tmp_path):
        path = tmp_path / "trace.csv"
        write_gaia_csv(path, sample_dataset, small_net)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(GAIA_COLUMNS)

    def test_loaded_usable_for_mining(self, small_net, small_engine, sample_dataset, tmp_path):
        path = tmp_path / "trace.csv"
        write_gaia_csv(path, sample_dataset, small_net)
        loaded = read_gaia_csv(path, small_net)
        requests = loaded.to_requests(small_engine, rho=1.3)
        assert len(requests) > 0


class TestReadValidation:
    def test_missing_header_rejected(self, small_net, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            read_gaia_csv(path, small_net)

    def test_short_row_rejected(self, small_net, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(",".join(GAIA_COLUMNS) + "\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            read_gaia_csv(path, small_net)

    def test_non_numeric_rejected(self, small_net, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            ",".join(GAIA_COLUMNS) + "\n0,1,notatime,104.0,30.6,104.1,30.7\n"
        )
        with pytest.raises(TraceFormatError):
            read_gaia_csv(path, small_net)

    def test_out_of_area_rows_dropped(self, small_net, tmp_path):
        path = tmp_path / "trace.csv"
        # A single trip from the middle of the ocean.
        path.write_text(
            ",".join(GAIA_COLUMNS) + "\n0,1,0.0,0.0,0.0,0.1,0.1\n"
        )
        loaded = read_gaia_csv(path, small_net)
        assert len(loaded) == 0

    def test_empty_lines_skipped(self, small_net, sample_dataset, tmp_path):
        path = tmp_path / "trace.csv"
        write_gaia_csv(path, sample_dataset, small_net)
        with path.open("a") as handle:
            handle.write("\n\n")
        loaded = read_gaia_csv(path, small_net)
        assert len(loaded) == len(sample_dataset)
