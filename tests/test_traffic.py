"""Tests for the traffic-condition extension."""

import pytest

from repro.network.traffic import (
    TrafficModel,
    chengdu_weekend,
    chengdu_workday,
    free_flow,
)
from repro.sim.scenario import ScenarioSpec, get_scenario


class TestTrafficModel:
    def test_needs_24_factors(self):
        with pytest.raises(ValueError):
            TrafficModel(factors=(1.0,) * 23)

    def test_positive_factors(self):
        bad = [1.0] * 24
        bad[3] = 0.0
        with pytest.raises(ValueError):
            TrafficModel(factors=tuple(bad))

    def test_factor_lookup(self):
        model = chengdu_workday()
        assert model.factor_at_hour(8) == 0.65
        assert model.factor_at_hour(3) == 1.0
        assert model.factor_at_hour(32) == model.factor_at_hour(8)  # wraps

    def test_factor_at_time(self):
        model = chengdu_workday()
        assert model.factor_at_time(8 * 3600.0 + 10.0) == 0.65
        assert model.factor_at_time((24 + 8) * 3600.0) == 0.65

    def test_speed_scaling(self):
        model = chengdu_workday()
        assert model.speed_at_hour(10.0, 8) == pytest.approx(6.5)

    def test_free_flow_identity(self):
        model = free_flow()
        assert all(model.factor_at_hour(h) == 1.0 for h in range(24))

    def test_weekend_has_no_morning_peak(self):
        weekend = chengdu_weekend()
        workday = chengdu_workday()
        assert weekend.factor_at_hour(8) > workday.factor_at_hour(8)

    def test_apply_rescales_costs(self, tiny_net):
        model = chengdu_workday()
        congested = model.apply(tiny_net, hour=8)
        assert congested.num_vertices == tiny_net.num_vertices
        assert congested.num_edges == tiny_net.num_edges
        assert congested.edge_length(0, 1) == pytest.approx(tiny_net.edge_length(0, 1))
        assert congested.edge_cost(0, 1) == pytest.approx(tiny_net.edge_cost(0, 1) / 0.65)


class TestCongestedScenario:
    def test_congestion_validated(self):
        with pytest.raises(ValueError):
            ScenarioSpec(congestion=0.0)

    def test_congested_scenario_slower_trips(self):
        base_kwargs = dict(
            grid_rows=10, grid_cols=10, hourly_requests=120,
            history_days=2, num_partitions=9, seed=2,
        )
        free = get_scenario(ScenarioSpec(**base_kwargs))
        jammed = get_scenario(ScenarioSpec(congestion=0.7, **base_kwargs))
        assert jammed.network.speed_mps == pytest.approx(free.network.speed_mps * 0.7)
        # Same OD pair costs more time under congestion.
        r_free = free.requests()[0]
        assert jammed.engine.cost(r_free.origin, r_free.destination) > free.engine.cost(
            r_free.origin, r_free.destination
        )

    def test_congested_simulation_runs(self):
        from repro.sim.engine import Simulator

        spec = ScenarioSpec(
            grid_rows=10, grid_cols=10, hourly_requests=120,
            history_days=2, num_partitions=9, congestion=0.7, seed=2,
        )
        scenario = get_scenario(spec)
        metrics = Simulator(
            scenario.make_scheme("mt-share"),
            scenario.make_fleet(10),
            scenario.requests(),
        ).run()
        assert metrics.served > 0
