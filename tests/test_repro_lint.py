"""The ``repro lint`` analyzer: per-checker fixtures, suppressions, baseline.

Each checker gets (at least) a true-positive fixture, a suppressed
fixture and a clean fixture.  Fixture files are written under a
``repro/<pkg>/`` directory inside ``tmp_path`` so the path-scoped
checkers (REP001, REP002, REP003, REP004) see the package layout they
key on.  The final tests assert the shipped tree itself lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_CHECKERS, lint_paths, main
from repro.analysis.engine import (
    PARSE_ERROR_CODE,
    parse_suppressions,
    write_baseline,
)

ROOT = Path(__file__).resolve().parents[1]


def lint_source(tmp_path, relfile: str, source: str, baseline_path=None):
    """Write ``source`` at ``tmp_path/relfile`` and lint the tree."""
    target = tmp_path / relfile
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], baseline_path=baseline_path)


def new_codes(result) -> list[str]:
    return [f.code for f in result.new]


# ----------------------------------------------------------------------
# REP001: unordered set iteration
# ----------------------------------------------------------------------
def test_rep001_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        def walk(nodes: set[int]) -> list[int]:
            out = []
            for n in nodes:
                out.append(n)
            return out
        """,
    )
    assert new_codes(result) == ["REP001"]


def test_rep001_suppressed_with_reason(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        def walk(nodes: set[int]) -> list[int]:
            out = []
            for n in nodes:  # repro-lint: disable=REP001 reason=order folded by sum below
                out.append(n)
            return out
        """,
    )
    assert result.new == []
    assert [f.code for f in result.suppressed] == ["REP001"]


def test_rep001_clean_when_sorted(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        def walk(nodes: set[int]) -> list[int]:
            return [n for n in sorted(nodes)]
        """,
    )
    assert result.new == []


def test_rep001_all_str_literal_set_exempt(tmp_path):
    # The checker charter is *non-str* keys: str hashing is randomised
    # too, but sets of literal tags iterate in a stable order within a
    # frozen interpreter run and are endemic in config handling.
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        def kinds() -> list[str]:
            return [k for k in {"peak", "nonpeak"}]
        """,
    )
    assert result.new == []


def test_rep001_applies_to_every_package(tmp_path):
    # PR 9 widened REP001 from a per-directory list to the whole tree:
    # packages that used to be out of scope (experiments/) now count.
    result = lint_source(
        tmp_path,
        "repro/experiments/mod.py",
        """
        def walk(nodes: set[int]) -> list[int]:
            return list(nodes)
        """,
    )
    assert new_codes(result) == ["REP001"]


def test_rep001_cross_module_set_returning_method(tmp_path):
    # A method annotated -> set[int] in one module taints calls to the
    # same name in another module — the PR 3 landmark-adjacency leak.
    (tmp_path / "repro" / "network").mkdir(parents=True)
    (tmp_path / "repro" / "network" / "idx.py").write_text(
        textwrap.dedent(
            """
            class Index:
                def members(self) -> set[int]:
                    return {1, 2}
            """
        )
    )
    (tmp_path / "repro" / "core").mkdir(parents=True)
    (tmp_path / "repro" / "core" / "use.py").write_text(
        textwrap.dedent(
            """
            def consume(index) -> list[int]:
                return [m for m in index.members()]
            """
        )
    )
    result = lint_paths([str(tmp_path)])
    assert new_codes(result) == ["REP001"]
    assert result.new[0].path.endswith("core/use.py")


# ----------------------------------------------------------------------
# REP002: unseeded randomness
# ----------------------------------------------------------------------
def test_rep002_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        import random

        def jitter() -> float:
            return random.random()
        """,
    )
    assert new_codes(result) == ["REP002"]


def test_rep002_seeded_constructors_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        import random
        import numpy as np

        def rngs():
            return random.Random(7), np.random.default_rng(7)
        """,
    )
    assert result.new == []


def test_rep002_demand_generator_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/demand/generator.py",
        """
        import random

        def jitter() -> float:
            return random.random()
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP003: wall clock in simulation code
# ----------------------------------------------------------------------
def test_rep003_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        import time

        def stamp() -> float:
            return time.time()
        """,
    )
    assert new_codes(result) == ["REP003"]


def test_rep003_suppressed_with_reason(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/core/mod.py",
        """
        import time

        def stamp() -> float:
            return time.perf_counter()  # repro-lint: disable=REP003 reason=latency metric only
        """,
    )
    assert result.new == []
    assert [f.code for f in result.suppressed] == ["REP003"]


def test_rep003_obs_package_exempt(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/obs/mod.py",
        """
        import time

        def stamp() -> float:
            return time.time()
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP004: float equality
# ----------------------------------------------------------------------
def test_rep004_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/fleet/mod.py",
        """
        def at_deadline(t: float) -> bool:
            return t == 1.5
        """,
    )
    assert new_codes(result) == ["REP004"]


def test_rep004_zero_and_int_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "repro/fleet/mod.py",
        """
        def checks(t: float, n: int) -> bool:
            return t == 0.0 or n == 3
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP005: mutable default arguments
# ----------------------------------------------------------------------
def test_rep005_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        def collect(x, acc=[]):
            acc.append(x)
            return acc
        """,
    )
    assert new_codes(result) == ["REP005"]


def test_rep005_none_default_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        def collect(x, acc=None):
            acc = [] if acc is None else acc
            acc.append(x)
            return acc
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP006: unordered collections into hashes
# ----------------------------------------------------------------------
def test_rep006_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        import hashlib

        def digest(keys: set[int]) -> str:
            return hashlib.sha256(str(keys).encode()).hexdigest()
        """,
    )
    assert new_codes(result) == ["REP006"]


def test_rep006_sorted_list_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        import hashlib

        def digest(keys: list[int]) -> str:
            return hashlib.sha256(str(sorted(keys)).encode()).hexdigest()
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP007: swallowed exceptions
# ----------------------------------------------------------------------
def test_rep007_true_positive_bare_and_broad(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        def lossy(fn):
            try:
                fn()
            except Exception:
                pass
            try:
                fn()
            except:
                continue_ = 1
                del continue_
        """,
    )
    # The broad-but-pass handler and the bare except both fire.
    assert new_codes(result) == ["REP007", "REP007"]


def test_rep007_specific_exception_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        def lossy(fn):
            try:
                fn()
            except ValueError:
                pass
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# REP008: unsorted directory listings
# ----------------------------------------------------------------------
def test_rep008_true_positive(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        import os

        def names(d: str) -> list[str]:
            return [n for n in os.listdir(d)]
        """,
    )
    assert new_codes(result) == ["REP008"]


def test_rep008_sorted_clean(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        import os
        from pathlib import Path

        def names(d: str) -> list[str]:
            first = sorted(os.listdir(d))
            second = sorted(Path(d).glob("*.json"))
            return first + [p.name for p in second]
        """,
    )
    assert result.new == []


# ----------------------------------------------------------------------
# engine behaviour: suppressions, baseline, parse errors, CLI
# ----------------------------------------------------------------------
def test_suppression_without_reason_still_fires(tmp_path):
    result = lint_source(
        tmp_path,
        "anywhere/mod.py",
        """
        def collect(x, acc=[]):  # repro-lint: disable=REP005
            return acc
        """,
    )
    assert new_codes(result) == ["REP005"]
    assert result.suppressed == []


def test_suppression_pragma_inside_string_ignored():
    sups = parse_suppressions('x = "repro-lint: disable=REP001 reason=nope"\n')
    assert sups == {}


def test_parse_error_reported_as_rep000(tmp_path):
    result = lint_source(tmp_path, "anywhere/broken.py", "def broken(:\n")
    assert new_codes(result) == [PARSE_ERROR_CODE]


def test_baseline_grandfathers_exact_budget(tmp_path):
    source = textwrap.dedent(
        """
        def one(x, a=[]):
            return a

        def two(x, b={}):
            return b
        """
    )
    result = lint_source(tmp_path, "anywhere/mod.py", source)
    assert len(result.new) == 2

    baseline = tmp_path / "baseline.json"
    write_baseline(result.new, baseline)

    again = lint_source(tmp_path, "anywhere/mod.py", source, baseline_path=baseline)
    assert again.new == []
    assert len(again.baselined) == 2
    assert again.exit_code == 0

    # A third occurrence exceeds the grandfathered budget and is new.
    grown = source + "\ndef three(x, c=set()):\n    return c\n"
    regrown = lint_source(tmp_path, "anywhere/mod.py", grown, baseline_path=baseline)
    assert len(regrown.baselined) == 2
    assert len(regrown.new) == 1
    assert regrown.exit_code == 1


def test_cli_update_baseline_round_trip(tmp_path, monkeypatch, capsys):
    target = tmp_path / "repro" / "core" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(a=[]):\n    return a\n")
    monkeypatch.chdir(tmp_path)

    assert main([str(target)]) == 1
    assert main([str(target), "--update-baseline"]) == 0
    assert json.loads(Path("lint-baseline.json").read_text())["findings"]
    assert main([str(target)]) == 0
    capsys.readouterr()


def test_cli_json_format(tmp_path, monkeypatch, capsys):
    target = tmp_path / "mod.py"
    target.write_text("def f(a=[]):\n    return a\n")
    monkeypatch.chdir(tmp_path)
    code = main([str(target), "--format", "json", "--no-baseline"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert [f["code"] for f in payload["new"]] == ["REP005"]


def test_cli_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for checker in ALL_CHECKERS:
        assert checker.code in out


def test_repro_cli_forwards_lint_subcommand(tmp_path, monkeypatch, capsys):
    from repro.cli import main as cli_main

    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    assert cli_main(["lint", str(target)]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# the shipped tree is clean
# ----------------------------------------------------------------------
def test_shipped_tree_lints_clean(monkeypatch):
    monkeypatch.chdir(ROOT)
    result = lint_paths(["src"], baseline_path=Path("lint-baseline.json"))
    assert result.new == [], "\n".join(f.render() for f in result.new)
    assert result.exit_code == 0


def test_shipped_baseline_is_empty():
    data = json.loads((ROOT / "lint-baseline.json").read_text())
    assert data == {"version": 1, "findings": []}


def test_module_entry_point_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        env={**__import__("os").environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
