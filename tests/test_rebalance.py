"""Proactive idle-taxi rebalancing (repro.fleet.rebalance; ISSUE/PR 10).

Four properties anchor the subsystem:

* the ``--rebalance`` spec grammar round-trips and validates;
* the planner is a pure, deterministic function of the supply census
  and the fitted demand rates — surplus zones donate, deficit zones
  receive, caps and in-flight credits are honoured;
* the idle-at-start lifecycle bug is fixed: every taxi idle from t=0
  receives the ``on_taxi_idle`` hook (this regression FAILS on the
  pre-PR engine, which only fired it on a busy->idle transition);
* rebalanced runs are deterministic (double run and the streaming
  façade agree bit-for-bit), a disabled policy leaves the run on the
  pre-rebalancing code path, and the request accounting closes with
  cruises in flight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.demand.prediction import DemandPredictor
from repro.fleet.rebalance import (
    RebalanceMove,
    RebalanceSpec,
    Rebalancer,
    format_rebalance_spec,
    parse_rebalance_spec,
)
from repro.fleet.taxi import Taxi, TaxiRoute
from repro.sim.engine import Simulator

from tests.test_runner_parallel import decision_fingerprint


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestRebalanceSpec:
    def test_parse_full_grammar(self):
        spec = parse_rebalance_spec(
            "cadence_s=60,lead_s=240,max_moves=4,min_surplus=2,max_cruise_s=600"
        )
        assert spec == RebalanceSpec(
            cadence_s=60.0, lead_s=240.0, max_moves=4, min_surplus=2, max_cruise_s=600.0
        )
        assert spec.enabled

    @pytest.mark.parametrize("text", ["", "on", "default", " ON "])
    def test_words_for_default_enabled(self, text):
        assert parse_rebalance_spec(text) == RebalanceSpec()
        assert parse_rebalance_spec(text).enabled

    def test_off_disables(self):
        spec = parse_rebalance_spec("off")
        assert not spec.enabled

    def test_zero_moves_disables(self):
        assert not RebalanceSpec(max_moves=0).enabled
        assert not RebalanceSpec(cadence_s=0.0).enabled

    @pytest.mark.parametrize(
        "text",
        ["cadence", "tempo=9", "cadence_s=fast", "max_moves=2.5"],
    )
    def test_parse_rejects_bad_entries(self, text):
        with pytest.raises(ValueError):
            parse_rebalance_spec(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cadence_s": -1.0},
            {"lead_s": -1.0},
            {"max_moves": -1},
            {"min_surplus": -1},
            {"max_cruise_s": 0.0},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            RebalanceSpec(**kwargs)

    def test_format_roundtrip(self):
        spec = RebalanceSpec(cadence_s=45.0, max_moves=3)
        assert parse_rebalance_spec(format_rebalance_spec(spec)) == spec
        assert format_rebalance_spec(RebalanceSpec()) == "on"


# ----------------------------------------------------------------------
# the planner (pure function of census + rates)
# ----------------------------------------------------------------------
class TestPlanner:
    @pytest.fixture(scope="class")
    def geometry(self, small_net, small_engine, small_landmarks):
        return small_net, small_engine, small_landmarks

    def make(self, geometry, hot, spec=None, cold_rate=0.0):
        """A rebalancer whose predicted demand is concentrated on ``hot``."""
        net, engine, landmarks = geometry
        rates = np.full((landmarks.num_partitions, 24), cold_rate)
        for z, r in hot.items():
            rates[z, :] = r
        return Rebalancer(
            spec or RebalanceSpec(),
            predictor=DemandPredictor(rates),
            landmarks=landmarks,
            engine=engine,
            network=net,
        )

    def test_no_demand_no_moves(self, geometry):
        rb = self.make(geometry, hot={})
        assert rb.plan_moves({0: [1, 2, 3]}, {}, now=0.0) == []

    def test_no_parked_no_moves(self, geometry):
        rb = self.make(geometry, hot={4: 10.0})
        assert rb.plan_moves({}, {}, now=0.0) == []

    def test_surplus_flows_to_deficit(self, geometry):
        rb = self.make(geometry, hot={4: 10.0})
        moves = rb.plan_moves({0: [7, 8, 9, 10]}, {}, now=0.0)
        assert moves, "all demand in partition 4, all taxis in 0: expected moves"
        assert all(m.source == 0 and m.target == 4 for m in moves)
        assert len({m.taxi_id for m in moves}) == len(moves)
        assert {m.taxi_id for m in moves} <= {7, 8, 9, 10}

    def test_max_moves_cap(self, geometry):
        rb = self.make(geometry, hot={4: 10.0}, spec=RebalanceSpec(max_moves=2))
        supply = {0: list(range(20))}
        assert len(rb.plan_moves(supply, {}, now=0.0)) <= 2

    def test_in_flight_credit_prevents_overshoot(self, geometry):
        # Demand splits evenly between zones 0 and 4; the cruises
        # already heading to 4 exceed its share of the pool, so zone 4
        # must not receive more — and zone 0's own deficit has no
        # donor partitions (its parked taxis are all it has).
        rb = self.make(geometry, hot={0: 10.0, 4: 10.0})
        supply = {0: [1, 2, 3]}
        assert rb.plan_moves(supply, {4: 50}, now=0.0) == []
        # Without the credit the same census would move taxis to 4.
        assert rb.plan_moves(supply, {}, now=0.0) != []

    def test_max_cruise_s_fences_far_donors(self, geometry):
        rb = self.make(geometry, hot={4: 10.0}, spec=RebalanceSpec(max_cruise_s=1e-6))
        assert rb.plan_moves({0: [1, 2, 3, 4]}, {}, now=0.0) == []

    def test_deterministic(self, geometry):
        rb = self.make(geometry, hot={4: 10.0, 7: 3.0}, cold_rate=0.5)
        supply = {0: [3, 1, 2], 2: [9, 8], 5: [11]}
        first = rb.plan_moves(supply, {7: 1}, now=0.0)
        for _ in range(3):
            assert rb.plan_moves(supply, {7: 1}, now=0.0) == first

    def test_move_is_frozen_record(self, geometry):
        move = RebalanceMove(taxi_id=1, source=0, target=4, cost_s=12.5)
        with pytest.raises(AttributeError):
            move.taxi_id = 2


class TestCruiseRoute:
    def test_route_reaches_landmark(self, small_net, small_engine, small_landmarks):
        rb = Rebalancer(
            RebalanceSpec(),
            predictor=DemandPredictor(np.zeros((small_landmarks.num_partitions, 24))),
            landmarks=small_landmarks,
            engine=small_engine,
            network=small_net,
        )
        target_z = small_landmarks.num_partitions - 1
        landmark = small_landmarks.landmark(target_z)
        start = 0 if landmark != 0 else 1
        route = rb.cruise_route(start, 100.0, target_z)
        assert isinstance(route, TaxiRoute)
        assert route.stop_positions == []
        assert route.nodes[0] == start
        assert route.nodes[-1] == landmark
        assert route.times[0] == 100.0
        assert all(b >= a for a, b in zip(route.times, route.times[1:]))

    def test_already_there_is_none(self, small_net, small_engine, small_landmarks):
        rb = Rebalancer(
            RebalanceSpec(),
            predictor=DemandPredictor(np.zeros((small_landmarks.num_partitions, 24))),
            landmarks=small_landmarks,
            engine=small_engine,
            network=small_net,
        )
        z = 0
        assert rb.cruise_route(small_landmarks.landmark(z), 0.0, z) is None


# ----------------------------------------------------------------------
# the cruising property (repositioning plans are stop-less)
# ----------------------------------------------------------------------
class TestCruisingProperty:
    def test_parked_is_not_cruising(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        assert taxi.idle and not taxi.cruising

    def test_stopless_plan_is_cruising_and_idle(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        route = TaxiRoute(nodes=[0, 1, 2], times=[0.0, 10.0, 20.0], stop_positions=[])
        taxi.set_plan([], route)
        assert taxi.cruising and taxi.idle
        # Consuming the whole route parks the taxi again.
        taxi.advance(25.0)
        assert not taxi.cruising
        assert taxi.loc == 2


# ----------------------------------------------------------------------
# the idle-at-start lifecycle fix (satellite 1 — FAILS on HEAD)
# ----------------------------------------------------------------------
class TestIdleAtStartHook:
    def test_initial_fleet_receives_on_taxi_idle(self, test_scenario):
        scheme = test_scenario.make_scheme("mt-share")
        seen: list[tuple[int, float]] = []
        original = scheme.on_taxi_idle

        def spy(taxi, now):
            seen.append((taxi.taxi_id, now))
            original(taxi, now)

        scheme.on_taxi_idle = spy
        fleet = test_scenario.make_fleet(8, seed=1)
        Simulator(scheme, fleet, []).run()
        # Every taxi starts parked and must be announced idle at t=0;
        # the old engine only fired the hook on a busy->idle transition,
        # leaving an untouched fleet invisible to idle-driven policies.
        assert {tid for tid, _ in seen} == {t.taxi_id for t in fleet}
        assert all(now == 0.0 for _, now in seen)


# ----------------------------------------------------------------------
# engine integration and determinism
# ----------------------------------------------------------------------
REB_SPEC = "cadence_s=120,max_moves=6"


def _run(scenario, rebalance, num_taxis=25, requests=None):
    scheme = scenario.make_scheme("mt-share")
    sim = Simulator(
        scheme,
        scenario.make_fleet(num_taxis, seed=1),
        requests if requests is not None else scenario.requests(),
        rebalance=scenario.rebalance_policy(rebalance) if isinstance(rebalance, str) else rebalance,
    )
    return sim.run()


class TestEngineIntegration:
    def test_counters_and_stage_present(self, test_scenario):
        m = _run(test_scenario, REB_SPEC)
        assert m.counters.get("rebalance.ticks", 0) > 0
        assert m.counters.get("rebalance.moves", 0) > 0
        assert "rebalance.plan" in m.stages
        assert m.stages["rebalance.plan"]["count"] == m.counters["rebalance.ticks"]
        # Every installed cruise reaches exactly one terminal account.
        moves = m.counters["rebalance.moves"]
        terminal = (
            m.counters.get("rebalance.arrived", 0)
            + m.counters.get("rebalance.abandoned", 0)
            + m.counters.get("rebalance.broken", 0)
        )
        assert terminal <= moves
        m.check_balance()

    def test_off_spec_resolves_to_none(self, test_scenario):
        assert test_scenario.rebalance_policy("off") is None
        assert test_scenario.rebalance_policy(None) is None

    def test_disabled_policy_is_plain_run(self, test_scenario):
        plain = _run(test_scenario, None)
        disabled = Rebalancer(
            RebalanceSpec(cadence_s=0.0),
            predictor=test_scenario.demand_predictor(test_scenario.partitioning()),
            landmarks=test_scenario.landmark_graph(),
            engine=test_scenario.engine,
            network=test_scenario.network,
        )
        m = _run(test_scenario, disabled)
        assert decision_fingerprint(m) == decision_fingerprint(plain)
        assert not any(k.startswith("rebalance") for k in m.counters)

    def test_double_run_identical(self, test_scenario):
        a = _run(test_scenario, REB_SPEC)
        b = _run(test_scenario, REB_SPEC)
        assert decision_fingerprint(a) == decision_fingerprint(b)

    def test_streaming_matches_batch(self, test_scenario):
        batch = _run(test_scenario, REB_SPEC)
        scheme = test_scenario.make_scheme("mt-share")
        sim = Simulator(
            scheme,
            test_scenario.make_fleet(25, seed=1),
            [],
            rebalance=test_scenario.rebalance_policy(REB_SPEC),
        )
        sim.stream_begin()
        for request in test_scenario.requests():
            sim.stream_submit(request)
        streamed = sim.stream_finish()
        assert decision_fingerprint(streamed) == decision_fingerprint(batch)

    @pytest.mark.parametrize("scheme_name", ["no-sharing", "t-share", "pgreedydp", "window-lap"])
    def test_all_schemes_tolerate_cruises(self, test_scenario, scheme_name):
        scheme = test_scenario.make_scheme(scheme_name)
        m = Simulator(
            scheme,
            test_scenario.make_fleet(25, seed=1),
            test_scenario.requests(),
            rebalance=test_scenario.rebalance_policy(REB_SPEC),
        ).run()
        m.check_balance()
        assert m.counters.get("rebalance.ticks", 0) > 0
