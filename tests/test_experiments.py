"""Tests for the experiment runner, reporting, and figure functions."""

import pytest

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import BenchScale, RunKey, bench_scale, clear_cache, run
from repro.experiments import figures


@pytest.fixture(scope="module")
def mini_scale(test_spec, test_nonpeak_spec):
    """A benchmark scale over the tiny shared test scenarios."""
    return BenchScale(
        name="mini",
        peak=test_spec,
        nonpeak=test_nonpeak_spec,
        taxi_counts=(10, 20),
        default_taxis=15,
    )


class TestReporting:
    def test_add_series_validates_length(self):
        res = ExperimentResult("t", "x", [1, 2], "y")
        with pytest.raises(ValueError):
            res.add_series("a", [1])

    def test_value_lookup(self):
        res = ExperimentResult("t", "x", [1, 2], "y")
        res.add_series("a", [10, 20])
        assert res.value("a", 2) == 20

    def test_render_contains_everything(self):
        res = ExperimentResult("My table", "taxis", [5], "served")
        res.add_series("scheme", [3.14159])
        res.notes.append("a note")
        text = res.render()
        assert "My table" in text
        assert "scheme" in text
        assert "3.14" in text
        assert "a note" in text


class TestRunner:
    def test_run_caches(self, mini_scale):
        clear_cache()
        key = RunKey(spec=mini_scale.peak, scheme="no-sharing", num_taxis=10)
        first = run(key)
        second = run(key)
        assert first is second

    def test_different_keys_differ(self, mini_scale):
        a = run(RunKey(spec=mini_scale.peak, scheme="no-sharing", num_taxis=10))
        b = run(RunKey(spec=mini_scale.peak, scheme="no-sharing", num_taxis=20))
        assert a is not b

    def test_config_overrides_apply(self, mini_scale):
        m = run(
            RunKey(
                spec=mini_scale.peak,
                scheme="mt-share",
                num_taxis=10,
                config_overrides=(("lam", 0.5),),
            )
        )
        assert m.served >= 0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert bench_scale().name == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert bench_scale().name == "quick"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()


class TestFigures:
    """Each figure function returns a well-formed result on the mini scale."""

    def test_fig5(self, mini_scale):
        res = figures.fig5_dataset_stats(mini_scale)
        assert "workday" in res.series and "weekend" in res.series
        assert res.notes  # carries the travel-time percentiles

    def test_fig6_and_friends_share_runs(self, mini_scale):
        served = figures.fig6_served_peak(mini_scale)
        response = figures.fig7_response_peak(mini_scale)
        assert set(served.series) == set(response.series)
        for scheme, values in served.series.items():
            assert all(v >= 0 for v in values)

    def test_table3(self, mini_scale):
        res = figures.table3_candidates_peak(mini_scale)
        assert "mt-share" in res.series

    def test_fig10_includes_pro(self, mini_scale):
        res = figures.fig10_served_nonpeak(mini_scale)
        assert "mt-share-pro" in res.series

    def test_table4(self, mini_scale):
        res = figures.table4_memory(mini_scale)
        assert res.value("mt-share", "index_kb") > 0

    def test_fig14b_capacity_monotone_tendency(self, mini_scale):
        res = figures.fig14b_capacity(mini_scale, capacities=(2, 6))
        served = res.series["mt-share"]
        assert served[1] >= served[0] * 0.85  # more seats never hurt much

    def test_fig19_payment_percentages(self, mini_scale):
        res = figures.fig19_rho_payment(mini_scale, rhos=(1.3,))
        assert 0.0 <= res.series["passenger saving %"][0] <= 100.0
        assert res.series["driver gain %"][0] >= 0.0

    def test_fig20_lambda(self, mini_scale):
        res = figures.fig20_lambda(mini_scale, thetas_deg=(30.0, 75.0))
        assert len(res.series["served"]) == 2

    def test_registry_complete(self):
        expected = {
            "fig5", "fig6", "fig7", "table3", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "table4",
            "fig14a", "fig14b", "table5", "fig15", "fig16",
            "fig17", "fig18", "fig19", "fig20", "fig21", "fig21v",
            "fig22w",
        }
        assert set(figures.ALL_EXPERIMENTS) == expected
