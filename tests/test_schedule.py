"""Tests for taxi schedules: stops, insertions, feasibility."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.schedule import (
    StopKind,
    arrival_times,
    capacity_ok,
    deadlines_met,
    dropoff,
    enumerate_insertions,
    is_feasible,
    pickup,
    request_stop_pair,
    schedule_cost,
    validate_stop_order,
)
from tests.conftest import make_request


def const_cost(value):
    return lambda u, v: 0.0 if u == v else value


class TestStops:
    def test_pickup_node_and_deadline(self):
        r = make_request(origin=2, destination=7, release_time=0.0, direct_cost=100.0, rho=1.3)
        pu = pickup(r)
        assert pu.node == 2
        assert pu.deadline == pytest.approx(30.0)
        assert pu.passenger_delta == 1

    def test_dropoff_node_and_deadline(self):
        r = make_request(origin=2, destination=7, direct_cost=100.0, rho=1.3)
        do = dropoff(r)
        assert do.node == 7
        assert do.deadline == pytest.approx(130.0)
        assert do.passenger_delta == -1

    def test_pair(self):
        pu, do = request_stop_pair(make_request())
        assert pu.kind is StopKind.PICKUP
        assert do.kind is StopKind.DROPOFF


class TestEnumerateInsertions:
    def test_empty_schedule_single_instance(self):
        instances = list(enumerate_insertions([], make_request()))
        assert len(instances) == 1
        _i, _j, stops = instances[0]
        assert [s.kind for s in stops] == [StopKind.PICKUP, StopKind.DROPOFF]

    @pytest.mark.parametrize("m, expected", [(0, 1), (1, 3), (2, 6), (3, 10), (4, 15)])
    def test_instance_count(self, m, expected):
        base = []
        for k in range(m):
            base.append(pickup(make_request(request_id=100 + k)))
        instances = list(enumerate_insertions(base, make_request(request_id=99)))
        assert len(instances) == expected

    def test_pickup_always_before_dropoff(self):
        base = [pickup(make_request(request_id=1)), dropoff(make_request(request_id=1))]
        new = make_request(request_id=2)
        for _i, _j, stops in enumerate_insertions(base, new):
            pu_idx = next(k for k, s in enumerate(stops)
                          if s.request.request_id == 2 and s.kind is StopKind.PICKUP)
            do_idx = next(k for k, s in enumerate(stops)
                          if s.request.request_id == 2 and s.kind is StopKind.DROPOFF)
            assert pu_idx < do_idx

    def test_existing_order_preserved(self):
        r1, r2 = make_request(request_id=1), make_request(request_id=2)
        base = [pickup(r1), pickup(r2)]
        new = make_request(request_id=3)
        for _i, _j, stops in enumerate_insertions(base, new):
            olds = [s.request.request_id for s in stops if s.request.request_id != 3]
            assert olds == [1, 2]

    def test_indices_point_at_inserted_stops(self):
        base = [pickup(make_request(request_id=1))]
        new = make_request(request_id=2)
        for i, j, stops in enumerate_insertions(base, new):
            assert stops[i].request.request_id == 2
            assert stops[i].kind is StopKind.PICKUP
            assert stops[j].request.request_id == 2
            assert stops[j].kind is StopKind.DROPOFF


class TestArrivalTimes:
    def test_constant_cost(self):
        r = make_request(origin=1, destination=2, direct_cost=500.0)
        times = arrival_times(0, 100.0, [pickup(r), dropoff(r)], const_cost(10.0))
        assert times == [110.0, 120.0]

    def test_same_node_free(self):
        r = make_request(origin=5, destination=5, direct_cost=100.0)
        times = arrival_times(5, 0.0, [pickup(r), dropoff(r)], const_cost(10.0))
        assert times == [0.0, 0.0]

    def test_empty_schedule(self):
        assert arrival_times(0, 0.0, [], const_cost(1.0)) == []


class TestFeasibility:
    def test_deadlines_met(self):
        r = make_request(direct_cost=1000.0, rho=1.5)
        stops = [pickup(r), dropoff(r)]
        assert deadlines_met(stops, [100.0, 1200.0])
        assert not deadlines_met(stops, [600.0, 1700.0])

    def test_capacity_ok(self):
        r1 = make_request(request_id=1, num_passengers=2)
        r2 = make_request(request_id=2, num_passengers=2)
        stops = [pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)]
        assert capacity_ok(stops, 0, 4)
        assert not capacity_ok(stops, 0, 3)
        assert not capacity_ok(stops, 1, 4)

    def test_capacity_with_interleaving(self):
        r1 = make_request(request_id=1, num_passengers=2)
        r2 = make_request(request_id=2, num_passengers=2)
        stops = [pickup(r1), dropoff(r1), pickup(r2), dropoff(r2)]
        assert capacity_ok(stops, 0, 2)

    def test_negative_onboard_raises(self):
        r = make_request(request_id=1)
        with pytest.raises(ValueError):
            capacity_ok([dropoff(r)], 0, 4)

    def test_is_feasible_combines(self):
        r = make_request(direct_cost=1000.0, rho=1.5, origin=1, destination=2)
        stops = [pickup(r), dropoff(r)]
        assert is_feasible(0, 0.0, stops, const_cost(100.0), 0, 4)
        assert not is_feasible(0, 0.0, stops, const_cost(100.0), 4, 4)
        assert not is_feasible(0, 0.0, stops, const_cost(2000.0), 0, 4)

    def test_schedule_cost(self):
        r = make_request(origin=1, destination=2, direct_cost=1000.0)
        assert schedule_cost(0, 5.0, [pickup(r), dropoff(r)], const_cost(10.0)) == pytest.approx(20.0)
        assert schedule_cost(0, 5.0, [], const_cost(10.0)) == 0.0


class TestValidateStopOrder:
    def test_valid_sequences_pass(self):
        r1, r2 = make_request(request_id=1), make_request(request_id=2)
        validate_stop_order([pickup(r1), pickup(r2), dropoff(r1), dropoff(r2)])
        validate_stop_order([dropoff(r1)])  # onboard passenger: allowed

    def test_double_pickup_rejected(self):
        r = make_request(request_id=1)
        with pytest.raises(ValueError):
            validate_stop_order([pickup(r), pickup(r)])

    def test_double_dropoff_rejected(self):
        r = make_request(request_id=1)
        with pytest.raises(ValueError):
            validate_stop_order([dropoff(r), dropoff(r)])

    def test_dropoff_before_pickup_rejected(self):
        r = make_request(request_id=1)
        with pytest.raises(ValueError):
            validate_stop_order([dropoff(r), pickup(r)])


class TestInsertionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=10))
    def test_every_instance_has_all_stops(self, m, seed):
        base = []
        for k in range(m):
            r = make_request(request_id=10 + k)
            base.append(pickup(r))
        new = make_request(request_id=1)
        count = 0
        for _i, _j, stops in enumerate_insertions(base, new):
            count += 1
            assert len(stops) == m + 2
        assert count == (m + 1) * (m + 2) // 2
