"""Tests for taxi state, route execution and stop firing."""

import pytest

from repro.fleet.schedule import dropoff, pickup
from repro.fleet.taxi import FleetLog, Taxi, TaxiError, TaxiRoute, build_route
from tests.conftest import make_request


def straight_route(nodes, start_time, per_hop, stop_positions=()):
    times = [start_time + i * per_hop for i in range(len(nodes))]
    return TaxiRoute(nodes=list(nodes), times=times, stop_positions=list(stop_positions))


class TestTaxiRoute:
    def test_validation_lengths(self):
        with pytest.raises(TaxiError):
            TaxiRoute(nodes=[0, 1], times=[0.0])

    def test_validation_monotone_times(self):
        with pytest.raises(TaxiError):
            TaxiRoute(nodes=[0, 1], times=[5.0, 1.0])

    def test_validation_stop_positions(self):
        with pytest.raises(TaxiError):
            TaxiRoute(nodes=[0, 1], times=[0.0, 1.0], stop_positions=[5])
        with pytest.raises(TaxiError):
            TaxiRoute(nodes=[0, 1], times=[0.0, 1.0], stop_positions=[1, 0])

    def test_empty(self):
        r = TaxiRoute()
        assert r.empty
        assert r.total_cost() == 0.0
        with pytest.raises(TaxiError):
            _ = r.end_time

    def test_total_cost(self):
        r = straight_route([0, 1, 2], 10.0, 5.0)
        assert r.total_cost() == 10.0
        assert r.end_time == 20.0


class TestBuildRoute:
    def test_concatenates_legs(self, tiny_net, tiny_engine):
        r = make_request(origin=2, destination=8, direct_cost=tiny_engine.cost(2, 8))
        stops = [pickup(r), dropoff(r)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        assert route.nodes[0] == 0
        assert route.nodes[route.stop_positions[0]] == 2
        assert route.nodes[route.stop_positions[1]] == 8
        assert tiny_net.is_path(route.nodes)

    def test_times_are_cumulative(self, tiny_net, tiny_engine):
        r = make_request(origin=1, destination=2, direct_cost=tiny_engine.cost(1, 2))
        route = build_route(0, 100.0, [pickup(r), dropoff(r)], tiny_engine.path,
                            tiny_net.path_cost_s)
        assert route.times[0] == 100.0
        assert route.end_time == pytest.approx(100.0 + tiny_engine.cost(0, 2))

    def test_invalid_leg_rejected(self, tiny_net):
        r = make_request(origin=2, destination=8, direct_cost=100.0)
        with pytest.raises(TaxiError):
            build_route(0, 0.0, [pickup(r)], lambda u, v: [u], tiny_net.path_cost_s)


class TestTaxiAdvance:
    def make_taxi_with_trip(self, tiny_net, tiny_engine, rho=2.0):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request(origin=1, destination=2, direct_cost=tiny_engine.cost(1, 2), rho=rho)
        stops = [pickup(r), dropoff(r)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.assign(r)
        taxi.set_plan(stops, route)
        return taxi, r

    def test_advance_fires_stops_in_order(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        events = []
        taxi.advance(
            1e9,
            on_pickup=lambda t, req, at: events.append(("pu", req.request_id, at)),
            on_dropoff=lambda t, req, at: events.append(("do", req.request_id, at)),
        )
        assert [e[0] for e in events] == ["pu", "do"]
        assert events[0][2] < events[1][2]
        assert taxi.idle
        assert taxi.occupancy == 0
        assert taxi.loc == 2

    def test_partial_advance(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        hop = tiny_net.meters_to_seconds(100.0)
        traversed = taxi.advance(hop + 1e-6)
        assert [n for n, _t in traversed] == [0, 1]
        assert taxi.onboard  # picked up at vertex 1
        assert not taxi.idle

    def test_position_at_mid_route(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        hop = tiny_net.meters_to_seconds(100.0)
        taxi.advance(hop * 0.5)
        node, ready = taxi.position_at(hop * 0.5)
        assert node == 1  # next vertex on the route
        assert ready == pytest.approx(hop)

    def test_position_when_idle(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=5)
        assert taxi.position_at(42.0) == (5, 42.0)

    def test_assign_duplicate_rejected(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        with pytest.raises(TaxiError):
            taxi.assign(r)

    def test_pickup_without_assignment_raises(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request(origin=1, destination=2, direct_cost=tiny_engine.cost(1, 2), rho=2.0)
        stops = [pickup(r), dropoff(r)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        taxi.set_plan(stops, route)
        with pytest.raises(TaxiError):
            taxi.advance(1e9)

    def test_counters_track_passengers(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        assert taxi.committed == 1
        assert taxi.occupancy == 0
        hop = tiny_net.meters_to_seconds(100.0)
        taxi.advance(hop + 1e-6)  # picked up
        assert taxi.occupancy == 1
        assert taxi.committed == 1
        taxi.advance(1e9)
        assert taxi.committed == 0

    def test_remaining_route_cost(self, tiny_net, tiny_engine):
        taxi, r = self.make_taxi_with_trip(tiny_net, tiny_engine)
        assert taxi.remaining_route_cost(0.0) == pytest.approx(taxi.route.end_time)
        taxi.advance(1e9)
        assert taxi.remaining_route_cost(1e9) == 0.0

    def test_cruise_route_costs_nothing_to_abandon(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.set_plan([], straight_route([0, 1, 2], 0.0, 10.0))
        assert taxi.idle  # no schedule
        assert taxi.remaining_route_cost(0.0) == 0.0

    def test_cruise_moves_taxi(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.set_plan([], straight_route([0, 1, 2], 0.0, 10.0))
        traversed = taxi.advance(15.0)
        assert [n for n, _t in traversed] == [0, 1]
        assert taxi.loc == 1

    def test_plan_mismatch_rejected(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request()
        with pytest.raises(TaxiError):
            taxi.set_plan([pickup(r)], straight_route([0, 1], 0.0, 1.0))


class TestFleetLog:
    def test_lifecycle(self, tiny_engine):
        log = FleetLog()
        r = make_request(release_time=5.0, direct_cost=100.0, rho=2.0)
        log.record_assignment(r, taxi_id=3, assign_time=6.0)
        log.record_pickup(r, 30.0)
        log.record_dropoff(r, 150.0)
        trip = log.trips[r.request_id]
        assert trip.waiting_time == pytest.approx(25.0)
        assert trip.shared_travel_cost == pytest.approx(120.0)
        assert log.completed() == [trip]

    def test_incomplete_not_listed(self):
        log = FleetLog()
        r = make_request()
        log.record_assignment(r, 0, 0.0)
        assert log.completed() == []


class TestPlanTeardownGate:
    """Regression: ``advance`` must tear down every completed plan.

    The old gate required ``_stops_fired`` to be truthy *and* the route
    cursor to have consumed every vertex, so two legitimate plan shapes
    never reset: a zero-stop plan installed via ``set_plan`` (a cruise)
    kept its stale route/cursor forever, and a fully-fired schedule
    whose route carried trailing vertices reported non-idle with an
    empty ``pending_stops()`` — spinning the simulator's drain loop
    until the horizon cut the run."""

    def test_consumed_cruise_plan_resets(self):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        taxi.set_plan([], straight_route([0, 1, 2], 0.0, 10.0))
        taxi.advance(1e9)
        assert taxi.loc == 2
        # Zero stops ever fired, yet the finished plan must be cleared.
        assert taxi.route.empty
        assert taxi.idle
        assert taxi.position_at(100.0) == (2, 100.0)

    def test_trailing_route_tail_demoted_to_cruise(self, tiny_net, tiny_engine):
        taxi = Taxi(taxi_id=0, capacity=3, loc=0)
        r = make_request(origin=1, destination=2, direct_cost=tiny_engine.cost(1, 2), rho=2.0)
        stops = [pickup(r), dropoff(r)]
        route = build_route(0, 0.0, stops, tiny_engine.path, tiny_net.path_cost_s)
        # Extend the route past the last stop (e.g. a repositioning leg).
        tail_path = tiny_engine.path(2, 8)
        nodes = list(route.nodes)
        times = list(route.times)
        for u, v in zip(tail_path, tail_path[1:]):
            times.append(times[-1] + tiny_net.path_cost_s([u, v]))
            nodes.append(v)
        taxi.assign(r)
        taxi.set_plan(stops, TaxiRoute(nodes=nodes, times=times,
                                       stop_positions=list(route.stop_positions)))

        # Advance just past the final drop-off: everyone is served.
        taxi.advance(route.end_time + 1e-6)
        assert taxi.occupancy == 0
        assert taxi.pending_stops() == []
        # The taxi must report idle despite the remaining tail...
        assert taxi.idle
        # ... and the tail becomes a passenger-less cruise it still drives.
        assert not taxi.route.empty
        assert taxi.remaining_route_cost(route.end_time) == 0.0
        taxi.advance(1e9)
        assert taxi.loc == 8
        assert taxi.route.empty  # fully consumed -> cleared
