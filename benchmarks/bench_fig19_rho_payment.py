"""Fig. 19: the payment model's monetary effects versus rho.

Paper: at rho = 1.3 passengers save 8.6% on fares while drivers earn
7.8% more than the metered route — both sides gain.  We assert both
percentages are positive at the default rho.
"""

from conftest import run_figure
from repro.experiments.figures import fig19_rho_payment


def test_fig19_rho_payment(benchmark, scale):
    res = run_figure(benchmark, fig19_rho_payment, scale)
    saving_at_default = res.value("passenger saving %", 1.3)
    gain_at_default = res.value("driver gain %", 1.3)
    assert saving_at_default > 0.0
    assert gain_at_default > 0.0
    assert all(0.0 <= v <= 100.0 for v in res.series["passenger saving %"])
