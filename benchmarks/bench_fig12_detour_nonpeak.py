"""Fig. 12: detour time in the non-peak scenario.

Paper: mT-Share_pro has the largest detours (probability-seeking routes
are longer) but the overhead versus pGreedyDP stays small (<= 0.5 min).
"""

from conftest import run_figure
from repro.experiments.figures import fig12_detour_nonpeak


def test_fig12_detour_nonpeak(benchmark, scale):
    res = run_figure(benchmark, fig12_detour_nonpeak, scale)
    for x in res.x_values:
        assert res.value("no-sharing", x) < 1e-9
        assert res.value("mt-share-pro", x) >= res.value("mt-share", x) - 0.1
