"""Table V: grid versus bipartite map partitioning.

Paper: bipartite partitioning serves >= 6% more requests and cuts
detours 3-7% in both scenarios.  We assert bipartite never loses on
served requests by more than noise.
"""

from conftest import run_figure
from repro.experiments.figures import table5_partitioning


def test_table5_partitioning(benchmark, scale):
    res = run_figure(benchmark, table5_partitioning, scale)
    for kind in ("peak", "nonpeak"):
        grid = res.value(f"grid/{kind}", "served")
        bipartite = res.value(f"bipartite/{kind}", "served")
        assert bipartite >= grid * 0.93
