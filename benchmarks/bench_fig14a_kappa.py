"""Fig. 14(a): impact of the partition count kappa.

Paper: served requests rise towards a sweet spot (kappa = 150 on the
full network) and fall beyond it — too few or too many partitions both
shrink the candidate sets.  We check the sweep runs and that the
candidate-set size responds to kappa.
"""

from conftest import run_figure
from repro.experiments.figures import fig14a_partitions


def test_fig14a_kappa(benchmark, scale):
    res = run_figure(benchmark, fig14a_partitions, scale)
    served = res.series["mt-share"]
    assert all(v > 0 for v in served)
    # The extreme settings should not beat the default by a wide margin.
    assert max(served) <= served[1] * 1.3 + 30
