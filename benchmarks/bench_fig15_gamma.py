"""Fig. 15: impact of the searching range gamma on detour + waiting.

Paper: a larger gamma admits farther taxis, so both detour and waiting
grow for every sharing scheme; No-Sharing never detours.  The sweep
pins all schemes (including mT-Share) to the static gamma.
"""

from conftest import run_figure
from repro.experiments.figures import fig15_gamma


def test_fig15_gamma(benchmark, scale):
    res = run_figure(benchmark, fig15_gamma, scale)
    nosh = res.series["no-sharing detour"]
    assert all(v == 0.0 for v in nosh)
    # Waiting for the sharing schemes tends upward with gamma.
    for scheme in ("t-share", "pgreedydp", "mt-share"):
        waits = res.series[f"{scheme} waiting"]
        assert waits[-1] >= waits[0] * 0.8
