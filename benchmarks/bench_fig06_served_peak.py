"""Fig. 6: served requests in the peak scenario, sweeping fleet size.

Paper: every ridesharing scheme beats No-Sharing; mT-Share serves the
most (42% over T-Share, 36% over pGreedyDP at 3000 taxis); more taxis
always serve more.  Our reproduction preserves the sharing >> No-Sharing
gap and keeps mT-Share at/near the top (see EXPERIMENTS.md for the
detailed deviation discussion).
"""

from conftest import run_figure
from repro.experiments.figures import fig6_served_peak


def test_fig6_served_peak(benchmark, scale):
    res = run_figure(benchmark, fig6_served_peak, scale)
    for x in res.x_values:
        base = res.value("no-sharing", x)
        assert res.value("mt-share", x) > base
        assert res.value("t-share", x) > base
        assert res.value("pgreedydp", x) > base
    # Monotone in fleet size for every scheme.
    for scheme, values in res.series.items():
        assert values == sorted(values), scheme
