"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper via the
experiment harness and prints the same rows the paper plots.  Runs are
macro-benchmarks (whole simulation sweeps), so every benchmark executes
a single round; the experiment runner memoises simulations shared
between figures (Figs. 6-9 and Table III reuse one fleet sweep).

Set ``REPRO_BENCH_SCALE=full`` for the paper-shaped six-point sweeps;
the default ``quick`` scale keeps the whole suite to a few minutes.
``REPRO_WORKERS=N`` pre-executes each figure's simulations through the
parallel sweep executor (the figure function then recalls the memoised
results), and ``REPRO_ARTIFACT_DIR`` relocates or disables the
persistent preprocessing store the workers share.
"""

import pytest

from repro.experiments import bench_scale
from repro.experiments.figures import NON_RUN_FIGURES
from repro.experiments.runner import collect_keys, collect_observability, default_workers, run_many


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_figure(benchmark, fn, scale):
    """Execute a figure function once under pytest-benchmark and print it."""
    workers = default_workers()
    if workers > 1 and getattr(fn, "__name__", "").split("_")[0] not in NON_RUN_FIGURES:
        # Fan the figure's simulations out first; the benchmarked call
        # then recalls them from the memo cache, so the recorded wall
        # time reflects the parallel sweep's residual work.
        run_many(collect_keys(fn, scale), workers=workers)
    result = benchmark.pedantic(fn, args=(scale,), rounds=1, iterations=1)
    # Per-stage dispatch timings + counters for the runs this figure
    # consumed (cumulative across the memoised run cache), persisted in
    # the pytest-benchmark JSON output.
    benchmark.extra_info["observability"] = collect_observability()
    result.print()
    return result
