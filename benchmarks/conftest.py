"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper via the
experiment harness and prints the same rows the paper plots.  Runs are
macro-benchmarks (whole simulation sweeps), so every benchmark executes
a single round; the experiment runner memoises simulations shared
between figures (Figs. 6-9 and Table III reuse one fleet sweep).

Set ``REPRO_BENCH_SCALE=full`` for the paper-shaped six-point sweeps;
the default ``quick`` scale keeps the whole suite to a few minutes.
"""

import pytest

from repro.experiments import bench_scale
from repro.experiments.runner import collect_observability


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def run_figure(benchmark, fn, scale):
    """Execute a figure function once under pytest-benchmark and print it."""
    result = benchmark.pedantic(fn, args=(scale,), rounds=1, iterations=1)
    # Per-stage dispatch timings + counters for the runs this figure
    # consumed (cumulative across the memoised run cache), persisted in
    # the pytest-benchmark JSON output.
    benchmark.extra_info["observability"] = collect_observability()
    result.print()
    return result
