"""Fig. 14(b): impact of taxi capacity.

Paper: larger capacity means more supply from the same fleet; capacity 6
serves ~12% more than capacity 2.
"""

from conftest import run_figure
from repro.experiments.figures import fig14b_capacity


def test_fig14b_capacity(benchmark, scale):
    res = run_figure(benchmark, fig14b_capacity, scale)
    served = res.series["mt-share"]
    assert served[-1] >= served[0]  # capacity 6 >= capacity 2
