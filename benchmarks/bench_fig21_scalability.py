"""Fig. 21: scalability with the amount of trace data processed.

Paper: total execution time grows linearly with the hours of data while
per-request response time stays flat — the system scales to a full day
of city traffic.
"""

from conftest import run_figure
from repro.experiments.figures import fig21_scalability, fig21v_vertex_scalability


def test_fig21_scalability(benchmark, scale):
    res = run_figure(benchmark, fig21_scalability, scale)
    execution = res.series["execution_s"]
    responses = res.series["response_ms"]
    # Execution grows with the data volume overall (single hours carry
    # wall-clock noise, so only the endpoints are compared strictly).
    assert execution[-1] >= execution[0]
    # Response time stays within a small factor across data volumes.
    assert max(responses) <= max(10.0 * min(responses), min(responses) + 5.0)


def test_fig21v_vertex_scalability(benchmark, scale):
    """Fig. 21 companion: network-size axis over the auto ch cutover.

    The sweep must cross ``FULL_APSP_LIMIT`` so the largest cell runs
    on the contraction-hierarchy backend, and per-request response time
    must stay flat as the network grows.
    """
    res = run_figure(benchmark, fig21v_vertex_scalability, scale)
    assert res.series["sp_mode"][0] == "full"
    assert res.series["sp_mode"][-1] == "ch"
    # Absolute dispatch-latency bound: per-request response stays in the
    # tens of milliseconds even on networks far past the APSP ceiling
    # (point lookups become hierarchy searches, so a relative-flatness
    # gate against the dense-table cells would be meaningless).
    assert max(res.series["response_ms"]) <= 50.0
