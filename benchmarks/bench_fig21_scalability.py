"""Fig. 21: scalability with the amount of trace data processed.

Paper: total execution time grows linearly with the hours of data while
per-request response time stays flat — the system scales to a full day
of city traffic.
"""

from conftest import run_figure
from repro.experiments.figures import fig21_scalability


def test_fig21_scalability(benchmark, scale):
    res = run_figure(benchmark, fig21_scalability, scale)
    execution = res.series["execution_s"]
    responses = res.series["response_ms"]
    # Execution grows with the data volume overall (single hours carry
    # wall-clock noise, so only the endpoints are compared strictly).
    assert execution[-1] >= execution[0]
    # Response time stays within a small factor across data volumes.
    assert max(responses) <= max(10.0 * min(responses), min(responses) + 5.0)
