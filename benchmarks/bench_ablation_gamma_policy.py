"""Ablation: mT-Share's Eq. 2 adaptive searching range vs a static gamma.

Not a paper figure — isolates one design choice DESIGN.md calls out.
The adaptive radius equals the pick-up reachability region, so it
should trim candidates without losing served requests.
"""

from conftest import run_figure
from repro.experiments.ablations import ablation_adaptive_gamma


def test_ablation_gamma_policy(benchmark, scale):
    res = run_figure(benchmark, ablation_adaptive_gamma, scale)
    adaptive = res.value("adaptive (Eq. 2)", "served")
    static = res.value("static gamma", "served")
    assert adaptive >= static * 0.95
