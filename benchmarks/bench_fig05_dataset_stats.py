"""Fig. 5: dataset statistics — hourly taxi utilisation and travel times.

Paper: workday utilisation peaks in the morning/evening commutes (56% in
the 8-9 a.m. hour), weekends are flatter (41% at 10-11 a.m.); trip
travel times have p50 = 15 min and p90 = 30 min.  Our synthetic trace
must show the same workday/weekend contrast and a peaked morning hour.
"""

from conftest import run_figure
from repro.experiments.figures import fig5_dataset_stats


def test_fig5_dataset_stats(benchmark, scale):
    res = run_figure(benchmark, fig5_dataset_stats, scale)
    workday = res.series["workday"]
    weekend = res.series["weekend"]
    assert all(0.0 <= u <= 1.0 for u in workday + weekend)
    # Workday carries a stronger commute structure than the weekend.
    assert max(workday) >= max(weekend)
