"""Ablation: congestion sensitivity (the paper's traffic extension).

The paper assumes stable traffic but notes the system extends to
real-time conditions.  Slower traffic lengthens every trip, so the same
fleet serves fewer requests; the schemes' relative ordering should be
insensitive to the congestion level.
"""

from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import RunKey, run


def _congestion_sweep(scale):
    import dataclasses

    result = ExperimentResult(
        title="Ablation: congestion factor (peak, mT-Share vs pGreedyDP)",
        x_label="speed_factor",
        x_values=[1.0, 0.7],
        y_label="served",
    )
    for scheme in ("pgreedydp", "mt-share"):
        values = []
        for factor in (1.0, 0.7):
            spec = dataclasses.replace(scale.peak, congestion=factor)
            values.append(
                run(RunKey(spec=spec, scheme=scheme, num_taxis=scale.default_taxis)).served
            )
        result.add_series(scheme, values)
    return result


def test_ablation_traffic(benchmark, scale):
    res = benchmark.pedantic(_congestion_sweep, args=(scale,), rounds=1, iterations=1)
    res.print()
    for scheme in ("pgreedydp", "mt-share"):
        free, jammed = res.series[scheme]
        assert jammed < free  # congestion costs service
