"""Batch-window global assignment benchmark (BENCH_PR8.json).

Four sections, all hard gates:

1. **determinism** — the same seeded ``window-lap`` run executed twice
   must produce bit-identical decision streams (assignments, pickup/
   dropoff times, waiting/detour samples, fares).
2. **equivalence** — ``W -> 0`` degenerates the window scheme to
   single-request batches, whose decision stream must equal greedy
   mT-Share's exactly.
3. **dispatch cost** — at the quick fig21 peak workload, the amortised
   ``sim.dispatch`` mean per dispatched request of ``window-lap`` must
   not exceed greedy mT-Share's: batching has to pay for itself.
4. **kernel dominance** — the cost-matrix fill must run entirely on
   the batched insertion kernels and bulk many-to-many cost gathers;
   the per-pair scalar fallback counter must stay zero.

Usage::

    PYTHONPATH=src python benchmarks/pr8_window.py --out BENCH_PR8.json
    PYTHONPATH=src python benchmarks/pr8_window.py --ci --out BENCH_PR8.json

Exits nonzero on any violated gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

os.environ.setdefault("REPRO_ARTIFACT_DIR", "off")

#: Dispatch-window length of the performance/determinism sections.
WINDOW_S = 30.0


def _fingerprint(sim, metrics) -> str:
    payload = {
        "trips": {
            str(rid): (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
            for rid, t in sorted(sim.log.trips.items())
        },
        "served": metrics.served,
        "completed": metrics.completed,
        "waiting": metrics.waiting_times_s,
        "detour": metrics.detour_times_s,
        "candidates": metrics.candidate_counts,
        "shared_fares": metrics.shared_fares,
        "driver_incomes": metrics.driver_incomes,
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _simulate(scenario, scheme_name: str, window_s: float | None, num_taxis: int):
    from repro.sim.engine import Simulator

    config = scenario.default_config()
    if window_s is not None:
        config = config.replace(dispatch_window_s=window_s)
    scheme = scenario.make_scheme(scheme_name, config=config)
    sim = Simulator(scheme, scenario.make_fleet(num_taxis, seed=1), scenario.requests())
    metrics = sim.run()
    return sim, metrics


def _peak_scenario(quick: bool):
    from repro.sim.scenario import ScenarioSpec, get_scenario, peak_spec

    if quick:
        return get_scenario(
            ScenarioSpec(
                kind="peak", grid_rows=12, grid_cols=12, hourly_requests=250,
                history_days=2, num_partitions=16, seed=3,
            )
        ), 30
    return get_scenario(peak_spec()), 160


# ----------------------------------------------------------------------
# sections 1 + 2: determinism and the W -> 0 greedy equivalence
# ----------------------------------------------------------------------
def run_fingerprints(scenario, num_taxis: int) -> dict:
    runs = {
        "greedy": _simulate(scenario, "mt-share", None, num_taxis),
        "w0": _simulate(scenario, "window-lap", 0.0, num_taxis),
        "windowed_a": _simulate(scenario, "window-lap", WINDOW_S, num_taxis),
        "windowed_b": _simulate(scenario, "window-lap", WINDOW_S, num_taxis),
    }
    shas = {name: _fingerprint(sim, m) for name, (sim, m) in runs.items()}
    section = {
        "sha256": shas,
        "served": {name: m.served_online for name, (_sim, m) in runs.items()},
        "deterministic": shas["windowed_a"] == shas["windowed_b"],
        "w0_equals_greedy": shas["w0"] == shas["greedy"],
    }
    if not section["deterministic"]:
        raise SystemExit(
            f"FAIL: same-seed windowed runs diverge: "
            f"{shas['windowed_a']} != {shas['windowed_b']}"
        )
    if not section["w0_equals_greedy"]:
        raise SystemExit(
            f"FAIL: W->0 window-lap diverges from greedy mT-Share: "
            f"{shas['w0']} != {shas['greedy']}"
        )
    return section


# ----------------------------------------------------------------------
# sections 3 + 4: amortised dispatch cost and kernel dominance
# ----------------------------------------------------------------------
def _dispatch_mean_us(metrics) -> float:
    stage = metrics.stages.get("sim.dispatch", {})
    return 1e6 * stage.get("mean_s", 0.0)


def run_perf(scenario, num_taxis: int, attempts: int = 3) -> dict:
    """Best-of-N amortised dispatch cost, window-lap versus greedy.

    Wall-clock microbenchmarks jitter; each scheme gets ``attempts``
    runs and the minimum mean — the least-noise estimate of the true
    cost — is gated.
    """
    greedy_us = []
    window_us = []
    window_metrics = None
    for _ in range(attempts):
        _sim, m = _simulate(scenario, "mt-share", None, num_taxis)
        greedy_us.append(_dispatch_mean_us(m))
        _sim, m = _simulate(scenario, "window-lap", WINDOW_S, num_taxis)
        window_us.append(_dispatch_mean_us(m))
        window_metrics = m
    counters = window_metrics.counters
    batched_calls = (
        counters.get("kernel.tight_dispatches", 0)
        + counters.get("kernel.batched_insertions", 0)
    )
    section = {
        "window_s": WINDOW_S,
        "num_taxis": num_taxis,
        "num_online": window_metrics.num_online,
        "greedy_dispatch_mean_us": round(min(greedy_us), 2),
        "window_dispatch_mean_us": round(min(window_us), 2),
        "greedy_attempts_us": [round(v, 2) for v in greedy_us],
        "window_attempts_us": [round(v, 2) for v in window_us],
        "window_flushes": counters.get("window.flushes", 0),
        "window_rolled": counters.get("window.rolled", 0),
        "matrix_cells": counters.get("window.matrix_cells", 0),
        "matrix_feasible": counters.get("window.matrix_feasible", 0),
        "bulk_m2m_cells": counters.get("window.bulk_m2m_cells", 0),
        "batched_kernel_calls": batched_calls,
        "scalar_pair_fallbacks": counters.get("window.scalar_pair_fallbacks", 0),
        "window_stage_totals_ms": {
            name: round(1e3 * st.get("total_s", 0.0), 2)
            for name, st in sorted(window_metrics.stages.items())
            if name.startswith("window.")
        },
    }
    if section["scalar_pair_fallbacks"] != 0:
        raise SystemExit(
            f"FAIL: {section['scalar_pair_fallbacks']} cost-matrix pairs fell "
            "back to scalar per-pair evaluation; the fill must stay batched"
        )
    if section["matrix_cells"] == 0 or batched_calls == 0:
        raise SystemExit("FAIL: matrix fill never exercised the batched kernels")
    if section["window_dispatch_mean_us"] > section["greedy_dispatch_mean_us"]:
        raise SystemExit(
            "FAIL: window-lap amortised dispatch cost "
            f"({section['window_dispatch_mean_us']}us) exceeds greedy mT-Share "
            f"({section['greedy_dispatch_mean_us']}us)"
        )
    return section


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR8.json")
    parser.add_argument("--quick", action="store_true",
                        help="small scenario (seconds instead of minutes)")
    parser.add_argument("--ci", action="store_true",
                        help="CI profile: quick scenario, fewer perf attempts")
    args = parser.parse_args()

    quick = args.quick or args.ci
    scenario, num_taxis = _peak_scenario(quick)
    report = {
        "bench": "pr8_window",
        "profile": "quick" if quick else "default",
        "fingerprints": run_fingerprints(scenario, num_taxis),
        "perf": run_perf(scenario, num_taxis, attempts=2 if args.ci else 3),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nreport written to {args.out}")


if __name__ == "__main__":
    main()
