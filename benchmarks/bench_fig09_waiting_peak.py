"""Fig. 9: waiting time in the peak scenario.

Paper: waiting falls as the fleet grows; T-Share (nearest-valid taxi)
waits least among sharing schemes; mT-Share and pGreedyDP wait slightly
longer (< 0.5 min gap) because they optimise detour, not pick-up
proximity.
"""

from conftest import run_figure
from repro.experiments.figures import fig9_waiting_peak


def test_fig9_waiting_peak(benchmark, scale):
    res = run_figure(benchmark, fig9_waiting_peak, scale)
    for x in res.x_values:
        for scheme in res.series:
            assert res.value(scheme, x) >= 0.0
    # Waiting shrinks (or stays flat) when the fleet doubles.
    first, last = res.x_values[0], res.x_values[-1]
    assert res.value("mt-share", last) <= res.value("mt-share", first) * 1.5
