"""Fig. 8: detour time in the peak scenario.

Paper: No-Sharing has no detour; T-Share's detours are the smallest of
the sharing schemes with mT-Share a close second; pGreedyDP's are
roughly double.  We check the No-Sharing floor and that mT-Share's
detours stay close to the best sharing scheme.
"""

from conftest import run_figure
from repro.experiments.figures import fig8_detour_peak


def test_fig8_detour_peak(benchmark, scale):
    res = run_figure(benchmark, fig8_detour_peak, scale)
    for x in res.x_values:
        assert res.value("no-sharing", x) < 1e-9
        best_sharing = min(
            res.value(s, x) for s in ("t-share", "pgreedydp", "mt-share")
        )
        assert res.value("mt-share", x) <= best_sharing * 2.0 + 0.5
