"""Table IV: index memory overheads at the largest fleet.

Paper: mT-Share's two index views make its index ~39% larger than the
grid baselines' and its total memory 16-41% larger — negligible in
absolute terms.  We assert mT-Share's index is the largest.
"""

from conftest import run_figure
from repro.experiments.figures import table4_memory


def test_table4_memory(benchmark, scale):
    res = run_figure(benchmark, table4_memory, scale)
    mt = res.value("mt-share", "index_kb")
    assert mt > 0
    assert mt >= res.value("t-share", "index_kb")
    assert mt >= res.value("pgreedydp", "index_kb")
