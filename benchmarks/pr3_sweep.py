"""Artifact-store / parallel-executor benchmark (BENCH_PR3.json).

Measures the wall-clock of one multi-figure sweep under the four cells

    {cold store, warm store} x {workers=1, workers=4}

and asserts the *decisions* (served / candidate / insertion totals and
the bitwise waiting-time stream) are identical in every cell — the
store and the executor are pure performance layers.

Usage::

    python benchmarks/pr3_sweep.py --out BENCH_PR3.json          # full
    python benchmarks/pr3_sweep.py --tiny --workers 2 --out ...  # CI smoke

The orchestrator spawns one fresh interpreter per cell so "cold" and
"warm" describe the store, never in-process caches.  Cell processes
re-enter this file with ``--cell``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: Figures swept in every cell; chosen to exercise both scenarios and
#: extra partition builds (fig14a sweeps kappa, table5 adds grid).
SWEEP_FIGURES = ("fig6", "fig7", "fig8", "fig9", "table3", "fig14a", "table5")

#: Scenario seeds for the robustness ablation: each is a full scenario
#: (re)build, which is what the artifact store amortises.
SWEEP_SEEDS = (7, 11, 13, 17, 19)
TINY_SEEDS = (3, 4)


def _micro_scale():
    from dataclasses import replace

    from repro.experiments.runner import BenchScale
    from repro.sim.scenario import ScenarioSpec

    peak = ScenarioSpec(
        kind="peak", grid_rows=8, grid_cols=8, spacing_m=180.0,
        hourly_requests=120, history_days=2, num_partitions=9,
        offline_count=10, seed=3,
    )
    return BenchScale(
        name="tiny", peak=peak, nonpeak=replace(peak, kind="nonpeak"),
        taxi_counts=(15, 25), default_taxis=25,
    )


def run_cell(tiny: bool, workers: int) -> dict:
    """Execute the sweep in this process; returns timing + fingerprint."""
    import numpy as np

    from repro import artifacts
    from repro.experiments.ablations import ablation_seed_robustness
    from repro.experiments.figures import figure_run_keys
    from repro.experiments.runner import _CACHE, bench_scale, collect_keys, run_many

    scale = _micro_scale() if tiny else bench_scale()
    seeds = TINY_SEEDS if tiny else SWEEP_SEEDS

    start = time.perf_counter()
    keys = figure_run_keys(SWEEP_FIGURES, scale)
    keys += [
        k for k in collect_keys(ablation_seed_robustness, scale, seeds)
        if k not in keys
    ]
    run_many(keys, workers=workers)
    wall_s = time.perf_counter() - start

    waiting = hashlib.sha256()
    detour = hashlib.sha256()
    served = candidates = insertions = 0
    for key in keys:
        m = _CACHE[key]
        served += m.served
        candidates += int(sum(m.candidate_counts))
        insertions += int(m.counters.get("match.insertions_evaluated", 0))
        waiting.update(np.asarray(m.waiting_times_s, dtype=np.float64).tobytes())
        detour.update(np.asarray(m.detour_times_s, dtype=np.float64).tobytes())

    return {
        "wall_s": round(wall_s, 3),
        "num_runs": len(keys),
        "workers": workers,
        "fingerprint": {
            "served_total": served,
            "candidates_total": candidates,
            "insertions_total": insertions,
            "waiting_sha256": waiting.hexdigest(),
            "detour_sha256": detour.hexdigest(),
        },
        "artifact_store": artifacts.stats(),
    }


def _spawn_cell(store_dir: str, workers: int, tiny: bool, label: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_ARTIFACT_DIR"] = store_dir
    args = [sys.executable, os.path.abspath(__file__), "--cell", "--workers", str(workers)]
    if tiny:
        args.append("--tiny")
    print(f"[pr3] cell {label}: workers={workers} store={store_dir}", flush=True)
    out = subprocess.run(args, env=env, capture_output=True, text=True)
    if out.returncode != 0:
        sys.stderr.write(out.stdout + out.stderr)
        raise SystemExit(f"cell {label} failed")
    cell = json.loads(out.stdout.strip().splitlines()[-1])
    print(f"[pr3] cell {label}: {cell['wall_s']}s over {cell['num_runs']} runs", flush=True)
    return cell


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cell", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--tiny", action="store_true",
                        help="micro scenario + fewer seeds (CI smoke)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default="BENCH_PR3.json")
    args = parser.parse_args()

    if args.cell:
        print(json.dumps(run_cell(args.tiny, args.workers)))
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-pr3-") as tmp:
        store_a = os.path.join(tmp, "store-a")
        store_b = os.path.join(tmp, "store-b")
        cells = {
            "cold_workers1": _spawn_cell(store_a, 1, args.tiny, "cold/seq"),
            "cold_workers4": _spawn_cell(store_b, args.workers, args.tiny, "cold/par"),
            "warm_workers1": _spawn_cell(store_a, 1, args.tiny, "warm/seq"),
            "warm_workers4": _spawn_cell(store_a, args.workers, args.tiny, "warm/par"),
        }

    prints = {name: cell["fingerprint"] for name, cell in cells.items()}
    reference = prints["cold_workers1"]
    for name, fp in prints.items():
        if fp != reference:
            raise SystemExit(
                f"fingerprint mismatch in {name}:\n {fp}\n != {reference}"
            )

    speedup = cells["cold_workers1"]["wall_s"] / cells["warm_workers4"]["wall_s"]
    report = {
        "benchmark": "pr3_artifact_store_parallel_sweep",
        "scale": "tiny" if args.tiny else os.environ.get("REPRO_BENCH_SCALE", "quick"),
        "figures": list(SWEEP_FIGURES) + ["ablation:seed_robustness"],
        "seeds": list(TINY_SEEDS if args.tiny else SWEEP_SEEDS),
        "cells": cells,
        "metrics_identical": True,
        "speedup_warm4_vs_cold1": round(speedup, 2),
        "cpu_count": os.cpu_count(),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"[pr3] metrics identical across all 4 cells; "
          f"speedup warm+{args.workers}w vs cold+1w: {speedup:.2f}x -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
