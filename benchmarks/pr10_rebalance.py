"""Rebalance smoke: repositioning is a strict, deterministic opt-in.

Four guarantees from docs/ALGORITHMS.md ("Proactive rebalancing"),
checked end-to-end on the commute-surge scenario with runtime
contracts armed:

1. **Rebalancing-off no-op.**  A run handed a *disabled*
   ``RebalanceSpec`` (the ``"off"`` spec) produces the exact same trips
   and metrics as a run with ``rebalance=None`` — the policy layer
   normalises disabled specs away and never touches clean decisions.
2. **Rebalanced determinism.**  Two rebalanced runs produce identical
   decision fingerprints, and the streaming façade replays the batch
   run bit-for-bit with repositioning cruises in flight.
3. **The surge gate.**  On the supply/demand-imbalanced surge cell
   (tight fleet, morning-commute window), the rebalanced run serves at
   least as many requests as the reactive baseline — the whole point
   of the subsystem.
4. **Accounting closure.**  ``check_balance()`` closes for every run,
   and the ``rebalance.*`` counters actually moved taxis.

Usage::

    PYTHONPATH=src python benchmarks/pr10_rebalance.py --out BENCH_PR10.json

Exits nonzero on any violation.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.analysis import contracts  # noqa: E402
from repro.core.payment import PaymentModel  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.scenario import ScenarioSpec, get_scenario  # noqa: E402

#: The policy under test (also the tier-1 suite's profile).
REBALANCE = "cadence_s=120,max_moves=6"

#: Wall-clock-derived summary keys; everything else must match exactly.
MEASURED_KEYS = frozenset(
    {"response_ms", "stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"}
)

#: The commute-surge cell: the peak window *is* the morning one-way
#: surge, and the fleet is deliberately tight so the imbalance bites.
SPEC = ScenarioSpec(
    kind="peak", grid_rows=12, grid_cols=12, spacing_m=180.0,
    hourly_requests=250, history_days=2, num_partitions=16,
    offline_count=40, seed=3,
)
NUM_TAXIS = 20


def _run(scenario, rebalance, streamed=False):
    """One mt-share run; returns (metrics, fingerprint)."""
    requests = scenario.requests()
    fleet = scenario.make_fleet(NUM_TAXIS, seed=1)
    sim = Simulator(
        scenario.make_scheme("mt-share"), fleet, [] if streamed else requests,
        payment=PaymentModel(),
        rebalance=scenario.rebalance_policy(rebalance),
    )
    if streamed:
        sim.stream_begin()
        for request in requests:
            sim.stream_submit(request)
        metrics = sim.stream_finish()
    else:
        metrics = sim.run()
    decisions = {
        "trips": {
            str(rid): [t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time]
            for rid, t in sorted(sim.log.trips.items())
        },
        "summary": {
            k: v for k, v in sorted(metrics.summary().items())
            if k not in MEASURED_KEYS
        },
    }
    blob = json.dumps(decisions, sort_keys=True).encode()
    return metrics, hashlib.sha256(blob).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write a JSON report here")
    args = parser.parse_args(argv)

    contracts.enable(True)
    scenario = get_scenario(SPEC)
    t0 = time.perf_counter()

    plain_m, plain_fp = _run(scenario, None)
    off_m, off_fp = _run(scenario, "off")
    on_a_m, on_a_fp = _run(scenario, REBALANCE)
    _on_b_m, on_b_fp = _run(scenario, REBALANCE)
    stream_m, stream_fp = _run(scenario, REBALANCE, streamed=True)

    failures = []
    if off_fp != plain_fp:
        failures.append(
            f"rebalance-off run diverged from plain run: {off_fp} != {plain_fp}"
        )
    if any(k.startswith("rebalance") for k in off_m.counters):
        failures.append("disabled policy populated rebalance.* counters")
    if on_a_fp != on_b_fp:
        failures.append(
            f"same policy, different runs: {on_a_fp} != {on_b_fp}"
        )
    if stream_fp != on_a_fp:
        failures.append(
            f"streamed rebalanced run diverged from batch: {stream_fp} != {on_a_fp}"
        )
    if on_a_m.counters.get("rebalance.moves", 0) == 0:
        failures.append("rebalanced run moved no taxis")
    if on_a_m.served < off_m.served:
        failures.append(
            "surge gate: rebalancing served fewer requests "
            f"({on_a_m.served} < {off_m.served})"
        )
    for label, m in (("plain", plain_m), ("rebalance-off", off_m),
                     ("rebalance-on", on_a_m), ("streamed", stream_m)):
        try:
            m.check_balance()
        except AssertionError as exc:
            failures.append(f"{label} run failed check_balance(): {exc}")

    def _rate(m):
        return round(m.served / max(m.num_requests, 1), 4)

    report = {
        "scenario": f"peak 12x12, 250 req/h, {NUM_TAXIS} taxis, seed 3 (commute surge)",
        "rebalance_spec": REBALANCE,
        "fingerprints": {
            "plain": plain_fp, "rebalance_off": off_fp,
            "on_a": on_a_fp, "on_b": on_b_fp, "streamed": stream_fp,
        },
        "surge": {
            "served_on": on_a_m.served,
            "served_off": off_m.served,
            "served_rate_on": _rate(on_a_m),
            "served_rate_off": _rate(off_m),
            "waiting_min_on": round(on_a_m.avg_waiting_min, 2),
            "waiting_min_off": round(off_m.avg_waiting_min, 2),
        },
        "counters": {
            k: v for k, v in sorted(on_a_m.counters.items())
            if k.startswith("rebalance")
        },
        "elapsed_s": round(time.perf_counter() - t0, 2),
        "failures": failures,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    if failures:
        print(f"rebalance smoke FAILED ({len(failures)} violation(s))", file=sys.stderr)
        return 1
    print("rebalance smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
