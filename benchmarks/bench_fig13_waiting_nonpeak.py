"""Fig. 13: waiting time in the non-peak scenario.

Paper: waiting shrinks with more taxis and is larger than in the peak
scenario (a sparser fleet drives farther per pick-up).
"""

from conftest import run_figure
from repro.experiments.figures import fig13_waiting_nonpeak


def test_fig13_waiting_nonpeak(benchmark, scale):
    res = run_figure(benchmark, fig13_waiting_nonpeak, scale)
    for x in res.x_values:
        for scheme in res.series:
            assert res.value(scheme, x) >= 0.0
