"""Fig. 7: response time in the peak scenario.

Paper: No-Sharing responds in <1 ms; T-Share is the fastest sharing
scheme; pGreedyDP is the slowest (4-10x mT-Share); response times grow
with fleet size.  We check the No-Sharing floor and that mT-Share stays
within a small factor of the grid baselines (the paper's 4-10x gap
reflects route planning on a 214k-vertex graph, which the shared
all-pairs cache removes for every scheme here).
"""

from conftest import run_figure
from repro.experiments.figures import fig7_response_peak


def test_fig7_response_peak(benchmark, scale):
    res = run_figure(benchmark, fig7_response_peak, scale)
    for x in res.x_values:
        assert res.value("no-sharing", x) < res.value("mt-share", x)
        assert res.value("no-sharing", x) < res.value("pgreedydp", x)
