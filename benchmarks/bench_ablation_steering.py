"""Ablation: the probability-vs-detour steering strength (future work
of the paper).  More steering should never reduce offline service and
may raise detours.
"""

from conftest import run_figure
from repro.experiments.ablations import ablation_steering


def test_ablation_steering(benchmark, scale):
    res = run_figure(benchmark, ablation_steering, scale)
    offline = res.series["served offline"]
    assert all(v >= 0 for v in offline)
    assert max(offline) >= offline[0]  # steering never hurts offline service
