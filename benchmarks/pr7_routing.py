"""Contraction-hierarchy routing benchmark (BENCH_PR7.json).

Three sections, the interesting ones hard gates:

1. **fingerprint** — one mT-Share scenario simulated twice, identical
   except for ``sp_mode`` (``lazy`` vs ``ch``).  The decision stream
   (assignments, pickup/dropoff times, waiting/detour samples, fares)
   must be bit-identical: the hierarchy is a pure routing-backend swap
   and may not perturb a single dispatch decision.
2. **routing** — per network size (default ~10k and ~50k vertices,
   ``--full`` adds ~200k): hierarchy build time, artifact round trip
   through a cold store (the warm load must show ``builds == 0`` and
   ``mmap_loads >= 1``), point-to-point and many-to-many query
   latencies cold/warm, equality spot-checks against the lazy scipy
   backend, and resident memory before/after.
3. **dense baseline** — warm many-to-many per-entry cost on the
   largest size must land within ``--dense-factor`` (default 5x) of a
   dense APSP table lookup on a ~6k-vertex grid, the largest network
   the O(V^2) table still comfortably serves.

Usage::

    PYTHONPATH=src python benchmarks/pr7_routing.py --out BENCH_PR7.json
    PYTHONPATH=src python benchmarks/pr7_routing.py --quick --out /tmp/b.json
    PYTHONPATH=src python benchmarks/pr7_routing.py --ci --out BENCH_PR7.json

Exits nonzero on any violated gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import sys
import tempfile
import time

import numpy as np

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

os.environ.setdefault("REPRO_ARTIFACT_DIR", "off")

#: Grid sides per profile: side^2 is the vertex count before the
#: generator's ~0.1% removals.
QUICK_SIDES = (100,)
DEFAULT_SIDES = (100, 224)
FULL_SIDES = (100, 224, 448)

#: Side of the dense-baseline grid: the largest square grid under
#: FULL_APSP_LIMIT (77^2 = 5929).
DENSE_SIDE = 77


def _rss_mb() -> float:
    """Peak resident set size of this process in MB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _fingerprint(sim, metrics) -> str:
    payload = {
        "trips": {
            str(rid): (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
            for rid, t in sorted(sim.log.trips.items())
        },
        "served": metrics.served,
        "completed": metrics.completed,
        "waiting": metrics.waiting_times_s,
        "detour": metrics.detour_times_s,
        "candidates": metrics.candidate_counts,
        "shared_fares": metrics.shared_fares,
        "driver_incomes": metrics.driver_incomes,
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ----------------------------------------------------------------------
# section 1: decision fingerprint across backends
# ----------------------------------------------------------------------
def run_fingerprint() -> dict:
    from repro.sim.engine import Simulator
    from repro.sim.scenario import Scenario, ScenarioSpec

    fingerprints = {}
    for sp_mode in ("lazy", "ch"):
        spec = ScenarioSpec(
            kind="peak", grid_rows=30, grid_cols=30, spacing_m=180.0,
            hourly_requests=220, history_days=2, num_partitions=16,
            offline_count=20, seed=3, sp_mode=sp_mode,
        )
        scenario = Scenario(spec)
        sim = Simulator(
            scenario.make_scheme("mt-share"),
            scenario.make_fleet(40, seed=1),
            scenario.requests(),
        )
        fingerprints[sp_mode] = _fingerprint(sim, sim.run())
    section = {
        "lazy_sha256": fingerprints["lazy"],
        "ch_sha256": fingerprints["ch"],
        "identical": fingerprints["lazy"] == fingerprints["ch"],
    }
    if not section["identical"]:
        raise SystemExit(f"FAIL: lazy/ch decision fingerprints diverge: {section}")
    return section


# ----------------------------------------------------------------------
# section 2: build + query microbenchmarks per network size
# ----------------------------------------------------------------------
def _time_pairs(fn, pairs) -> float:
    """Mean microseconds per call of ``fn`` over ``pairs``."""
    start = time.perf_counter()
    for u, v in pairs:
        fn(u, v)
    return (time.perf_counter() - start) / len(pairs) * 1e6


def bench_size(side: int, store_root: str) -> dict:
    from repro.artifacts.store import ArtifactStore
    from repro.network.ch import CH_FORMAT_VERSION, ContractionHierarchy
    from repro.network.generators import grid_city
    from repro.network.shortest_path import ShortestPathEngine

    net = grid_city(rows=side, cols=side, spacing_m=180.0, seed=7)
    n = net.num_vertices
    rng = np.random.default_rng(side)
    rss_before = _rss_mb()

    start = time.perf_counter()
    ch = ContractionHierarchy.build(net)
    build_s = time.perf_counter() - start

    # Artifact round trip through a cold store: the warm load must be a
    # pure mmap with zero builds.
    store = ArtifactStore(os.path.join(store_root, f"side{side}"))
    spec = {"network": {"generator": "grid_city", "side": side, "seed": 7},
            "format": CH_FORMAT_VERSION}
    key = store.key_of("ch", spec)
    store.save("ch", key, ch.to_arrays())
    store.reset_stats()
    art = store.load("ch", key)
    counters = store.stats()["ch"]
    warm = ShortestPathEngine(net, mode="ch", ch_arrays=dict(art.arrays))
    if counters["builds"] != 0 or counters["mmap_loads"] < 1 or warm.ch_built:
        raise SystemExit(f"FAIL: warm store counters wrong at side {side}: {counters}")

    pairs = [(int(u), int(v)) for u, v in rng.integers(0, n, size=(200, 2))]
    p2p_cold_us = _time_pairs(warm.distance_m, pairs)
    p2p_warm_us = _time_pairs(warm.distance_m, pairs)

    us = [int(x) for x in rng.integers(0, n, size=32)]
    vs = [int(x) for x in rng.integers(0, n, size=64)]
    start = time.perf_counter()
    mat_cold = warm.cost_matrix(us, vs)
    m2m_cold_us = (time.perf_counter() - start) / mat_cold.size * 1e6
    start = time.perf_counter()
    mat_warm = warm.cost_matrix(us, vs)
    m2m_warm_us = (time.perf_counter() - start) / mat_warm.size * 1e6

    # Equality spot-check against the scalar scipy backend.
    lazy = ShortestPathEngine(net, mode="lazy")
    start = time.perf_counter()
    mat_lazy = lazy.cost_matrix(us, vs)
    m2m_lazy_us = (time.perf_counter() - start) / mat_lazy.size * 1e6
    exact = int(np.sum(mat_warm == mat_lazy))
    if exact != mat_lazy.size:
        raise SystemExit(
            f"FAIL: ch/lazy m2m mismatch at side {side}: "
            f"{mat_lazy.size - exact} of {mat_lazy.size} entries differ"
        )

    return {
        "side": side,
        "vertices": n,
        "edges": ch.num_edges,
        "shortcuts": ch.num_shortcuts,
        "build_s": round(build_s, 2),
        "warm_counters": counters,
        "p2p_cold_us": round(p2p_cold_us, 2),
        "p2p_warm_us": round(p2p_warm_us, 2),
        "m2m_entries": int(mat_warm.size),
        "m2m_cold_us_per_entry": round(m2m_cold_us, 3),
        "m2m_warm_us_per_entry": round(m2m_warm_us, 3),
        "m2m_lazy_us_per_entry": round(m2m_lazy_us, 3),
        "m2m_exact_matches": exact,
        "ch_memory_mb": round(ch.memory_bytes() / 1e6, 1),
        "rss_mb": {"before": round(rss_before, 1), "after": round(_rss_mb(), 1)},
    }


# ----------------------------------------------------------------------
# section 3: dense-table baseline and the 5x gate
# ----------------------------------------------------------------------
def run_dense_baseline() -> dict:
    from repro.network.generators import grid_city
    from repro.network.shortest_path import ShortestPathEngine

    net = grid_city(rows=DENSE_SIDE, cols=DENSE_SIDE, spacing_m=180.0, seed=7)
    eng = ShortestPathEngine(net, mode="full")
    rng = np.random.default_rng(0)
    us = [int(x) for x in rng.integers(0, net.num_vertices, size=32)]
    vs = [int(x) for x in rng.integers(0, net.num_vertices, size=64)]
    eng.cost_matrix(us, vs)  # touch the table once
    start = time.perf_counter()
    mat = eng.cost_matrix(us, vs)
    per_entry_us = (time.perf_counter() - start) / mat.size * 1e6
    return {
        "vertices": net.num_vertices,
        "m2m_us_per_entry": round(per_entry_us, 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument("--quick", action="store_true",
                        help="~10k vertices only, skip the dense gate")
    parser.add_argument("--ci", action="store_true",
                        help="~50k vertices only, with the dense gate")
    parser.add_argument("--full", action="store_true",
                        help="add the ~200k-vertex size")
    parser.add_argument("--dense-factor", type=float, default=5.0,
                        help="allowed warm m2m per-entry slowdown vs the dense table")
    args = parser.parse_args()

    if args.quick:
        sides = QUICK_SIDES
    elif args.ci:
        sides = (224,)
    elif args.full:
        sides = FULL_SIDES
    else:
        sides = DEFAULT_SIDES

    print("[1/3] lazy-vs-ch decision fingerprint ...", flush=True)
    fingerprint = run_fingerprint()
    print(f"      identical fingerprints: {fingerprint['ch_sha256'][:16]}...")

    routing = []
    with tempfile.TemporaryDirectory(prefix="pr7-ch-store-") as store_root:
        for side in sides:
            print(f"[2/3] routing on {side}x{side} grid ...", flush=True)
            row = bench_size(side, store_root)
            routing.append(row)
            print(
                f"      {row['vertices']:,} vertices: build {row['build_s']}s, "
                f"{row['shortcuts']:,} shortcuts, p2p warm {row['p2p_warm_us']}us, "
                f"m2m warm {row['m2m_warm_us_per_entry']}us/entry "
                f"(lazy {row['m2m_lazy_us_per_entry']}us)"
            )

    report = {
        "benchmark": "pr7_contraction_hierarchy_routing",
        "contracts": os.environ.get("REPRO_CONTRACTS", ""),
        "fingerprint": fingerprint,
        "routing": routing,
    }

    if not args.quick:
        print("[3/3] dense-table baseline ...", flush=True)
        dense = run_dense_baseline()
        largest = routing[-1]
        ratio = largest["m2m_warm_us_per_entry"] / dense["m2m_us_per_entry"]
        dense["gate"] = {
            "largest_vertices": largest["vertices"],
            "ratio": round(ratio, 2),
            "allowed": args.dense_factor,
            "met": ratio <= args.dense_factor,
        }
        report["dense_baseline"] = dense
        print(
            f"      dense {dense['m2m_us_per_entry']}us/entry at "
            f"{dense['vertices']:,}V; ch warm is {ratio:.2f}x at "
            f"{largest['vertices']:,}V (allowed {args.dense_factor}x)"
        )
        if not dense["gate"]["met"]:
            raise SystemExit(
                f"FAIL: warm m2m {ratio:.2f}x slower than the dense table "
                f"(allowed {args.dense_factor}x)"
            )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
