"""Fig. 10: served requests in the non-peak scenario (offline requests).

Paper: the sharing-vs-No-Sharing gap narrows; mT-Share_pro's
probabilistic routing serves 13-24% more than plain mT-Share and 58-62%
more than the grid baselines.  We assert mT-Share_pro's dominance and a
meaningful margin over plain mT-Share.
"""

from conftest import run_figure
from repro.experiments.figures import fig10_served_nonpeak


def test_fig10_served_nonpeak(benchmark, scale):
    res = run_figure(benchmark, fig10_served_nonpeak, scale)
    for x in res.x_values:
        pro = res.value("mt-share-pro", x)
        assert pro >= res.value("mt-share", x)
        assert pro > res.value("t-share", x)
        assert pro > res.value("no-sharing", x)
    last = res.x_values[-1]
    assert res.value("mt-share-pro", last) >= 1.05 * res.value("mt-share", last)
