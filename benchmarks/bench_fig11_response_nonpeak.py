"""Fig. 11: response time in the non-peak scenario.

Paper: mT-Share_pro is 2.5-4.5x slower than mT-Share because
probabilistic routing enumerates partition corridors; everything else
matches the peak behaviour.
"""

from conftest import run_figure
from repro.experiments.figures import fig11_response_nonpeak


def test_fig11_response_nonpeak(benchmark, scale):
    res = run_figure(benchmark, fig11_response_nonpeak, scale)
    for x in res.x_values:
        assert res.value("mt-share-pro", x) > res.value("mt-share", x)
    last = res.x_values[-1]
    ratio = res.value("mt-share-pro", last) / max(res.value("mt-share", last), 1e-9)
    assert 1.2 <= ratio <= 20.0
