"""Chaos smoke: faulted runs are deterministic, faults-off is a no-op.

Three guarantees from docs/ROBUSTNESS.md, checked end-to-end on a small
scenario with runtime contracts armed:

1. **Faults-off no-op.**  A run handed an *empty* ``FaultPlan`` (a spec
   with every rate at zero) produces the exact same trips and metrics
   as a run with ``faults=None`` — the injection layer normalises empty
   plans away and never touches clean decisions.
2. **Chaos determinism.**  Two faulted runs with the same fault seed
   produce identical decision fingerprints (same trips, same metrics up
   to wall-clock keys) despite breakdowns, cancellations and shocks.
3. **Accounting closure.**  The faulted run's extended bucket identity
   (``served + unserved + cancelled + stranded == population``) closes
   via ``SimulationMetrics.check_balance()``, and the fault buckets are
   actually exercised (breakdowns > 0).

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py --out CHAOS.json

Exits nonzero on any violation.  Runs with contracts armed regardless
of the environment (``contracts.enable(True)``), so every boundary also
re-validates schedule feasibility, clock monotonicity and the mid-run
accounting bound.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.analysis import contracts  # noqa: E402
from repro.core.payment import PaymentModel  # noqa: E402
from repro.faults.plan import FaultPlan, FaultSpec  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.scenario import ScenarioSpec, get_scenario  # noqa: E402

#: Same churn profile the tier-1 suite uses (tests/test_faults.py).
CHAOS = "seed=7,breakdown_rate=0.3,cancel_rate=0.15,shock_windows=2"

#: Wall-clock-derived summary keys; everything else must match exactly.
MEASURED_KEYS = frozenset(
    {"response_ms", "stage_candidates_ms", "stage_insertion_ms", "stage_planning_ms"}
)

SPEC = ScenarioSpec(
    kind="peak", grid_rows=12, grid_cols=12, spacing_m=180.0,
    hourly_requests=250, history_days=2, num_partitions=16,
    offline_count=40, seed=3,
)


def _run(scenario, faults):
    """One mt-share run; returns (metrics, fingerprint, decision dict)."""
    requests = scenario.requests()
    fleet = scenario.make_fleet(15, seed=1)
    if isinstance(faults, str) or faults is None:
        faults = scenario.fault_plan(faults, fleet, requests)
    sim = Simulator(
        scenario.make_scheme("mt-share"), fleet, requests,
        payment=PaymentModel(), faults=faults,
    )
    metrics = sim.run()
    decisions = {
        "trips": {
            str(rid): [t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time]
            for rid, t in sorted(sim.log.trips.items())
        },
        "summary": {
            k: v for k, v in sorted(metrics.summary().items())
            if k not in MEASURED_KEYS
        },
    }
    blob = json.dumps(decisions, sort_keys=True).encode()
    return metrics, hashlib.sha256(blob).hexdigest(), decisions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write a JSON report here")
    args = parser.parse_args(argv)

    contracts.enable(True)
    scenario = get_scenario(SPEC)
    t0 = time.perf_counter()

    plain_m, plain_fp, _ = _run(scenario, None)
    empty = FaultPlan(spec=FaultSpec(seed=SPEC.seed))
    off_m, off_fp, _ = _run(scenario, empty)
    chaos_a_m, chaos_a_fp, _ = _run(scenario, CHAOS)
    _chaos_b_m, chaos_b_fp, _ = _run(scenario, CHAOS)

    failures = []
    if off_fp != plain_fp:
        failures.append(
            f"faults-off run diverged from plain run: {off_fp} != {plain_fp}"
        )
    if off_m.breakdowns or off_m.cancelled or off_m.stranded:
        failures.append("empty fault plan populated fault buckets")
    if chaos_a_fp != chaos_b_fp:
        failures.append(
            f"same fault seed, different runs: {chaos_a_fp} != {chaos_b_fp}"
        )
    if chaos_a_fp == plain_fp:
        failures.append("chaos run identical to plain run: faults never fired")
    if chaos_a_m.breakdowns == 0:
        failures.append("chaos run injected no breakdowns")
    for label, m in (("plain", plain_m), ("faults-off", off_m), ("chaos", chaos_a_m)):
        try:
            m.check_balance()
        except AssertionError as exc:
            failures.append(f"{label} run failed check_balance(): {exc}")

    report = {
        "scenario": "peak 12x12, 250 req/h, 15 taxis, seed 3",
        "chaos_spec": CHAOS,
        "fingerprints": {
            "plain": plain_fp, "faults_off": off_fp,
            "chaos_a": chaos_a_fp, "chaos_b": chaos_b_fp,
        },
        "chaos_buckets": {
            "breakdowns": chaos_a_m.breakdowns,
            "cancelled": chaos_a_m.cancelled,
            "reassigned": chaos_a_m.reassigned,
            "stranded": chaos_a_m.stranded,
            "continuations": chaos_a_m.continuations,
            "shock_delays": chaos_a_m.shock_delays,
            "unsettled_episodes": chaos_a_m.unsettled_episodes,
        },
        "elapsed_s": round(time.perf_counter() - t0, 2),
        "failures": failures,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
    print(json.dumps(report, indent=2))
    if failures:
        print(f"chaos smoke FAILED ({len(failures)} violation(s))", file=sys.stderr)
        return 1
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
