"""Fig. 17: impact of the flexible factor rho on waiting time.

Paper: a larger rho tolerates more detour, so farther taxis get
selected and passengers wait longer; T-Share waits least.
"""

from conftest import run_figure
from repro.experiments.figures import fig17_rho_waiting


def test_fig17_rho_waiting(benchmark, scale):
    res = run_figure(benchmark, fig17_rho_waiting, scale)
    for scheme, waits in res.series.items():
        assert waits[-1] >= waits[0] * 0.8, scheme  # upward tendency
