"""Fig. 20: impact of the direction threshold theta (lambda = cos theta).

Paper: a larger theta (looser filter) slightly raises served requests
but sharply raises response time, motivating theta = 45 degrees.
"""

from conftest import run_figure
from repro.experiments.figures import fig20_lambda


def test_fig20_lambda(benchmark, scale):
    res = run_figure(benchmark, fig20_lambda, scale)
    served = res.series["served"]
    assert served[-1] >= served[0] * 0.95  # loosening never hurts much
