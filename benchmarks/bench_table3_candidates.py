"""Table III: average candidate-taxi set sizes in the peak scenario.

Paper: No-Sharing has the smallest sets (vacant taxis only); T-Share's
dual-side search keeps them small (12.5-16); pGreedyDP gathers the most
(22-54); mT-Share sits in between (12-28) because direction filtering
removes invalid taxis up front.
"""

from conftest import run_figure
from repro.experiments.figures import table3_candidates_peak


def test_table3_candidates(benchmark, scale):
    res = run_figure(benchmark, table3_candidates_peak, scale)
    for x in res.x_values:
        assert res.value("mt-share", x) < res.value("pgreedydp", x)
        assert res.value("t-share", x) <= res.value("pgreedydp", x)
