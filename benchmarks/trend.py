"""Performance trajectory across the stacked PRs (BENCH_PR*.json).

Every perf PR leaves a machine-readable report behind
(``BENCH_PR2.json`` .. ``BENCH_PR8.json``); this tool folds them into
one table so the repo's performance story is readable at a glance —
headline wall time, per-request dispatch cost where the report carries
one, and whether the PR's own hard gates passed.  The schemas differ
per PR (each benchmark measures what its PR changed), so extraction is
per-report and tolerant: a metric a report does not carry prints as
``-``, never as a crash.

Usage::

    python benchmarks/trend.py            # table over ./BENCH_PR*.json
    python benchmarks/trend.py --dir path/to/reports

Linked from docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re


def _get(d: dict, *path, default=None):
    """``d[path[0]][path[1]]...`` with ``default`` on any miss."""
    cur = d
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return default
        cur = cur[key]
    return cur


def _fmt(value, suffix="") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.2f}{suffix}"
    return f"{value}{suffix}"


def _row_pr2(d: dict) -> dict:
    runs = _get(d, "post", "profile_runs", default=[])
    best = min(runs, key=lambda r: r.get("wall_s", float("inf"))) if runs else {}
    requests = best.get("requests") or 0
    dispatch = _get(best, "stages", "sim.dispatch", "total_s")
    return {
        "headline": "batched insertion kernels",
        "wall_s": best.get("wall_s"),
        "dispatch_ms_per_req": (
            1e3 * dispatch / requests if dispatch and requests else None
        ),
        "gates": "pass" if d.get("decisions_unchanged") else "FAIL",
        "note": (
            "dispatch speedup x"
            f"{_fmt(_get(d, 'speedup', 'sim_dispatch_mean_per_request'))}"
        ),
    }


def _row_pr3(d: dict) -> dict:
    cold = _get(d, "cells", "cold_workers1", "wall_s")
    warm = _get(d, "cells", "warm_workers4", "wall_s")
    return {
        "headline": "artifact store + parallel sweeps",
        "wall_s": warm if warm is not None else cold,
        "dispatch_ms_per_req": None,
        "gates": "pass" if d.get("metrics_identical") else "FAIL",
        "note": f"warm4 vs cold1 x{_fmt(d.get('speedup_warm4_vs_cold1'))}",
    }


def _row_pr6(d: dict) -> dict:
    p50 = _get(d, "soak", "decision_latency_ms", "p50")
    ok = bool(_get(d, "equivalence", "identical")) and bool(_get(d, "soak", "slo_met"))
    return {
        "headline": "event kernel + streaming service",
        "wall_s": _get(d, "soak", "wall_s"),
        "dispatch_ms_per_req": p50,
        "gates": "pass" if ok else "FAIL",
        "note": f"{_fmt(_get(d, 'soak', 'requests_per_s'))} req/s soak",
    }


def _row_pr7(d: dict) -> dict:
    sizes = d.get("routing") or [{}]
    largest = sizes[-1]
    ok = bool(_get(d, "fingerprint", "identical"))
    return {
        "headline": "contraction-hierarchy routing",
        "wall_s": largest.get("build_s"),
        "dispatch_ms_per_req": None,
        "gates": "pass" if ok else "FAIL",
        "note": (
            f"{_fmt(largest.get('vertices'))}v m2m "
            f"{_fmt(largest.get('m2m_warm_us_per_entry'))}us/entry"
        ),
    }


def _row_pr8(d: dict) -> dict:
    perf = d.get("perf", {})
    fp = d.get("fingerprints", {})
    ok = (
        bool(fp.get("deterministic"))
        and bool(fp.get("w0_equals_greedy"))
        and perf.get("scalar_pair_fallbacks", 1) == 0
        and perf.get("window_dispatch_mean_us", float("inf"))
        <= perf.get("greedy_dispatch_mean_us", 0.0)
    )
    window_us = perf.get("window_dispatch_mean_us")
    greedy_us = perf.get("greedy_dispatch_mean_us")
    return {
        "headline": "batch-window LAP assignment",
        "wall_s": None,
        "dispatch_ms_per_req": window_us / 1e3 if window_us is not None else None,
        "gates": "pass" if ok else "FAIL",
        "note": f"vs greedy {_fmt(greedy_us)}us amortised",
    }


def _row_pr10(d: dict) -> dict:
    surge = d.get("surge", {})
    ok = not d.get("failures")
    on = surge.get("served_rate_on")
    off = surge.get("served_rate_off")
    return {
        "headline": "proactive idle-taxi rebalancing",
        "wall_s": d.get("elapsed_s"),
        "dispatch_ms_per_req": None,
        "gates": "pass" if ok else "FAIL",
        "note": (
            f"surge served rate {_fmt(on)} vs {_fmt(off)} off, "
            f"{_fmt(_get(d, 'counters', 'rebalance.moves'))} moves"
        ),
    }


_EXTRACTORS = {
    2: _row_pr2, 3: _row_pr3, 6: _row_pr6, 7: _row_pr7, 8: _row_pr8,
    10: _row_pr10,
}


def _row_generic(d: dict) -> dict:
    return {
        "headline": d.get("benchmark") or d.get("bench") or "?",
        "wall_s": None,
        "dispatch_ms_per_req": None,
        "gates": "?",
        "note": "",
    }


def collect(directory: str) -> list[dict]:
    rows = []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_PR*.json"))):
        match = re.search(r"BENCH_PR(\d+)\.json$", os.path.basename(path))
        if not match:
            continue
        pr = int(match.group(1))
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            rows.append({"pr": pr, **_row_generic({}), "note": f"unreadable: {exc}"})
            continue
        row = _EXTRACTORS.get(pr, _row_generic)(data)
        row["pr"] = pr
        rows.append(row)
    return sorted(rows, key=lambda r: r["pr"])


def print_table(rows: list[dict]) -> None:
    headers = ("PR", "headline", "wall", "dispatch/req", "gates", "note")
    table = [
        (
            f"PR{r['pr']}",
            r["headline"],
            _fmt(r["wall_s"], "s"),
            _fmt(r["dispatch_ms_per_req"], "ms"),
            r["gates"],
            r["note"],
        )
        for r in rows
    ]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in table)) if table else len(headers[c])
        for c in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in table:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))) or ".",
                        help="directory holding the BENCH_PR*.json reports "
                             "(default: the repo root)")
    args = parser.parse_args()
    rows = collect(args.dir)
    if not rows:
        print(f"no BENCH_PR*.json reports under {args.dir}")
        return 1
    print_table(rows)
    failing = [r for r in rows if r["gates"] == "FAIL"]
    print()
    print(f"{len(rows)} reports; gates: "
          + ("all pass" if not failing else f"{len(failing)} FAILING"))
    return 2 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
