"""Ablation: offline-encounter redispatch on/off.

The paper's server dispatches another taxi when the encountering one is
full; turning that off shows how much offline service the second chance
contributes.
"""

from conftest import run_figure
from repro.experiments.ablations import ablation_redispatch


def test_ablation_redispatch(benchmark, scale):
    res = run_figure(benchmark, ablation_redispatch, scale)
    on = res.value("redispatch on", "served_offline")
    off = res.value("redispatch off", "served_offline")
    assert on >= off
