"""Ablation: idle demand-seeking cruising on/off for mT-Share_pro.

Cruising is the dominant source of the non-peak gains: it both raises
offline encounters and pre-positions taxis for online demand.
"""

from conftest import run_figure
from repro.experiments.ablations import ablation_cruising


def test_ablation_cruising(benchmark, scale):
    res = run_figure(benchmark, ablation_cruising, scale)
    on = res.value("cruising on", "served")
    off = res.value("cruising off", "served")
    assert on >= off
