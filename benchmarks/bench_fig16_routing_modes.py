"""Fig. 16: basic versus probabilistic routing per scheme (non-peak).

Paper: probabilistic routing serves 34-89% more offline requests for
every scheme it is combined with, and mT-Share leads in both modes.
"""

from conftest import run_figure
from repro.experiments.figures import fig16_routing_modes


def test_fig16_routing_modes(benchmark, scale):
    res = run_figure(benchmark, fig16_routing_modes, scale)
    for scheme in ("t-share", "pgreedydp", "mt-share"):
        basic = res.value(f"{scheme}/basic", "offline")
        prob = res.value(f"{scheme}/prob", "offline")
        assert prob >= basic
        assert res.value(f"{scheme}/prob", "total") >= res.value(f"{scheme}/basic", "total")
    # mT-Share leads within each routing mode.
    for mode in ("basic", "prob"):
        assert res.value(f"mt-share/{mode}", "total") >= res.value(f"t-share/{mode}", "total") * 0.97
