"""Streaming-service throughput benchmark (BENCH_PR6.json).

Three sections, every one a hard gate:

1. **equivalence** — a micro workload replayed through the service
   façade (eager pumping AND shuffled delivery with deferred pumping)
   must produce a decision fingerprint bit-identical to batch
   ``Simulator.run()``.  The kernel refactor is a pure mechanics
   change; any drift here fails the benchmark.
2. **soak** — ``--soak N`` (default 1,000,000) synthetic requests
   streamed through the service in compact mode.  Resident memory is
   sampled from ``/proc/self/status`` every ``--rss-every`` requests;
   growth beyond ``--rss-budget-mb`` over the post-warmup baseline
   fails the run (the bounded-RSS claim of docs/ARCHITECTURE.md).
3. **SLO** — sustained requests/sec over the soak, with the p95 of
   per-decision dispatch latency held to ``--slo-ms``.

Usage::

    PYTHONPATH=src python benchmarks/pr6_throughput.py --out BENCH_PR6.json
    PYTHONPATH=src python benchmarks/pr6_throughput.py --soak 50000 --out /tmp/b.json

Exits nonzero on any violated gate.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import random
import sys
import time
from array import array

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

os.environ.setdefault("REPRO_ARTIFACT_DIR", "off")


def _rss_mb() -> float:
    """Resident set size in MB from /proc (Linux)."""
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return float(line.split()[1]) / 1024.0
    raise RuntimeError("VmRSS not found in /proc/self/status")


def _fingerprint(sim, metrics) -> str:
    payload = {
        "trips": {
            str(rid): (t.taxi_id, t.assign_time, t.pickup_time, t.dropoff_time)
            for rid, t in sorted(sim.log.trips.items())
        },
        "served_online": metrics.served_online,
        "served_offline": metrics.served_offline,
        "completed": metrics.completed,
        "expired_offline": metrics.expired_offline,
        "unserved_online": metrics.unserved_online,
        "unserved_offline": metrics.unserved_offline,
        "waiting": metrics.waiting_times_s,
        "detour": metrics.detour_times_s,
        "candidates": metrics.candidate_counts,
        "shared_fares": metrics.shared_fares,
        "driver_incomes": metrics.driver_incomes,
        "insertions": metrics.counters.get("match.insertions_evaluated"),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ----------------------------------------------------------------------
# section 1: batch-vs-stream equivalence
# ----------------------------------------------------------------------
def run_equivalence() -> dict:
    from repro.core.payment import PaymentModel
    from repro.service import DispatchService
    from repro.sim.engine import Simulator
    from repro.sim.scenario import ScenarioSpec, get_scenario

    spec = ScenarioSpec(
        kind="peak", grid_rows=8, grid_cols=8, spacing_m=180.0,
        hourly_requests=120, history_days=2, num_partitions=9,
        offline_count=10, seed=3,
    )
    scenario = get_scenario(spec)
    workload = scenario.requests()

    def make_sim():
        return Simulator(
            scenario.make_scheme("mt-share"),
            scenario.make_fleet(15, seed=1),
            [],
            payment=PaymentModel(),
        )

    batch_sim = Simulator(
        scenario.make_scheme("mt-share"), scenario.make_fleet(15, seed=1),
        workload, payment=PaymentModel(),
    )
    fp_batch = _fingerprint(batch_sim, batch_sim.run())

    eager = DispatchService(make_sim())
    fp_eager = _fingerprint(eager.sim, eager.replay(iter(workload), pump_every=1))

    shuffled = list(workload)
    random.Random(11).shuffle(shuffled)
    lazy = DispatchService(make_sim())
    fp_shuffled = _fingerprint(lazy.sim, lazy.replay(iter(shuffled), pump_every=None))

    section = {
        "requests": len(workload),
        "batch_sha256": fp_batch,
        "stream_eager_sha256": fp_eager,
        "stream_shuffled_sha256": fp_shuffled,
        "identical": fp_batch == fp_eager == fp_shuffled,
    }
    if not section["identical"]:
        raise SystemExit(f"FAIL: batch/stream fingerprints diverge: {section}")
    return section


# ----------------------------------------------------------------------
# sections 2+3: soak with RSS bound and latency SLO
# ----------------------------------------------------------------------
def run_soak(
    count: int,
    slo_ms: float,
    rss_budget_mb: float,
    rss_every: int,
    taxis: int,
    rate_per_s: float,
) -> dict:
    from repro.service import AdmissionPolicy, DispatchService, ServiceConfig
    from repro.service.sources import synthetic_requests
    from repro.sim.engine import Simulator
    from repro.sim.scenario import ScenarioSpec, get_scenario

    spec = ScenarioSpec(
        kind="peak", grid_rows=10, grid_cols=10, spacing_m=120.0,
        hourly_requests=100, history_days=1, num_partitions=4, seed=3,
    )
    scenario = get_scenario(spec)
    scheme = scenario.make_scheme("no-sharing")
    sim = Simulator(scheme, scenario.make_fleet(taxis, seed=1), [], compact=True)

    latencies_ms = array("d")

    def sink(decision) -> None:
        if decision.status != "rejected":
            latencies_ms.append(decision.elapsed_ms)

    service = DispatchService(
        sim,
        # The synthetic stream is unique and sorted by construction, so
        # the duplicate-tracking set (which would grow with the stream)
        # stays off; admission still bounds the in-flight queue.
        ServiceConfig(admission=AdmissionPolicy(dedupe=False), keep_decisions=False),
        on_decision=sink,
    )
    service.start()

    rss_samples: list[float] = []
    warmup = min(rss_every, count // 10 or 1)
    rss_baseline = None
    submitted = 0
    wall0 = time.perf_counter()
    for request in synthetic_requests(scheme.engine, count, rate_per_s=rate_per_s, seed=1):
        service.submit(request)
        service.pump()
        submitted += 1
        if submitted == warmup:
            rss_baseline = _rss_mb()
        if submitted % rss_every == 0:
            rss_samples.append(_rss_mb())
    metrics = service.finish()
    wall_s = time.perf_counter() - wall0

    rss_end = _rss_mb()
    rss_samples.append(rss_end)
    if rss_baseline is None:
        rss_baseline = rss_samples[0]
    rss_peak = max(rss_samples)
    rss_growth = rss_peak - rss_baseline

    lat_sorted = sorted(latencies_ms)
    def pct(p: float) -> float:
        if not lat_sorted:
            return 0.0
        return lat_sorted[min(len(lat_sorted) - 1, math.ceil(p * len(lat_sorted)) - 1)]

    section = {
        "requests": submitted,
        "taxis": taxis,
        "rate_per_s": rate_per_s,
        "wall_s": round(wall_s, 3),
        "requests_per_s": round(submitted / wall_s, 1),
        "served": metrics.served,
        "service_rate": round(metrics.service_rate, 4),
        "decision_latency_ms": {
            "p50": round(pct(0.50), 4),
            "p95": round(pct(0.95), 4),
            "p99": round(pct(0.99), 4),
            "max": round(lat_sorted[-1], 4) if lat_sorted else 0.0,
            "samples": len(lat_sorted),
        },
        "slo_ms": slo_ms,
        "slo_met": pct(0.95) <= slo_ms,
        "rss_mb": {
            "baseline": round(rss_baseline, 1),
            "peak": round(rss_peak, 1),
            "end": round(rss_end, 1),
            "growth": round(rss_growth, 1),
            "budget": rss_budget_mb,
        },
        "rss_bounded": rss_growth <= rss_budget_mb,
        "sample_cap": metrics.sample_cap,
        "retained_waiting_samples": len(metrics.waiting_times_s),
        "kernel_events": metrics.counters.get("kernel.events_processed"),
    }
    metrics.check_balance()
    failures = []
    if not section["slo_met"]:
        failures.append(
            f"p95 latency {section['decision_latency_ms']['p95']}ms > SLO {slo_ms}ms"
        )
    if not section["rss_bounded"]:
        failures.append(f"RSS grew {rss_growth:.1f}MB > budget {rss_budget_mb}MB")
    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument("--soak", type=int, default=1_000_000,
                        help="synthetic requests to stream (default 1M)")
    parser.add_argument("--slo-ms", type=float, default=50.0,
                        help="p95 decision-latency SLO in milliseconds")
    parser.add_argument("--rss-budget-mb", type=float, default=256.0,
                        help="allowed RSS growth over the warmed-up baseline")
    parser.add_argument("--rss-every", type=int, default=50_000,
                        help="sample RSS every N requests")
    parser.add_argument("--taxis", type=int, default=200)
    parser.add_argument("--rate", type=float, default=2.0,
                        help="synthetic arrival rate (requests per sim-second)")
    args = parser.parse_args()

    print(f"[1/2] batch-vs-stream equivalence ...", flush=True)
    equivalence = run_equivalence()
    print(f"      identical fingerprints: {equivalence['batch_sha256'][:16]}...")

    print(f"[2/2] soak: {args.soak:,} requests ...", flush=True)
    soak = run_soak(
        args.soak, args.slo_ms, args.rss_budget_mb, args.rss_every,
        args.taxis, args.rate,
    )
    print(
        f"      {soak['requests_per_s']:,.0f} req/s, "
        f"p95 {soak['decision_latency_ms']['p95']}ms (SLO {args.slo_ms}ms), "
        f"RSS growth {soak['rss_mb']['growth']}MB "
        f"(budget {args.rss_budget_mb}MB)"
    )

    report = {
        "benchmark": "pr6_streaming_service_throughput",
        "contracts": os.environ.get("REPRO_CONTRACTS", ""),
        "equivalence": equivalence,
        "soak": soak,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
