"""Fig. 18: impact of rho on mT-Share's detour time and served count.

Paper: both served requests and detour time grow with rho, but served
requests saturate beyond rho = 1.3 while detours keep climbing — the
basis for choosing 1.3 as the default.
"""

from conftest import run_figure
from repro.experiments.figures import fig18_rho_detour_served


def test_fig18_rho_detour_served(benchmark, scale):
    res = run_figure(benchmark, fig18_rho_detour_served, scale)
    served = res.series["served"]
    detour = res.series["detour_min"]
    assert served[-1] >= served[0]
    assert detour[-1] >= detour[0]
