#!/usr/bin/env python3
"""Morning commute: compare all dispatch schemes in the peak hour.

Reproduces the flavour of the paper's peak-scenario comparison
(Figs. 6-9): a workday 8-9 a.m. rush where online requests outnumber
taxis several times over, so ridesharing decides how many commuters get
a ride at all.  Prints one row per scheme with the four headline
metrics plus the candidate-set sizes of Table III.

Run:  python examples/morning_commute.py [num_taxis]
"""

import sys

from repro import PaymentModel, ScenarioSpec, Simulator, get_scenario


def main() -> None:
    num_taxis = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    spec = ScenarioSpec(
        kind="peak",
        grid_rows=16,
        grid_cols=16,
        hourly_requests=600,
        history_days=3,
        num_partitions=25,
        seed=4,
    )
    scenario = get_scenario(spec)
    requests = scenario.requests()
    print(
        f"Peak hour: {len(requests)} requests, {num_taxis} taxis "
        f"({len(requests) / num_taxis:.1f} requests per taxi)\n"
    )

    header = (
        f"{'scheme':12s} {'served':>7s} {'rate':>6s} {'resp_ms':>8s} "
        f"{'wait_min':>9s} {'detour_min':>11s} {'candidates':>11s}"
    )
    print(header)
    print("-" * len(header))
    for name in ("no-sharing", "t-share", "pgreedydp", "mt-share"):
        scheme = scenario.make_scheme(name)
        fleet = scenario.make_fleet(num_taxis, seed=1)
        metrics = Simulator(scheme, fleet, requests, payment=PaymentModel()).run()
        print(
            f"{scheme.name:12s} {metrics.served:7d} {metrics.service_rate:6.1%} "
            f"{metrics.avg_response_ms:8.3f} {metrics.avg_waiting_min:9.2f} "
            f"{metrics.avg_detour_min:11.2f} {metrics.avg_candidates:11.2f}"
        )

    print(
        "\nExpected shape (paper Figs. 6-9): every sharing scheme beats "
        "No-Sharing;\nmT-Share matches with the fewest candidates; "
        "No-Sharing never detours."
    )


if __name__ == "__main__":
    main()
