#!/usr/bin/env python3
"""Build-your-own-city: run mT-Share on a custom network and demand model.

Shows the lower-level public API the scenario helpers are built from:
construct a ring-and-radial road network, mine a custom trace for the
bipartite map partitioning, wire up an MTShare dispatcher by hand and
drive it with the simulator.  Use this as a template for plugging in
your own networks or demand models.

Run:  python examples/build_your_own_city.py
"""

import numpy as np

from repro import (
    MTShare,
    PaymentModel,
    ShortestPathEngine,
    Simulator,
    SystemConfig,
    bipartite_partition,
    ring_radial_city,
)
from repro.demand.dataset import TripDataset
from repro.demand.generator import ChengduLikeDemand
from repro.fleet.taxi import Taxi


def main() -> None:
    # 1. A European-style ring-and-radial city instead of the default grid.
    network = ring_radial_city(num_rings=6, num_radials=14, ring_spacing_m=350.0, seed=2)
    engine = ShortestPathEngine(network)
    print(f"Network: {network.num_vertices} vertices, {network.num_edges} edges")

    # 2. Historical demand to mine: three days of zone-structured trips.
    demand = ChengduLikeDemand(network, num_zones=8, vertices_per_zone=10,
                               hourly_requests=300, seed=7)
    history: TripDataset = demand.generate_days(3)
    print(f"History: {len(history)} trips over 3 days")

    # 3. Bipartite map partitioning over the mined transitions.
    partitioning = bipartite_partition(
        network, history.od_pairs(), num_partitions=18,
        num_transition_clusters=6, seed=7,
    )
    print(
        f"Partitioning: {partitioning.num_partitions} partitions after "
        f"{partitioning.iterations} iterations"
    )

    # 4. The dispatcher, configured by hand.
    config = SystemConfig(num_partitions=partitioning.num_partitions,
                          search_range_m=1200.0)
    scheme = MTShare(network, engine, config, partitioning)

    # 5. A workload: the evening hour of a fresh day, plus a fleet.
    workload = demand.generate_window(3, 18, 1, weekend=False)
    requests = workload.to_requests(engine, rho=1.3,
                                    time_origin=(3 * 24 + 18) * 3600.0)
    rng = np.random.default_rng(0)
    fleet = [
        Taxi(taxi_id=i, capacity=3, loc=int(rng.integers(network.num_vertices)))
        for i in range(30)
    ]

    metrics = Simulator(scheme, fleet, requests, payment=PaymentModel()).run()
    print(f"\nEvening hour: {metrics.served}/{metrics.num_requests} requests served")
    print(f"  response {metrics.avg_response_ms:.3f} ms | "
          f"waiting {metrics.avg_waiting_min:.2f} min | "
          f"detour {metrics.avg_detour_min:.2f} min")


if __name__ == "__main__":
    main()
