#!/usr/bin/env python3
"""Fare splitting: the mT-Share payment model on one shared ride.

Walks through Eqs. 5-8 of the paper on a concrete two-passenger episode
and then shows the aggregate effect over a simulated hour: passengers
save money, the driver earns more than the meter, and the passenger who
detoured more is compensated more.

Run:  python examples/fare_split.py
"""

from repro import PaymentModel, ScenarioSpec, Simulator, get_scenario
from repro.core.payment import FareSchedule


def worked_example() -> None:
    print("=== Worked example: two passengers share a taxi ===\n")
    model = PaymentModel(FareSchedule(base_fare=8.0, base_distance_m=2000.0, per_km=1.9))
    shortest = {1: 4000.0, 2: 5000.0}   # direct trip lengths (m)
    shared = {1: 4600.0, 2: 5000.0}     # what each actually rode
    route = 7200.0                      # the taxi drove 7.2 km in total

    settlement = model.settle(shortest, shared, route)
    print(f"Solo fares       : rider 1 = {settlement.charges[0].regular_fare:.2f}, "
          f"rider 2 = {settlement.charges[1].regular_fare:.2f} yuan")
    print(f"Metered route    : {settlement.route_fare:.2f} yuan "
          f"for {route / 1000:.1f} km")
    print(f"Sharing benefit B: {settlement.benefit:.2f} yuan "
          f"(Eq. 5), split 80/20 passengers/driver")
    for charge in settlement.charges:
        print(
            f"  rider {charge.request_id}: detour rate {charge.detour_rate:.3f} "
            f"-> pays {charge.shared_fare:.2f} (saves {charge.saving:.2f})"
        )
    print(f"Driver income    : {settlement.driver_income:.2f} yuan "
          f"({settlement.driver_income - settlement.route_fare:+.2f} over the meter)\n")


def simulated_hour() -> None:
    print("=== Aggregate over a simulated peak hour (mT-Share) ===\n")
    spec = ScenarioSpec(
        kind="peak", grid_rows=14, grid_cols=14, hourly_requests=400,
        history_days=3, num_partitions=20, seed=11,
    )
    scenario = get_scenario(spec)
    metrics = Simulator(
        scenario.make_scheme("mt-share"),
        scenario.make_fleet(40, seed=0),
        scenario.requests(),
        payment=PaymentModel(),
    ).run()
    print(f"served requests        : {metrics.served}")
    print(f"passenger fare saving  : {metrics.fare_saving_pct:.1f} % "
          "(paper: 8.6 % at rho = 1.3)")
    print(f"driver income increase : {metrics.driver_gain_pct:.1f} % "
          "(paper: 7.8 % at rho = 1.3)")


if __name__ == "__main__":
    worked_example()
    simulated_hour()
