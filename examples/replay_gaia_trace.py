#!/usr/bin/env python3
"""Replay a GAIA-format trace file and render the city as SVG.

Demonstrates the data pipeline a user with the real Didi GAIA Chengdu
files would run: read the CSV, map-match the trips onto a road network,
mine the history, dispatch the busiest hour, analyse the run and render
the partitioning, demand heat map, and a few shared routes to SVG files
under ``examples/output/``.

For self-containment this script first *exports* a synthetic trace to
the GAIA format and then treats that file as the input — swap the path
for a real GAIA CSV (and a matching road network) to replay the actual
data.

Run:  python examples/replay_gaia_trace.py
"""

from pathlib import Path

import numpy as np

from repro import MTShare, PaymentModel, ShortestPathEngine, Simulator, bipartite_partition, grid_city
from repro import viz
from repro.config import SystemConfig
from repro.demand.generator import ChengduLikeDemand
from repro.experiments.analysis import run_report
from repro.fleet.taxi import Taxi
from repro.io import read_gaia_csv, write_gaia_csv


def main() -> None:
    out_dir = Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    trace_path = out_dir / "synthetic_gaia_trace.csv"

    # --- stage 0: a road network (with the real data: build from OSM) ---
    network = grid_city(rows=14, cols=14, spacing_m=200.0, seed=21)
    engine = ShortestPathEngine(network)

    # --- stage 1: obtain a GAIA-format trace --------------------------
    demand = ChengduLikeDemand(network, hourly_requests=350, seed=21)
    synthetic = demand.generate_days(3)
    rows = write_gaia_csv(trace_path, synthetic, network)
    print(f"Exported {rows} trips to {trace_path.name} (GAIA format)")

    # --- stage 2: read + map-match, as with the real files ------------
    trace = read_gaia_csv(trace_path, network, snap_radius_m=120.0)
    print(f"Loaded and map-matched {len(trace)} trips")

    # --- stage 3: mine the history, build the dispatcher --------------
    hour_idx, count = trace.busiest_hour()
    window = trace.window(hour_idx * 3600.0, (hour_idx + 1) * 3600.0)
    history = trace.exclude_window(hour_idx * 3600.0, (hour_idx + 1) * 3600.0)
    print(f"Busiest hour: #{hour_idx} with {count} trips")

    partitioning = bipartite_partition(
        network, history.od_pairs(), num_partitions=20,
        num_transition_clusters=8, seed=21,
    )
    config = SystemConfig(num_partitions=partitioning.num_partitions,
                          search_range_m=900.0)
    scheme = MTShare(network, engine, config, partitioning)

    # --- stage 4: replay the busiest hour -----------------------------
    requests = window.to_requests(engine, rho=1.3, time_origin=hour_idx * 3600.0)
    rng = np.random.default_rng(1)
    fleet = [Taxi(taxi_id=i, capacity=3, loc=int(rng.integers(network.num_vertices)))
             for i in range(35)]
    sim = Simulator(scheme, fleet, requests, payment=PaymentModel())
    sim.run()
    print()
    print(run_report(sim))

    # --- stage 5: render what happened ---------------------------------
    viz.save(viz.render_partitions(network, partitioning),
             out_dir / "partitions.svg")
    pickups = np.zeros(network.num_vertices)
    np.add.at(pickups, history.origins, 1.0)
    viz.save(viz.render_demand(network, pickups, title="historical pick-ups"),
             out_dir / "demand.svg")
    # The three longest completed shared routes.
    trips = sorted(sim.log.completed(), key=lambda t: -t.shared_travel_cost)[:3]
    routes = [engine.path(t.request.origin, t.request.destination) for t in trips]
    markers = [t.request.origin for t in trips] + [t.request.destination for t in trips]
    viz.save(viz.render_routes(network, routes, markers=markers,
                               title="longest shared trips (direct paths)"),
             out_dir / "routes.svg")
    print(f"\nSVG renderings written to {out_dir}/")


if __name__ == "__main__":
    main()
