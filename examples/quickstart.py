#!/usr/bin/env python3
"""Quickstart: dispatch one hour of ride requests with mT-Share.

Builds a small synthetic city, mines a week of taxi history for the
bipartite map partitioning, runs the mT-Share dispatcher over the
morning-peak workload and prints the headline service metrics next to
the No-Sharing baseline.

Run:  python examples/quickstart.py
"""

from repro import PaymentModel, ScenarioSpec, Simulator, get_scenario


def main() -> None:
    # A scenario bundles the road network, the mined trip history and
    # the evaluation workload.  This one is small enough to run in a
    # few seconds.
    spec = ScenarioSpec(
        kind="peak",
        grid_rows=14,
        grid_cols=14,
        hourly_requests=400,
        history_days=3,
        num_partitions=20,
        seed=11,
    )
    scenario = get_scenario(spec)
    requests = scenario.requests()
    print(
        f"City: {scenario.network.num_vertices} intersections, "
        f"{scenario.network.num_edges} road segments"
    )
    print(f"Workload: {len(requests)} ride requests in the peak hour\n")

    for scheme_name in ("no-sharing", "mt-share"):
        scheme = scenario.make_scheme(scheme_name)
        fleet = scenario.make_fleet(num_taxis=40, capacity=3, seed=0)
        simulator = Simulator(scheme, fleet, requests, payment=PaymentModel())
        metrics = simulator.run()
        s = metrics.summary()
        print(f"--- {scheme.name}")
        print(f"  served requests : {s['served']} / {metrics.num_requests}")
        print(f"  response time   : {s['response_ms']:.3f} ms per request")
        print(f"  waiting time    : {s['waiting_min']:.2f} min")
        print(f"  detour time     : {s['detour_min']:.2f} min")
        if s["fare_saving_pct"]:
            print(f"  passenger saving: {s['fare_saving_pct']:.1f} %")
            print(f"  driver gain     : {s['driver_gain_pct']:.1f} %")
        print()


if __name__ == "__main__":
    main()
