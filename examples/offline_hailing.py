#!/usr/bin/env python3
"""Offline street-hailing: probabilistic routing in the non-peak hours.

Reproduces the paper's central non-peak story (Figs. 10 and 16): a
weekend late-morning where a third of the passengers never open the
booking app — they stand at the roadside and wave.  The dispatcher only
learns about them when a taxi passes by, so mT-Share_pro plans
probability-seeking routes (and sends idle taxis cruising towards
historically hot pick-up spots) to meet them.

Run:  python examples/offline_hailing.py
"""

from repro import PaymentModel, Simulator, get_scenario
from repro.sim import nonpeak_spec


def main() -> None:
    spec = nonpeak_spec(
        grid_rows=16,
        grid_cols=16,
        hourly_requests=600,
        history_days=3,
        num_partitions=25,
        offline_count=110,
        seed=4,
    )
    scenario = get_scenario(spec)
    requests = scenario.requests()
    online = sum(1 for r in requests if not r.offline)
    offline = len(requests) - online
    print(
        f"Non-peak hour: {online} online bookings + {offline} street hails "
        f"(hidden from the dispatcher)\n"
    )

    header = (
        f"{'scheme':14s} {'online':>7s} {'offline':>8s} {'total':>6s} "
        f"{'resp_ms':>8s} {'detour_min':>11s}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for name in ("t-share", "pgreedydp", "mt-share", "mt-share-pro"):
        scheme = scenario.make_scheme(name)
        fleet = scenario.make_fleet(50, seed=1)
        m = Simulator(scheme, fleet, requests, payment=PaymentModel()).run()
        rows[name] = m
        print(
            f"{scheme.name:14s} {m.served_online:7d} {m.served_offline:8d} "
            f"{m.served:6d} {m.avg_response_ms:8.3f} {m.avg_detour_min:11.2f}"
        )

    basic = rows["mt-share"]
    pro = rows["mt-share-pro"]
    if basic.served:
        gain = 100.0 * (pro.served / basic.served - 1.0)
        print(
            f"\nProbabilistic routing serves {gain:+.1f}% more requests than "
            "plain mT-Share\n(the paper reports +13% to +24%); the extra "
            "response time is the cost of\ncorridor enumeration "
            "(paper: 2.5-4.5x slower)."
        )


if __name__ == "__main__":
    main()
