"""Stage timers and counters: the aggregation core of ``repro.obs``.

The dispatcher's hot path is instrumented with *stages* (named wall-time
spans recorded with :func:`time.perf_counter`) and *counters* (named
monotone tallies / end-of-run gauges).  Everything aggregates into an
:class:`Instrumentation` registry that the simulator snapshots into
:class:`~repro.sim.metrics.SimulationMetrics` when a run finishes.

Design constraints, in order:

1. **Low overhead.**  A stage enter/exit is two ``perf_counter`` calls,
   one dict lookup and four float updates; a counter bump is a single
   dict ``+=``.  Components that would otherwise record events at very
   high frequency (the shortest-path engine's cache, the insertion
   enumerator) keep plain integer tallies locally and report them in
   bulk — once per call or once per run — instead of once per event.
2. **Zero-cost opt-out.**  Every instrumented component holds
   :data:`NULL` (a :class:`NullInstrumentation`) until the simulator
   attaches a live registry, so library users who drive the matcher or
   routers directly pay a no-op method call at most.
3. **Nesting-aware.**  Stages may nest (``match.planning`` encloses
   ``route.basic`` / ``route.probabilistic``); timings are *inclusive*
   and the registry tracks the stack so traces can attribute events to
   the innermost open stage.
"""

from __future__ import annotations

from time import perf_counter

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "StageStats",
    "NULL",
]


class StageStats:
    """Aggregate wall-time statistics of one named stage."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, dt: float) -> None:
        """Fold one measured span into the aggregate."""
        self.count += 1
        self.total_s += dt
        if dt < self.min_s:
            self.min_s = dt
        if dt > self.max_s:
            self.max_s = dt

    @property
    def mean_s(self) -> float:
        """Mean span duration in seconds (0 when never recorded)."""
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-type snapshot (JSON-serialisable)."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }

    def merge(self, other: "StageStats") -> None:
        """Fold another aggregate into this one."""
        if other.count == 0:
            return
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StageStats(count={self.count}, total_s={self.total_s:.6f}, "
            f"mean_s={self.mean_s:.6f})"
        )


class _StageHandle:
    """Context manager measuring one span of a named stage."""

    __slots__ = ("_instr", "_name", "_t0")

    def __init__(self, instr: "Instrumentation", name: str) -> None:
        self._instr = instr
        self._name = name

    def __enter__(self) -> "_StageHandle":
        self._instr._stack.append(self._name)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dt = perf_counter() - self._t0
        self._instr._stack.pop()
        self._instr.record(self._name, dt)


class Instrumentation:
    """Registry of stage timings, counters and (optional) trace events.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.obs.trace.JsonlTraceWriter`; when given,
        every stage exit and every :meth:`event` call is appended to the
        structured JSONL trace as well as aggregated.
    """

    enabled = True

    def __init__(self, trace=None) -> None:
        self.stages: dict[str, StageStats] = {}
        self.counters: dict[str, int] = {}
        self._stack: list[str] = []
        self._trace = trace
        #: Number of aggregation operations performed (stage records plus
        #: counter bumps) — the basis of the overhead accounting tested in
        #: ``tests/test_obs.py``.
        self.ops = 0

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def stage(self, name: str) -> _StageHandle:
        """A context manager timing one span of stage ``name``."""
        return _StageHandle(self, name)

    def record(self, name: str, dt: float) -> None:
        """Fold an externally measured span into stage ``name``."""
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        stats.add(dt)
        self.ops += 1
        if self._trace is not None:
            self._trace.emit({"ev": "stage", "name": name, "dt_s": dt})

    @property
    def current_stage(self) -> str | None:
        """Innermost open stage, or ``None`` outside any stage."""
        return self._stack[-1] if self._stack else None

    @property
    def stage_depth(self) -> int:
        """Number of currently open (nested) stages."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n
        self.ops += 1

    def gauge(self, name: str, value: int | float) -> None:
        """Set counter ``name`` to an absolute value (end-of-run levels)."""
        self.counters[name] = int(value)
        self.ops += 1

    # ------------------------------------------------------------------
    # trace
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """Whether a JSONL trace is attached."""
        return self._trace is not None

    def event(self, kind: str, **fields) -> None:
        """Append a structured event to the trace (no-op when not tracing)."""
        if self._trace is not None:
            payload = {"ev": kind}
            if self._stack:
                payload["stage"] = self._stack[-1]
            payload.update(fields)
            self._trace.emit(payload)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def stage_snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict copy of every stage aggregate."""
        return {name: stats.as_dict() for name, stats in self.stages.items()}

    def counter_snapshot(self) -> dict[str, int]:
        """Plain-dict copy of every counter."""
        return dict(self.counters)

    def close(self) -> None:
        """Flush and close the trace writer, if any."""
        if self._trace is not None:
            self._trace.close()


class _NullStage:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_STAGE = _NullStage()


class NullInstrumentation(Instrumentation):
    """No-op registry: every probe degenerates to a constant method call.

    Components hold this by default so instrumentation is free unless a
    simulator (or a test) attaches a live :class:`Instrumentation`.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace=None)

    def stage(self, name: str) -> _NullStage:  # type: ignore[override]
        return _NULL_STAGE

    def record(self, name: str, dt: float) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None

    def gauge(self, name: str, value: int | float) -> None:
        return None

    def event(self, kind: str, **fields) -> None:
        return None


#: Process-wide shared no-op registry (components' default ``_obs``).
NULL = NullInstrumentation()
