"""``repro.obs`` — per-stage dispatch observability.

The paper's evaluation separates candidate searching, schedule
enumeration and route planning (Table III, Figs. 7/11); a single
end-to-end response time cannot tell which of them dominates.  This
package gives every dispatch component a common, low-overhead way to
report *stage timings* and *counters*:

==============================  =======================================
Stage                           Measured span
==============================  =======================================
``sim.dispatch``                one full dispatch call (per request)
``match.candidates``            candidate taxi searching (Eq. 3)
``match.insertion``             ``_best_insertion`` enumeration (Alg. 1)
``match.planning``              route planning for the top candidates
``route.basic``                 one basic route build (Alg. 3)
``route.probabilistic``         one probabilistic route build (Alg. 4)
==============================  =======================================

``match.planning`` *encloses* the ``route.*`` stages — timings are
inclusive, and the registry tracks the nesting stack.

Headline counters: ``spe.cache_hits`` / ``spe.cache_misses`` (shortest
path engine source-tree cache), ``match.insertions_evaluated``,
``match.candidates_found``, ``match.routes_planned``,
``sim.encounters_scanned``, ``sim.taxi_advances`` /
``sim.stop_notifications`` (index-refresh pressure), and the end-of-run
index gauges (``index.partition_entries``, ``index.clusters``).

Fault-injection runs (``repro.faults``, docs/ROBUSTNESS.md) add the
``fault.*`` family — ``fault.breakdowns``, ``fault.cancellations``,
``fault.continuations``, ``fault.redispatches``, ``fault.stranded``,
``fault.shock_delays`` — plus ``sim.unsettled_episodes`` for episodes
force-settled at the drain-horizon cutoff.  The matching trace events
(``breakdown``, ``cancel``, ``continuation``, ``stranded``, ``shock``,
``unsettled_episode``) carry the affected taxi/request ids and the
simulation time.

Usage: the simulator owns an :class:`Instrumentation` (or a caller
passes one, optionally wrapping a :class:`JsonlTraceWriter`), attaches
it to the scheme via ``scheme.instrument(obs)`` and snapshots the
aggregates into ``SimulationMetrics.stages`` / ``.counters`` at the end
of the run.  Components default to the shared no-op :data:`NULL`
registry, so un-instrumented use stays free.  See
``docs/OBSERVABILITY.md``.
"""

from .registry import NULL, Instrumentation, NullInstrumentation, StageStats
from .trace import JsonlTraceWriter

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "StageStats",
    "JsonlTraceWriter",
    "NULL",
]
