"""Structured JSONL event tracing for dispatch observability.

When enabled (``python -m repro simulate --trace events.jsonl``), every
stage exit and every simulator-level event (dispatches, offline
encounters) is appended to a JSON-Lines file: one self-describing JSON
object per line, cheap to grep, stream and load into pandas.  Writing is
buffered so tracing stays off the dispatch critical path as much as a
synchronous file can be.
"""

from __future__ import annotations

import json
from typing import IO

__all__ = ["JsonlTraceWriter"]


class JsonlTraceWriter:
    """Buffered JSON-Lines writer for instrumentation events.

    Parameters
    ----------
    path:
        Output file, truncated on open.
    buffer_lines:
        Number of events buffered before a physical write.
    """

    def __init__(self, path: str, buffer_lines: int = 1024) -> None:
        self._path = str(path)
        self._buffer_lines = max(1, int(buffer_lines))
        self._buf: list[str] = []
        self._fh: IO[str] | None = open(self._path, "w", encoding="utf-8")
        self.events_written = 0

    @property
    def path(self) -> str:
        """The trace file path."""
        return self._path

    def emit(self, payload: dict) -> None:
        """Queue one event (a JSON-serialisable dict)."""
        if self._fh is None:
            raise ValueError(f"trace writer for {self._path!r} is closed")
        self._buf.append(json.dumps(payload, separators=(",", ":")))
        self.events_written += 1
        if len(self._buf) >= self._buffer_lines:
            self.flush()

    def flush(self) -> None:
        """Write buffered events to disk."""
        if self._buf and self._fh is not None:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf.clear()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
