"""Policy-agnostic discrete-event kernel.

The kernel owns the three things every event-driven simulation needs
and nothing else (the ab-sim design: *"Engine is framework-like —
events + queue + time; knows nothing about TNCs"*):

* an **event queue**, heap-ordered with a stable ``(time, priority,
  seq)`` tie-break so equal-time events fire in scheduling order;
* the **committed clock** — monotone by construction, because events
  can only be scheduled at or after ``now`` and are popped in heap
  order;
* a **named-RNG registry** — every consumer of randomness asks for a
  stream by name and gets a generator whose seed is derived from
  ``(root_seed, name)``, so adding a new consumer never perturbs the
  draws of an existing one.

Domain logic lives in *handlers* registered per event kind: the
:class:`~repro.sim.engine.Simulator` subscribes its request-release and
drain-tick handlers, the streaming façade (:mod:`repro.service`) feeds
the same queue incrementally, and tests can drive the kernel bare.
The kernel never imports the fleet, the schemes or the metrics.

Event taxonomy (see docs/ARCHITECTURE.md):

``request.release``
    A ride request becomes visible at its release instant; payload is
    the :class:`~repro.demand.request.RideRequest`.
``drain.tick``
    A fixed-step clock tick after the last release, driving schedules
    to completion; payload is the drain deadline.
``window.tick``
    A dispatch-window boundary: the simulator flushes every online
    request buffered since the previous boundary through the batching
    scheme's whole-window matcher (the ``window-lap`` scheme); no
    payload.
``rebalance.tick``
    A proactive-repositioning boundary: the simulator censuses
    per-partition idle supply against predicted near-future demand and
    steers surplus idle taxis onto cruise routes toward deficit-zone
    landmarks (:mod:`repro.fleet.rebalance`); no payload.
``timer``
    Generic reusable kind for service/test timers.

The kind strings and their same-instant priorities live in one central
table (:mod:`repro.sim.events`); the constants below are re-exports so
existing ``from repro.sim.kernel import WINDOW_TICK`` imports keep
working.  Schedule sites take priorities from
:func:`repro.sim.events.priority_of`, and the deep lint's protocol
checker (REP105) enforces both statically.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .events import (
    DRAIN_TICK,
    EVENT_TABLE,
    REBALANCE_TICK,
    REQUEST_RELEASE,
    TIMER,
    WINDOW_TICK,
)

__all__ = [
    "DRAIN_TICK",
    "EVENT_TABLE",
    "REBALANCE_TICK",
    "REQUEST_RELEASE",
    "TIMER",
    "WINDOW_TICK",
    "Event",
    "EventQueue",
    "Kernel",
    "KernelError",
    "RngRegistry",
    "ScheduledInPast",
]


class KernelError(RuntimeError):
    """Invalid use of the event kernel."""


class ScheduledInPast(KernelError):
    """An event was scheduled before the committed clock.

    The kernel refuses instead of silently reordering: a caller that
    can legitimately receive late input (the streaming façade) must
    decide its own admission policy — reject the event or clamp it to
    ``now`` — before it reaches the queue.
    """


@dataclass(frozen=True, slots=True)
class Event:
    """One scheduled occurrence.

    Ordering is ``(time, priority, seq)``: time first, then an explicit
    priority for same-instant phases, then the monotone scheduling
    sequence number as the stable tie-break.
    """

    time: float
    kind: str
    seq: int
    payload: Any = None
    priority: int = 0

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """The heap ordering key."""
        return (self.time, self.priority, self.seq)


class EventQueue:
    """A binary heap of events with a stable total order."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, int], Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event (heap-ordered, duplicates allowed)."""
        heapq.heappush(self._heap, (event.sort_key, event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise KernelError("pop from an empty event queue")
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Event:
        """The earliest event without removing it."""
        if not self._heap:
            raise KernelError("peek into an empty event queue")
        return self._heap[0][1]

    def peek_time(self) -> float | None:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][1].time if self._heap else None


class RngRegistry:
    """Named, independently seeded random streams.

    ``stream(name)`` memoises one :class:`numpy.random.Generator` per
    name, seeded by ``sha256(f"{root_seed}:{name}")`` — stable across
    processes and platforms, independent of registration order, and
    collision-free for practical purposes.  A new named consumer never
    changes the draws an existing consumer sees, which is the property
    ad-hoc ``seed + k`` schemes lose.
    """

    __slots__ = ("_root_seed", "_streams")

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        """The seed every named stream is derived from."""
        return self._root_seed

    def seed_for(self, name: str) -> int:
        """The derived 128-bit seed material of one named stream."""
        digest = hashlib.sha256(f"{self._root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:16], "big")

    def stream(self, name: str) -> np.random.Generator:
        """The (memoised) generator of one named stream."""
        rng = self._streams.get(name)
        if rng is None:
            rng = np.random.default_rng(np.random.SeedSequence(self.seed_for(name)))
            self._streams[name] = rng
        return rng

    def names(self) -> list[str]:
        """Streams handed out so far, sorted."""
        return sorted(self._streams)


@dataclass
class Kernel:
    """Event queue + committed clock + RNG registry.

    Parameters
    ----------
    start_time:
        Initial committed clock value.
    seed:
        Root seed of the named-RNG registry.

    Handlers subscribe per event kind and run in subscription order.
    ``run()`` pops events until the queue is empty (or a bound is hit),
    committing the clock to each event's time before its handlers fire;
    a handler may schedule further events at or after the committed
    clock, which keeps the clock monotone by construction.
    """

    start_time: float = 0.0
    seed: int = 0
    _queue: EventQueue = field(default_factory=EventQueue)
    _handlers: dict[str, list[Callable[[Event], None]]] = field(default_factory=dict)
    _seq: "itertools.count[int]" = field(default_factory=itertools.count)
    _now: float = 0.0
    _processed: int = 0
    _scheduled: int = 0
    _rng: RngRegistry | None = None

    def __post_init__(self) -> None:
        self._now = float(self.start_time)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The committed clock: the time of the last dispatched event."""
        return self._now

    @property
    def pending(self) -> int:
        """Events scheduled but not yet dispatched."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Events dispatched so far."""
        return self._processed

    @property
    def events_scheduled(self) -> int:
        """Events accepted into the queue so far."""
        return self._scheduled

    @property
    def rng(self) -> RngRegistry:
        """The named-RNG registry (created lazily from ``seed``)."""
        if self._rng is None:
            self._rng = RngRegistry(self.seed)
        return self._rng

    def peek_time(self) -> float | None:
        """Time of the next pending event, or ``None``."""
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    def subscribe(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register a handler for one event kind (append order is call order)."""
        self._handlers.setdefault(kind, []).append(handler)

    def schedule(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Enqueue an event at ``time`` (must be >= the committed clock).

        Raises :class:`ScheduledInPast` for earlier times — admission
        policy for genuinely late input belongs to the caller.
        """
        t = float(time)
        if t < self._now:
            raise ScheduledInPast(
                f"cannot schedule {kind!r} at {t}: clock already committed to {self._now}"
            )
        event = Event(time=t, kind=kind, seq=next(self._seq), payload=payload, priority=priority)
        self._queue.push(event)
        self._scheduled += 1
        return event

    # ------------------------------------------------------------------
    def step(self) -> Event | None:
        """Dispatch the single earliest event; ``None`` when idle."""
        if not self._queue:
            return None
        event = self._queue.pop()
        self._now = event.time
        self._processed += 1
        for handler in self._handlers.get(event.kind, ()):
            handler(event)
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Dispatch pending events in order; returns the number dispatched.

        ``until`` stops *before* dispatching any event later than the
        bound (the clock commits at most to ``until``); ``max_events``
        bounds the number of dispatches.
        """
        dispatched = 0
        while self._queue:
            if until is not None and self._queue.peek().time > until:
                break
            if max_events is not None and dispatched >= max_events:
                break
            self.step()
            dispatched += 1
        return dispatched
