"""Simulation engine, metrics, and experiment scenarios."""

from .engine import Simulator
from .metrics import SimulationMetrics
from .scenario import (
    SCHEME_NAMES,
    SCHEME_REGISTRY,
    Scenario,
    ScenarioSpec,
    SchemeInfo,
    get_scenario,
    nonpeak_spec,
    peak_spec,
)

__all__ = [
    "SCHEME_NAMES",
    "SCHEME_REGISTRY",
    "Scenario",
    "ScenarioSpec",
    "SchemeInfo",
    "SimulationMetrics",
    "Simulator",
    "get_scenario",
    "nonpeak_spec",
    "peak_spec",
]
