"""Simulation engine, metrics, and experiment scenarios."""

from .engine import Simulator
from .metrics import SimulationMetrics
from .scenario import (
    SCHEME_NAMES,
    Scenario,
    ScenarioSpec,
    get_scenario,
    nonpeak_spec,
    peak_spec,
)

__all__ = [
    "SCHEME_NAMES",
    "Scenario",
    "ScenarioSpec",
    "SimulationMetrics",
    "Simulator",
    "get_scenario",
    "nonpeak_spec",
    "peak_spec",
]
