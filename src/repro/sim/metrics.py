"""Metric collection for simulation runs (Section V-A3 of the paper).

The paper evaluates four headline metrics — number of served requests,
response time, detour time, waiting time — plus candidate-set sizes
(Table III), index/memory overheads (Table IV) and the monetary effects
of the payment model (Fig. 19).  :class:`SimulationMetrics` accumulates
the raw samples during a run and exposes the aggregates the benchmarks
print.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass
class RunningStat:
    """Constant-memory mean aggregate of one sample stream.

    Raw sample lists grow with the workload; a long-lived streaming
    service (:mod:`repro.service`) caps them (``sample_cap``) and the
    derived averages fall back to these running aggregates, which cost
    two floats regardless of how many samples went through.
    """

    count: int = 0
    total: float = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the aggregate."""
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all samples seen (0 when empty)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class SimulationMetrics:
    """Raw samples and derived aggregates for one simulation run."""

    scheme_name: str = ""
    num_requests: int = 0
    num_online: int = 0
    num_offline: int = 0

    served_online: int = 0
    served_offline: int = 0
    completed: int = 0
    #: Offline requests whose pick-up deadline passed unserved (the
    #: passenger gave up street-hailing).  Counted when a scanning taxi
    #: detects the expiry and swept up at end of run for requests no
    #: taxi ever passed, so the request balance always closes.
    expired_offline: int = 0
    #: Online requests the dispatcher could not match.
    unserved_online: int = 0
    #: Offline requests still waiting (deadline not yet reached) when
    #: the simulation ended.
    unserved_offline: int = 0

    # -- fault-injection buckets (repro.faults; docs/ROBUSTNESS.md) ----
    #: Taxis taken out of service by an injected breakdown.
    breakdowns: int = 0
    #: Matched requests withdrawn by the passenger before pick-up.
    cancelled_online: int = 0
    cancelled_offline: int = 0
    #: Requests successfully moved to another taxi after a breakdown
    #: (assigned re-dispatches and onboard continuations alike).
    reassigned: int = 0
    #: Requests whose passengers could not be recovered after a
    #: breakdown — no taxi accepted the re-dispatch/continuation.
    stranded_online: int = 0
    stranded_offline: int = 0
    #: Continuation requests issued for passengers dropped mid-trip.
    continuations: int = 0
    #: Taxis delayed by zonal travel-time shock windows.
    shock_delays: int = 0
    #: Ridesharing episodes still open when the drain horizon cut the
    #: run; they are force-settled at the cutoff so fares are conserved.
    unsettled_episodes: int = 0

    # -- streaming-service admission buckets (repro.service) -----------
    #: Requests refused at the service boundary (duplicate delivery,
    #: arrival after the committed clock, backpressure on a full
    #: in-flight queue) — they enter ``num_*`` but never reach the
    #: dispatcher, so they form their own terminal accounting bucket.
    rejected_online: int = 0
    rejected_offline: int = 0

    response_times_s: list[float] = field(default_factory=list)
    waiting_times_s: list[float] = field(default_factory=list)
    detour_times_s: list[float] = field(default_factory=list)
    candidate_counts: list[int] = field(default_factory=list)

    #: When set, the raw sample lists above stop growing at this length
    #: (the running aggregates keep counting), bounding resident memory
    #: for soak-length runs.  ``None`` (the default) retains everything,
    #: which the determinism fingerprints rely on.
    sample_cap: int | None = None
    response_stat: RunningStat = field(default_factory=RunningStat)
    waiting_stat: RunningStat = field(default_factory=RunningStat)
    detour_stat: RunningStat = field(default_factory=RunningStat)
    candidate_stat: RunningStat = field(default_factory=RunningStat)

    regular_fares: float = 0.0
    shared_fares: float = 0.0
    driver_incomes: float = 0.0
    route_fares: float = 0.0
    #: Online fare quoted to each passenger at drop-off time (Eq. 8
    #: with Eq. 7 projections for co-riders still aboard).
    quoted_fares: dict[int, float] = field(default_factory=dict)

    index_memory_bytes: int = 0
    wall_time_s: float = 0.0

    #: Per-stage dispatch timing aggregates from the observability layer
    #: (``repro.obs``): stage name -> {count, total_s, mean_s, min_s,
    #: max_s}.  See docs/OBSERVABILITY.md for the stage vocabulary.
    stages: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Observability counters and end-of-run gauges (cache hits/misses,
    #: insertion instances evaluated, encounters scanned, index sizes).
    counters: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # sample ingestion (cap-aware; the simulator routes through these)
    # ------------------------------------------------------------------
    def _add_sample(self, samples: list, stat: RunningStat, value) -> None:
        stat.add(value)
        if self.sample_cap is None or len(samples) < self.sample_cap:
            samples.append(value)

    def add_response(self, seconds: float) -> None:
        """Record one matching latency sample."""
        self._add_sample(self.response_times_s, self.response_stat, seconds)

    def add_waiting(self, seconds: float) -> None:
        """Record one pick-up waiting-time sample."""
        self._add_sample(self.waiting_times_s, self.waiting_stat, seconds)

    def add_detour(self, seconds: float) -> None:
        """Record one detour-time sample."""
        self._add_sample(self.detour_times_s, self.detour_stat, seconds)

    def add_candidates(self, count: int) -> None:
        """Record one candidate-set-size sample."""
        self._add_sample(self.candidate_counts, self.candidate_stat, count)

    @staticmethod
    def _stream_mean(samples: list, stat: RunningStat) -> float:
        """Mean over *all* samples: exact list mean while the list is
        complete (or was filled directly, bypassing the ``add_*``
        helpers), running aggregate once the cap truncated it."""
        n = len(samples)
        if n and stat.count in (0, n):
            return statistics.fmean(samples)
        return stat.mean

    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        """Total requests assigned to a taxi (online + offline)."""
        return self.served_online + self.served_offline

    @property
    def service_rate(self) -> float:
        """Fraction of all requests that were served."""
        return self.served / self.num_requests if self.num_requests else 0.0

    @property
    def unserved(self) -> int:
        """Requests neither served nor expired (failed or still waiting)."""
        return self.unserved_online + self.unserved_offline

    @property
    def cancelled(self) -> int:
        """Requests withdrawn by their passenger before pick-up."""
        return self.cancelled_online + self.cancelled_offline

    @property
    def stranded(self) -> int:
        """Requests lost to a breakdown that recovery could not re-place."""
        return self.stranded_online + self.stranded_offline

    @property
    def rejected(self) -> int:
        """Requests refused at the service admission boundary."""
        return self.rejected_online + self.rejected_offline

    @property
    def lazy_cache_hit_rate(self) -> float:
        """Shortest-path source-tree cache hit rate (1.0 in full mode)."""
        hits = self.counters.get("spe.cache_hits", 0)
        misses = self.counters.get("spe.cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def stage_total_ms(self, name: str) -> float:
        """Total wall time spent in one dispatch stage, in milliseconds."""
        stats = self.stages.get(name)
        return 1000.0 * stats["total_s"] if stats else 0.0

    def check_balance(self) -> None:
        """Verify the request accounting identity; raise on any leak.

        Every request must end in exactly one bucket::

            served_online + unserved_online + cancelled_online
                + stranded_online + rejected_online    == num_online
            served_offline + expired_offline + unserved_offline
                + cancelled_offline + stranded_offline
                + rejected_offline                     == num_offline

        The fault buckets are zero in fault-free runs and the rejected
        buckets are zero outside the streaming service, so the identity
        reduces to the original one.  The simulator calls this at the
        end of every run so a request silently vanishing (the pre-fix
        behaviour of expired offline requests) fails loudly instead of
        skewing the service rate.
        """
        online = (
            self.served_online
            + self.unserved_online
            + self.cancelled_online
            + self.stranded_online
            + self.rejected_online
        )
        offline = (
            self.served_offline
            + self.expired_offline
            + self.unserved_offline
            + self.cancelled_offline
            + self.stranded_offline
            + self.rejected_offline
        )
        if online != self.num_online or offline != self.num_offline:
            raise ValueError(
                "request accounting out of balance: "
                f"online {self.served_online}+{self.unserved_online}"
                f"+{self.cancelled_online}+{self.stranded_online}"
                f"+{self.rejected_online}"
                f"={online} vs {self.num_online}; "
                f"offline {self.served_offline}+{self.expired_offline}"
                f"+{self.unserved_offline}+{self.cancelled_offline}"
                f"+{self.stranded_offline}+{self.rejected_offline}"
                f"={offline} vs {self.num_offline}"
            )

    @property
    def avg_response_ms(self) -> float:
        """Mean matching latency per online request, in milliseconds."""
        if not self.response_times_s and not self.response_stat.count:
            return 0.0
        return 1000.0 * self._stream_mean(self.response_times_s, self.response_stat)

    @property
    def avg_waiting_min(self) -> float:
        """Mean pick-up wait of served requests, in minutes."""
        if not self.waiting_times_s and not self.waiting_stat.count:
            return 0.0
        return self._stream_mean(self.waiting_times_s, self.waiting_stat) / 60.0

    @property
    def avg_detour_min(self) -> float:
        """Mean extra on-board travel of completed trips, in minutes."""
        if not self.detour_times_s and not self.detour_stat.count:
            return 0.0
        return self._stream_mean(self.detour_times_s, self.detour_stat) / 60.0

    @property
    def avg_candidates(self) -> float:
        """Mean candidate-set size per dispatched request (Table III)."""
        if not self.candidate_counts and not self.candidate_stat.count:
            return 0.0
        return self._stream_mean(self.candidate_counts, self.candidate_stat)

    @property
    def fare_saving_pct(self) -> float:
        """Passenger fare saved versus riding alone, in percent (Fig. 19)."""
        if self.regular_fares <= 0:
            return 0.0
        return 100.0 * (1.0 - self.shared_fares / self.regular_fares)

    @property
    def driver_gain_pct(self) -> float:
        """Driver income above the metered route fare, in percent (Fig. 19)."""
        if self.route_fares <= 0:
            return 0.0
        return 100.0 * (self.driver_incomes / self.route_fares - 1.0)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """One-row summary used by the experiment harness."""
        return {
            "served": self.served,
            "served_online": self.served_online,
            "served_offline": self.served_offline,
            "expired_offline": self.expired_offline,
            "unserved": self.unserved,
            "breakdowns": self.breakdowns,
            "cancelled": self.cancelled,
            "reassigned": self.reassigned,
            "stranded": self.stranded,
            "rejected": self.rejected,
            "shock_delays": self.shock_delays,
            "unsettled_episodes": self.unsettled_episodes,
            "service_rate": round(self.service_rate, 4),
            "response_ms": round(self.avg_response_ms, 3),
            "waiting_min": round(self.avg_waiting_min, 3),
            "detour_min": round(self.avg_detour_min, 3),
            "candidates": round(self.avg_candidates, 2),
            "fare_saving_pct": round(self.fare_saving_pct, 2),
            "driver_gain_pct": round(self.driver_gain_pct, 2),
            "index_memory_kb": round(self.index_memory_bytes / 1024.0, 1),
            "stage_candidates_ms": round(self.stage_total_ms("match.candidates"), 3),
            "stage_insertion_ms": round(self.stage_total_ms("match.insertion"), 3),
            "stage_planning_ms": round(self.stage_total_ms("match.planning"), 3),
            "cache_hit_rate": round(self.lazy_cache_hit_rate, 4),
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        rows = self.summary()
        body = ", ".join(f"{k}={v}" for k, v in rows.items())
        return f"{self.scheme_name}: {body}"
