"""The central event kind/priority table — one row per scheduled kind.

Every event kind the kernel ever schedules is declared here, together
with its same-instant **priority** and at least one subscriber
somewhere in ``src/repro``.  The table is the single source of truth
for the event protocol: the kernel's re-exported kind constants
(:mod:`repro.sim.kernel`) come from this module, schedule sites take
their priority from :func:`priority_of`, and the deep lint's protocol
checker (``repro lint --deep``, REP105) statically enforces that no
caller schedules a kind missing from this table or with a priority
disagreeing with it.

Priorities resolve same-instant ordering *before* the scheduling
sequence number does, so they are protocol, not implementation detail.
The one non-zero row — ``window.tick`` at priority 1 — encodes the
PR 8 invariant: a request released exactly on a window boundary must
enter the *closing* window, in batch and streaming runs alike,
independent of event sequence numbers.  Before this table, that
invariant lived in a call-site literal and tribal knowledge; now a
schedule site that drops or contradicts it fails the lint.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DRAIN_TICK",
    "EVENT_TABLE",
    "EventSpec",
    "REBALANCE_TICK",
    "REQUEST_RELEASE",
    "TIMER",
    "WINDOW_TICK",
    "priority_of",
]

#: A ride request becomes visible to the dispatcher.
REQUEST_RELEASE = "request.release"

#: Fixed-step post-release tick draining open schedules.
DRAIN_TICK = "drain.tick"

#: Dispatch-window boundary flushing the batched online requests.
WINDOW_TICK = "window.tick"

#: Proactive-repositioning boundary steering surplus idle taxis.
REBALANCE_TICK = "rebalance.tick"

#: Generic timer event for services and tests.
TIMER = "timer"


@dataclass(frozen=True, slots=True)
class EventSpec:
    """One protocol row: an event kind, its priority, and its contract."""

    kind: str
    priority: int
    description: str


#: The protocol table.  Keys are the kind strings; values carry the
#: same-instant priority every schedule site must use (directly via
#: :func:`priority_of`, or as a literal the deep lint checks against
#: this table).
EVENT_TABLE: dict[str, EventSpec] = {
    REQUEST_RELEASE: EventSpec(
        REQUEST_RELEASE,
        priority=0,
        description="one ride request becomes visible at its release instant",
    ),
    DRAIN_TICK: EventSpec(
        DRAIN_TICK,
        priority=0,
        description="fixed-step post-release tick driving schedules to completion",
    ),
    WINDOW_TICK: EventSpec(
        WINDOW_TICK,
        # Priority 1: fires *after* any release sharing its instant, so
        # a boundary release always enters the closing window (PR 8).
        priority=1,
        description="dispatch-window boundary flushing the buffered releases",
    ),
    REBALANCE_TICK: EventSpec(
        REBALANCE_TICK,
        # Priority 2: fires after any release (0) or window flush (1)
        # sharing its instant, so the supply census sees the idle set
        # *after* every same-instant dispatch committed — in batch and
        # streaming runs alike.
        priority=2,
        description="proactive-repositioning boundary moving surplus idle taxis",
    ),
    TIMER: EventSpec(  # repro-lint: disable=REP105 reason=generic reusable kind; its subscribers are downstream service clients and the kernel tests, not src/repro
        TIMER,
        priority=0,
        description="generic reusable timer for services and tests",
    ),
}


def priority_of(kind: str) -> int:
    """The table priority of ``kind`` (KeyError for unknown kinds).

    Schedule sites that use ``priority=priority_of(KIND)`` are
    consistent with the table by construction; the protocol checker
    accepts them without further proof.
    """
    return EVENT_TABLE[kind].priority
