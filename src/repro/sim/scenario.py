"""Experiment scenarios: the peak and non-peak setups of Section V-A.

The paper carves two windows out of the Chengdu trace:

* **peak** — 8–9 a.m. of a busy workday (29,534 online requests; no
  offline requests, taxis are busy enough);
* **non-peak** — 10–11 a.m. of a weekend (15,480 requests of which
  5,000 are made *offline*, i.e. hidden street hails), where
  probabilistic routing earns its keep.

Everything else in the trace feeds bipartite map partitioning and the
transition probabilities.  This module reproduces that setup at a
configurable scale on the synthetic network/trace substrate, and
provides the scheme factory used by every benchmark.  Scenario
construction is expensive (all-pairs shortest paths, partitioning), so
built scenarios are memoised per spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..baselines import DispatchScheme, NoSharing, PGreedyDP, TShare
from ..config import SystemConfig
from ..core.mtshare import MTShare
from ..demand.dataset import TripDataset
from ..demand.generator import ChengduLikeDemand
from ..demand.request import RideRequest
from ..fleet.taxi import Taxi
from ..network.generators import grid_city
from ..network.graph import RoadNetwork
from ..network.shortest_path import ShortestPathEngine
from ..partitioning.bipartite import MapPartitioning, bipartite_partition, geo_partition
from ..partitioning.grid import grid_partition

#: Scheme-name keys accepted by :meth:`Scenario.make_scheme`.
SCHEME_NAMES = ("no-sharing", "t-share", "pgreedydp", "mt-share", "mt-share-pro")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Everything that determines a scenario, hashable for memoisation.

    The default sizes scale the paper's setup down by roughly 1/30 in
    request volume while preserving the request-per-taxi ratios that
    drive the comparative results (see DESIGN.md).
    """

    kind: str = "peak"  # "peak" or "nonpeak"
    grid_rows: int = 18
    grid_cols: int = 18
    spacing_m: float = 180.0
    hourly_requests: int = 1100
    history_days: int = 5
    offline_count: int = 190
    num_partitions: int = 36
    congestion: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.kind not in ("peak", "nonpeak"):
            raise ValueError("kind must be 'peak' or 'nonpeak'")
        if self.congestion <= 0:
            raise ValueError("congestion must be a positive speed factor")

    @property
    def window(self) -> tuple[int, int, bool]:
        """``(day, hour, weekend)`` of the evaluation window."""
        if self.kind == "peak":
            return (1, 8, False)  # workday, 8-9 a.m.
        return (5, 10, True)  # weekend, 10-11 a.m.


class Scenario:
    """A fully built experiment scenario.

    Attributes of interest: :attr:`network`, :attr:`engine`,
    :attr:`history` (the mined trips), :attr:`window_trips` (the
    evaluation hour), and the factories below.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        # The congestion factor rescales the constant travel speed for
        # the simulated window (traffic stays stable *within* a window,
        # as the paper assumes).
        from .. import config as _config

        self.network: RoadNetwork = grid_city(
            rows=spec.grid_rows,
            cols=spec.grid_cols,
            spacing_m=spec.spacing_m,
            speed_mps=_config.DEFAULT_SPEED_MPS * spec.congestion,
            seed=spec.seed,
        )
        self.engine = ShortestPathEngine(self.network)
        self.demand = ChengduLikeDemand(
            self.network,
            hourly_requests=spec.hourly_requests,
            seed=spec.seed,
        )
        day, hour, weekend = spec.window
        window_start = (day * 24 + hour) * 3600.0
        window_end = window_start + 3600.0

        # The evaluation window is generated with its own profile; the
        # remaining days feed the mining side, window excluded.  Enough
        # days are generated to cover both mining and the window day.
        num_days = max(spec.history_days + 2, day + 1)
        full = self.demand.generate_days(num_days, weekend_days={5, 6})
        self.window_trips: TripDataset = full.window(window_start, window_end)
        self.history: TripDataset = full.exclude_window(window_start, window_end)
        self._window_start = window_start
        self._partitionings: dict[tuple[str, int], MapPartitioning] = {}

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"peak"`` or ``"nonpeak"``."""
        return self.spec.kind

    def default_config(self, **overrides) -> SystemConfig:
        """The paper's defaults adapted to this scenario's scale.

        The static searching range ``gamma`` is scaled with the city
        width (2.5 km on Chengdu's ~9.4 km-wide 2nd-ring area maps to
        about 1.25 km here); mT-Share itself derives its range from
        Eq. 2 unless an experiment overrides that.
        """
        width = float(
            max(self.network.xy[:, 0].max() - self.network.xy[:, 0].min(), 1.0)
        )
        base = SystemConfig(
            num_partitions=self.spec.num_partitions,
            search_range_m=round(2500.0 * width / 9400.0, 0),
            speed_mps=self.network.speed_mps,
        )
        return base.replace(**overrides) if overrides else base

    def requests(
        self,
        rho: float = 1.3,
        offline_count: int | None = None,
        seed: int = 0,
    ) -> list[RideRequest]:
        """The evaluation workload.

        ``offline_count`` defaults to the spec's value in the non-peak
        scenario and to 0 in the peak scenario (the paper ignores
        offline requests at peak).
        """
        if offline_count is None:
            offline_count = self.spec.offline_count if self.kind == "nonpeak" else 0
        offline_count = min(offline_count, len(self.window_trips))
        return self.window_trips.to_requests(
            self.engine,
            rho=rho,
            offline_count=offline_count,
            time_origin=self._window_start,
            seed=seed,
        )

    def make_fleet(
        self,
        num_taxis: int,
        capacity: int = 3,
        seed: int = 0,
    ) -> list[Taxi]:
        """Taxis parked at uniformly random vertices (Section V-A4)."""
        rng = np.random.default_rng(seed)
        locs = rng.integers(0, self.network.num_vertices, size=num_taxis)
        return [
            Taxi(taxi_id=i, capacity=capacity, loc=int(locs[i])) for i in range(num_taxis)
        ]

    def partitioning(
        self,
        method: str = "bipartite",
        num_partitions: int | None = None,
        num_transition_clusters: int = 20,
    ) -> MapPartitioning:
        """Build (and memoise) a map partitioning over this network."""
        kappa = num_partitions if num_partitions is not None else self.spec.num_partitions
        key = (method, kappa)
        cached = self._partitionings.get(key)
        if cached is not None:
            return cached
        trips = self.history.od_pairs()
        if method == "bipartite":
            part = bipartite_partition(
                self.network,
                trips,
                num_partitions=kappa,
                num_transition_clusters=min(num_transition_clusters, max(2, kappa - 1)),
                seed=self.spec.seed,
            )
        elif method == "grid":
            part = grid_partition(self.network, kappa, historical_trips=trips)
        elif method == "geo":
            part = geo_partition(
                self.network, kappa, historical_trips=trips, seed=self.spec.seed
            )
        else:
            raise ValueError(f"unknown partitioning method {method!r}")
        self._partitionings[key] = part
        return part

    def _probabilistic_router(self, config: SystemConfig):
        """A ProbabilisticRouter over this scenario's bipartite partitions."""
        from ..core.partition_filter import PartitionFilter
        from ..core.routing import ProbabilisticRouter
        from ..network.landmarks import LandmarkGraph

        part = self.partitioning("bipartite", config.num_partitions)
        landmarks = LandmarkGraph(self.network, part.partitions, self.engine)
        pfilter = PartitionFilter(landmarks, lam=config.lam, epsilon=config.epsilon)
        router = ProbabilisticRouter(
            self.network,
            self.engine,
            pfilter,
            part.transition_model,
            lam=config.lam,
            max_attempts=config.max_probabilistic_attempts,
            steering_m=config.prob_steering_m,
        )
        if config.use_demand_prediction:
            router.demand_predictor = self.demand_predictor(part)
        return router

    def demand_predictor(self, partitioning: MapPartitioning):
        """An hour-aware pick-up predictor fitted on this scenario's history."""
        from ..demand.prediction import DemandPredictor

        key = ("predictor", partitioning.num_partitions)
        cached = self._partitionings.get(key)
        if cached is None:
            cached = DemandPredictor.fit(
                self.history, partitioning.labels, partitioning.num_partitions
            )
            self._partitionings[key] = cached
        return cached

    def make_scheme(
        self,
        name: str,
        config: SystemConfig | None = None,
        partition_method: str = "bipartite",
        probabilistic: bool = False,
    ) -> DispatchScheme:
        """Instantiate a dispatch scheme by its report name.

        ``probabilistic=True`` attaches probabilistic routing to a
        baseline scheme (the Fig. 16 combinations); for mT-Share use
        the ``"mt-share-pro"`` name instead.
        """
        config = config if config is not None else self.default_config()
        key = name.lower()
        scheme: DispatchScheme
        if key == "no-sharing":
            scheme = NoSharing(self.network, self.engine, config)
        elif key == "t-share":
            scheme = TShare(self.network, self.engine, config)
        elif key == "pgreedydp":
            scheme = PGreedyDP(self.network, self.engine, config)
        elif key in ("mt-share", "mt-share-pro"):
            part = self.partitioning(partition_method, config.num_partitions)
            probabilistic_variant = key == "mt-share-pro"
            return MTShare(
                self.network,
                self.engine,
                config,
                part,
                probabilistic=probabilistic_variant,
                demand_predictor=(
                    self.demand_predictor(part)
                    if probabilistic_variant and config.use_demand_prediction
                    else None
                ),
            )
        else:
            raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}")
        if probabilistic:
            scheme.enable_probabilistic(self._probabilistic_router(config))
            scheme.name = f"{scheme.name}+prob"
        return scheme


@lru_cache(maxsize=8)
def get_scenario(spec: ScenarioSpec) -> Scenario:
    """Memoised scenario builder (network + APSP + trace are expensive)."""
    return Scenario(spec)


def peak_spec(**overrides) -> ScenarioSpec:
    """The default peak-scenario spec, optionally overridden."""
    return ScenarioSpec(kind="peak", **overrides)


def nonpeak_spec(**overrides) -> ScenarioSpec:
    """The default non-peak-scenario spec, optionally overridden."""
    return ScenarioSpec(kind="nonpeak", **overrides)
