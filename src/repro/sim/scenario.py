"""Experiment scenarios: the peak and non-peak setups of Section V-A.

The paper carves two windows out of the Chengdu trace:

* **peak** — 8–9 a.m. of a busy workday (29,534 online requests; no
  offline requests, taxis are busy enough);
* **non-peak** — 10–11 a.m. of a weekend (15,480 requests of which
  5,000 are made *offline*, i.e. hidden street hails), where
  probabilistic routing earns its keep.

Everything else in the trace feeds bipartite map partitioning and the
transition probabilities.  This module reproduces that setup at a
configurable scale on the synthetic network/trace substrate, and
provides the scheme factory used by every benchmark.  Scenario
construction is expensive (trace synthesis, all-pairs shortest paths,
partitioning), so built scenarios are memoised per spec in a bounded
LRU cache, and every expensive preprocessing product is persisted in
the content-addressed artifact store (:mod:`repro.artifacts`) so warm
processes load it back — memory-mapped where possible — instead of
recomputing.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from .. import artifacts
from ..baselines import DispatchScheme, NoSharing, PGreedyDP, TShare
from ..config import SystemConfig
from ..core.mtshare import MTShare
from ..demand.dataset import TripDataset
from ..demand.generator import ChengduLikeDemand
from ..demand.request import RideRequest
from ..fleet.taxi import Taxi
from ..network.generators import grid_city
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.ch import CH_FORMAT_VERSION
from ..network.shortest_path import ShortestPathEngine, resolve_sp_mode
from ..partitioning.bipartite import MapPartitioning, bipartite_partition, geo_partition
from ..partitioning.grid import grid_partition

#: Environment variable bounding the in-process scenario cache.
SCENARIO_CACHE_ENV = "REPRO_SCENARIO_CACHE"

#: Default number of built scenarios kept resident.
DEFAULT_SCENARIO_CACHE_SIZE = 8

@dataclass(frozen=True, slots=True)
class SchemeInfo:
    """One registered dispatch scheme: key, one-line summary, factory.

    The registry below is the *single* source of scheme names: it
    drives :data:`SCHEME_NAMES`, :meth:`Scenario.make_scheme`, the CLI
    ``--scheme`` choices and the ``repro list`` report.  Adding a
    scheme is one table entry, not four parallel edits.
    """

    key: str
    summary: str
    factory: "Callable[[Scenario, SystemConfig, str], DispatchScheme]"


def _make_no_sharing(
    scenario: "Scenario", config: SystemConfig, partition_method: str
) -> DispatchScheme:
    return NoSharing(scenario.network, scenario.engine, config)


def _make_t_share(
    scenario: "Scenario", config: SystemConfig, partition_method: str
) -> DispatchScheme:
    return TShare(scenario.network, scenario.engine, config)


def _make_pgreedydp(
    scenario: "Scenario", config: SystemConfig, partition_method: str
) -> DispatchScheme:
    return PGreedyDP(scenario.network, scenario.engine, config)


def _make_mtshare(
    scenario: "Scenario",
    config: SystemConfig,
    partition_method: str,
    probabilistic: bool = False,
) -> DispatchScheme:
    part = scenario.partitioning(partition_method, config.num_partitions)
    return MTShare(
        scenario.network,
        scenario.engine,
        config,
        part,
        probabilistic=probabilistic,
        demand_predictor=(
            scenario.demand_predictor(part)
            if probabilistic and config.use_demand_prediction
            else None
        ),
        landmarks=scenario.landmark_graph(partition_method, config.num_partitions),
    )


def _make_mtshare_pro(
    scenario: "Scenario", config: SystemConfig, partition_method: str
) -> DispatchScheme:
    return _make_mtshare(scenario, config, partition_method, probabilistic=True)


def _make_window_lap(
    scenario: "Scenario", config: SystemConfig, partition_method: str
) -> DispatchScheme:
    from ..core.window import WindowLAP

    part = scenario.partitioning(partition_method, config.num_partitions)
    return WindowLAP(
        scenario.network,
        scenario.engine,
        config,
        part,
        landmarks=scenario.landmark_graph(partition_method, config.num_partitions),
    )


#: The scheme registry — the one table every scheme surface reads.
SCHEME_REGISTRY: "dict[str, SchemeInfo]" = {
    info.key: info
    for info in (
        SchemeInfo(
            "no-sharing",
            "nearest-idle-taxi dispatch, no ridesharing (lower bound)",
            _make_no_sharing,
        ),
        SchemeInfo(
            "t-share",
            "grid-index insertion baseline with partial trip information",
            _make_t_share,
        ),
        SchemeInfo(
            "pgreedydp",
            "greedy insertion with DP schedule reoptimisation baseline",
            _make_pgreedydp,
        ),
        SchemeInfo(
            "mt-share",
            "mobility-aware matching on partition/cluster indexes (the paper)",
            _make_mtshare,
        ),
        SchemeInfo(
            "mt-share-pro",
            "mT-Share with probabilistic routing towards street hails",
            _make_mtshare_pro,
        ),
        SchemeInfo(
            "window-lap",
            "batch-window global assignment: one LAP per W-second window",
            _make_window_lap,
        ),
    )
}

#: Scheme-name keys accepted by :meth:`Scenario.make_scheme`.
SCHEME_NAMES = tuple(SCHEME_REGISTRY)


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """Everything that determines a scenario, hashable for memoisation.

    The default sizes scale the paper's setup down by roughly 1/30 in
    request volume while preserving the request-per-taxi ratios that
    drive the comparative results (see DESIGN.md).
    """

    kind: str = "peak"  # "peak" or "nonpeak"
    grid_rows: int = 18
    grid_cols: int = 18
    spacing_m: float = 180.0
    hourly_requests: int = 1100
    history_days: int = 5
    offline_count: int = 190
    num_partitions: int = 36
    congestion: float = 1.0
    seed: int = 7
    #: Shortest-path backend: ``"auto"`` (default; resolved against the
    #: ``REPRO_SP_MODE`` env override and the vertex-count rule at build
    #: time), ``"full"``, ``"lazy"`` or ``"ch"``.  Not part of the
    #: network spec, so all backends share trace/partition artifacts.
    sp_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.kind not in ("peak", "nonpeak"):
            raise ValueError("kind must be 'peak' or 'nonpeak'")
        if self.congestion <= 0:
            raise ValueError("congestion must be a positive speed factor")
        if self.sp_mode not in ("auto", "full", "lazy", "ch"):
            raise ValueError("sp_mode must be auto, full, lazy or ch")

    @property
    def window(self) -> tuple[int, int, bool]:
        """``(day, hour, weekend)`` of the evaluation window."""
        if self.kind == "peak":
            return (1, 8, False)  # workday, 8-9 a.m.
        return (5, 10, True)  # weekend, 10-11 a.m.


class Scenario:
    """A fully built experiment scenario.

    Attributes of interest: :attr:`network`, :attr:`engine`,
    :attr:`history` (the mined trips), :attr:`window_trips` (the
    evaluation hour), and the factories below.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        # The congestion factor rescales the constant travel speed for
        # the simulated window (traffic stays stable *within* a window,
        # as the paper assumes).
        from .. import config as _config

        self.network: RoadNetwork = grid_city(
            rows=spec.grid_rows,
            cols=spec.grid_cols,
            spacing_m=spec.spacing_m,
            speed_mps=_config.DEFAULT_SPEED_MPS * spec.congestion,
            seed=spec.seed,
        )
        # The network spec keys the APSP / trace / partition artifacts.
        # Speed (and hence the congestion factor) is deliberately left
        # out: distances are in metres and trip sampling is geometric,
        # so congestion variants of the same grid share every
        # speed-independent artifact.
        self._network_spec = {
            "generator": "grid_city",
            "rows": spec.grid_rows,
            "cols": spec.grid_cols,
            "spacing_m": spec.spacing_m,
            "seed": spec.seed,
        }
        store = artifacts.get_store()
        self.engine = self._build_engine(store)
        self.demand = ChengduLikeDemand(
            self.network,
            hourly_requests=spec.hourly_requests,
            seed=spec.seed,
        )
        day, hour, weekend = spec.window
        window_start = (day * 24 + hour) * 3600.0
        window_end = window_start + 3600.0

        # The evaluation window is generated with its own profile; the
        # remaining days feed the mining side, window excluded.  Enough
        # days are generated to cover both mining and the window day.
        num_days = max(spec.history_days + 2, day + 1)
        self._trace_spec = {
            "network": self._network_spec,
            "demand": self.demand.spec_dict(),
            "num_days": num_days,
            "weekend_days": [5, 6],
            "rate_scale": 1.0,
        }
        full = self._build_trace(store, num_days)
        self.window_trips: TripDataset = full.window(window_start, window_end)
        self.history: TripDataset = full.exclude_window(window_start, window_end)
        self._window_start = window_start
        self._window_end = window_end
        self._partitionings: dict[tuple, object] = {}

    def _build_engine(self, store: artifacts.ArtifactStore | None) -> ShortestPathEngine:
        """Shortest-path engine, loading preprocessing from the store.

        The spec's ``sp_mode`` is resolved first (``"auto"`` consults
        the ``REPRO_SP_MODE`` env override, then picks ``full`` for
        small grids and ``ch`` above ``FULL_APSP_LIMIT``).  Full mode
        persists/loads the APSP matrices; ch mode persists/loads the
        contraction hierarchy.  On a warm store both are memory-mapped
        (zero-copy: pages are shared between concurrent workers by the
        OS cache) instead of being recomputed.
        """
        mode = resolve_sp_mode(self.spec.sp_mode, self.network.num_vertices)
        if mode == "lazy" or store is None:
            return ShortestPathEngine(self.network, mode=mode)
        if mode == "ch":
            key = store.key_of("ch", self._ch_spec())
            art = store.load("ch", key)
            if art is not None:
                return ShortestPathEngine(
                    self.network, mode="ch", ch_arrays=dict(art.arrays)
                )
            engine = ShortestPathEngine(self.network, mode="ch")
            arrays = engine.hierarchy_arrays()
            assert arrays is not None
            hierarchy = engine.hierarchy
            assert hierarchy is not None
            store.save(
                "ch",
                key,
                arrays,
                meta={
                    "label": self.network_label(),
                    "vertices": self.network.num_vertices,
                    "edges": hierarchy.num_edges,
                    "shortcuts": hierarchy.num_shortcuts,
                    "build_seconds": round(hierarchy.build_seconds, 3),
                },
            )
            return engine
        key = store.key_of("apsp", self._network_spec)
        art = store.load("apsp", key)
        if art is not None:
            return ShortestPathEngine(
                self.network, mode="full", full_arrays=(art["dist"], art["pred"])
            )
        engine = ShortestPathEngine(self.network, mode="full")
        mats = engine.full_matrices()
        if mats is not None:
            store.save("apsp", key, {"dist": mats[0], "pred": mats[1]}, meta=self._network_spec)
        return engine

    def _ch_spec(self) -> dict:
        """Artifact-store key spec for the contraction hierarchy."""
        return {"network": self._network_spec, "format": CH_FORMAT_VERSION}

    def network_label(self) -> str:
        """Human-readable graph label used in artifact metadata / CLI."""
        s = self.spec
        return f"grid_city {s.grid_rows}x{s.grid_cols} spacing={s.spacing_m:g} seed={s.seed}"

    def _build_trace(self, store: artifacts.ArtifactStore | None, num_days: int) -> TripDataset:
        """The full synthetic trace, persisted across processes.

        Trace synthesis dominates scenario construction, so warm
        processes load the dataset from the store and *replay* the
        generator's RNG consumption (see
        :meth:`~repro.demand.generator.ChengduLikeDemand.replay_days_rng`)
        so any later sampling stays bit-identical to a cold build.
        """
        weekend_days = {5, 6}
        if store is None:
            return self.demand.generate_days(num_days, weekend_days=weekend_days)
        key = store.key_of("trace", self._trace_spec)
        art = store.load("trace", key)
        if art is not None:
            full = TripDataset(
                release_times=np.asarray(art["release_times"], dtype=np.float64).copy(),
                origins=np.asarray(art["origins"], dtype=np.int64).copy(),
                destinations=np.asarray(art["destinations"], dtype=np.int64).copy(),
                taxi_ids=np.asarray(art["taxi_ids"], dtype=np.int64).copy(),
            )
            self.demand.replay_days_rng(num_days, len(full))
            return full
        full = self.demand.generate_days(num_days, weekend_days=weekend_days)
        store.save(
            "trace",
            key,
            {
                "release_times": full.release_times,
                "origins": full.origins,
                "destinations": full.destinations,
                "taxi_ids": full.taxi_ids,
            },
            meta={"num_days": num_days, "rows": len(full)},
        )
        return full

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"peak"`` or ``"nonpeak"``."""
        return self.spec.kind

    def memory_bytes(self) -> int:
        """Approximate resident footprint of this scenario's artifacts.

        Covers the shortest-path matrices (including memory-mapped
        ones), the trace arrays, and every memoised partitioning /
        landmark-graph / predictor product.
        """
        total = self.engine.memory_bytes()
        for ds in (self.window_trips, self.history):
            total += (
                ds.release_times.nbytes
                + ds.origins.nbytes
                + ds.destinations.nbytes
                + ds.taxi_ids.nbytes
            )
        for obj in self._partitionings.values():
            fn = getattr(obj, "memory_bytes", None)
            if callable(fn):
                total += int(fn())
        return total

    def mmap_bytes(self) -> int:
        """Bytes served zero-copy from memory-mapped store artifacts."""
        return self.engine.mmap_bytes()

    def default_config(self, **overrides) -> SystemConfig:
        """The paper's defaults adapted to this scenario's scale.

        The static searching range ``gamma`` is scaled with the city
        width (2.5 km on Chengdu's ~9.4 km-wide 2nd-ring area maps to
        about 1.25 km here); mT-Share itself derives its range from
        Eq. 2 unless an experiment overrides that.
        """
        width = float(
            max(self.network.xy[:, 0].max() - self.network.xy[:, 0].min(), 1.0)
        )
        base = SystemConfig(
            num_partitions=self.spec.num_partitions,
            search_range_m=round(2500.0 * width / 9400.0, 0),
            speed_mps=self.network.speed_mps,
        )
        return base.replace(**overrides) if overrides else base

    def requests(
        self,
        rho: float = 1.3,
        offline_count: int | None = None,
        seed: int = 0,
    ) -> list[RideRequest]:
        """The evaluation workload.

        ``offline_count`` defaults to the spec's value in the non-peak
        scenario and to 0 in the peak scenario (the paper ignores
        offline requests at peak).
        """
        if offline_count is None:
            offline_count = self.spec.offline_count if self.kind == "nonpeak" else 0
        offline_count = min(offline_count, len(self.window_trips))
        return self.window_trips.to_requests(
            self.engine,
            rho=rho,
            offline_count=offline_count,
            time_origin=self._window_start,
            seed=seed,
        )

    def make_fleet(
        self,
        num_taxis: int,
        capacity: int = 3,
        seed: int = 0,
    ) -> list[Taxi]:
        """Taxis parked at uniformly random vertices (Section V-A4)."""
        rng = np.random.default_rng(seed)
        locs = rng.integers(0, self.network.num_vertices, size=num_taxis)
        return [
            Taxi(taxi_id=i, capacity=capacity, loc=int(locs[i])) for i in range(num_taxis)
        ]

    def fault_plan(
        self,
        spec,
        taxis: list[Taxi],
        requests: list[RideRequest],
    ):
        """A deterministic :class:`~repro.faults.plan.FaultPlan` for one run.

        ``spec`` is a :class:`~repro.faults.plan.FaultSpec`, a spec
        string in the ``--faults`` grammar (``seed=3,breakdown_rate=...``,
        see docs/ROBUSTNESS.md) or ``None``.  Returns ``None`` when the
        spec injects nothing, so callers can pass the result straight to
        :class:`~repro.sim.engine.Simulator`.
        """
        from ..faults.plan import FaultSpec, build_fault_plan, parse_fault_spec

        if spec is None:
            return None
        if isinstance(spec, str):
            spec = parse_fault_spec(spec)
        if not isinstance(spec, FaultSpec):
            raise TypeError(f"expected FaultSpec, spec string or None, got {type(spec)!r}")
        if not spec.enabled:
            return None
        return build_fault_plan(spec, taxis, requests, self.network)

    def rebalance_policy(self, spec, config: SystemConfig | None = None):
        """A :class:`~repro.fleet.rebalance.Rebalancer` for one run.

        ``spec`` is a :class:`~repro.fleet.rebalance.RebalanceSpec`, a
        spec string in the ``--rebalance`` grammar
        (``cadence_s=120,max_moves=8``, or ``"on"``/``"off"``; see
        docs/ALGORITHMS.md) or ``None``.  Returns ``None`` when the
        policy would never move a taxi, so callers can pass the result
        straight to :class:`~repro.sim.engine.Simulator` and a
        rebalancing-off run stays on the pre-rebalancing code path.
        """
        from ..fleet.rebalance import RebalanceSpec, Rebalancer, parse_rebalance_spec

        if spec is None:
            return None
        if isinstance(spec, str):
            spec = parse_rebalance_spec(spec)
        if not isinstance(spec, RebalanceSpec):
            raise TypeError(
                f"expected RebalanceSpec, spec string or None, got {type(spec)!r}"
            )
        if not spec.enabled:
            return None
        config = config if config is not None else self.default_config()
        part = self.partitioning("bipartite", config.num_partitions)
        landmarks = self.landmark_graph("bipartite", config.num_partitions)
        return Rebalancer(
            spec,
            predictor=self.demand_predictor(part),
            landmarks=landmarks,
            engine=self.engine,
            network=self.network,
        )

    def _partition_spec(self, method: str, kappa: int, k_t: int) -> dict:
        """Artifact-store key spec for a partitioning build."""
        pspec = {
            "trace": self._trace_spec,
            "window": [self._window_start, self._window_end],
            "method": method,
            "num_partitions": kappa,
            "seed": self.spec.seed,
        }
        if method == "bipartite":
            pspec["num_transition_clusters"] = k_t
        return pspec

    def partitioning(
        self,
        method: str = "bipartite",
        num_partitions: int | None = None,
        num_transition_clusters: int = 20,
    ) -> MapPartitioning:
        """Build (and memoise) a map partitioning over this network.

        Labels and the fitted transition model are persisted in the
        artifact store; warm processes skip the bipartite fixed-point
        iteration (and its k-means sweeps) entirely.
        """
        kappa = num_partitions if num_partitions is not None else self.spec.num_partitions
        key = (method, kappa)
        cached = self._partitionings.get(key)
        if cached is not None:
            return cached
        store = artifacts.get_store()
        k_t = min(num_transition_clusters, max(2, kappa - 1))
        akey = None
        if store is not None:
            akey = store.key_of("partition", self._partition_spec(method, kappa, k_t))
            art = store.load("partition", akey)
            if art is not None:
                part = MapPartitioning.from_arrays(art.arrays, art.meta)
                self._partitionings[key] = part
                return part
        trips = self.history.od_pairs()
        if method == "bipartite":
            part = bipartite_partition(
                self.network,
                trips,
                num_partitions=kappa,
                num_transition_clusters=k_t,
                seed=self.spec.seed,
            )
        elif method == "grid":
            part = grid_partition(self.network, kappa, historical_trips=trips)
        elif method == "geo":
            part = geo_partition(
                self.network, kappa, historical_trips=trips, seed=self.spec.seed
            )
        else:
            raise ValueError(f"unknown partitioning method {method!r}")
        if store is not None:
            arrays, meta = part.to_arrays()
            store.save("partition", akey, arrays, meta=meta)
        self._partitionings[key] = part
        return part

    def landmark_graph(
        self,
        method: str = "bipartite",
        num_partitions: int | None = None,
    ) -> LandmarkGraph:
        """Landmark graph over a memoised partitioning, store-backed.

        Keyed by the *content* of the partition labels (plus travel
        speed — landmark costs are in seconds), so any route to the
        same partitioning shares one stored landmark table set.
        """
        kappa = num_partitions if num_partitions is not None else self.spec.num_partitions
        mkey = ("landmarks", method, kappa)
        cached = self._partitionings.get(mkey)
        if cached is not None:
            return cached
        part = self.partitioning(method, kappa)
        store = artifacts.get_store()
        akey = None
        if store is not None:
            lspec = {
                "network": self._network_spec,
                "labels_sha": hashlib.sha256(part.labels.tobytes()).hexdigest(),
                "speed_mps": self.network.speed_mps,
                "engine_mode": self.engine.mode,
            }
            akey = store.key_of("landmarks", lspec)
            art = store.load("landmarks", akey)
            if art is not None:
                graph = LandmarkGraph.from_tables(self.network, part.partitions, art.arrays)
                self._partitionings[mkey] = graph
                return graph
        graph = LandmarkGraph(self.network, part.partitions, self.engine)
        if store is not None:
            store.save(
                "landmarks",
                akey,
                graph.to_tables(),
                meta={"speed_mps": self.network.speed_mps, "engine_mode": self.engine.mode},
            )
        self._partitionings[mkey] = graph
        return graph

    def _probabilistic_router(self, config: SystemConfig):
        """A ProbabilisticRouter over this scenario's bipartite partitions."""
        from ..core.partition_filter import PartitionFilter
        from ..core.routing import ProbabilisticRouter

        part = self.partitioning("bipartite", config.num_partitions)
        landmarks = self.landmark_graph("bipartite", config.num_partitions)
        pfilter = PartitionFilter(landmarks, lam=config.lam, epsilon=config.epsilon)
        router = ProbabilisticRouter(
            self.network,
            self.engine,
            pfilter,
            part.transition_model,
            lam=config.lam,
            max_attempts=config.max_probabilistic_attempts,
            steering_m=config.prob_steering_m,
        )
        if config.use_demand_prediction:
            router.demand_predictor = self.demand_predictor(part)
        return router

    def demand_predictor(self, partitioning: MapPartitioning):
        """An hour-aware pick-up predictor fitted on this scenario's history."""
        from ..demand.prediction import DemandPredictor

        key = ("predictor", partitioning.num_partitions)
        cached = self._partitionings.get(key)
        if cached is not None:
            return cached
        store = artifacts.get_store()
        akey = None
        if store is not None:
            pspec = {
                "trace": self._trace_spec,
                "window": [self._window_start, self._window_end],
                "labels_sha": hashlib.sha256(partitioning.labels.tobytes()).hexdigest(),
                "num_partitions": partitioning.num_partitions,
            }
            akey = store.key_of("predictor", pspec)
            art = store.load("predictor", akey)
            if art is not None:
                predictor = DemandPredictor(np.asarray(art["rates"], dtype=np.float64).copy())
                self._partitionings[key] = predictor
                return predictor
        predictor = DemandPredictor.fit(
            self.history, partitioning.labels, partitioning.num_partitions
        )
        if store is not None:
            store.save("predictor", akey, {"rates": predictor.rates}, meta={})
        self._partitionings[key] = predictor
        return predictor

    def make_scheme(
        self,
        name: str,
        config: SystemConfig | None = None,
        partition_method: str = "bipartite",
        probabilistic: bool = False,
    ) -> DispatchScheme:
        """Instantiate a dispatch scheme by its report name.

        ``probabilistic=True`` attaches probabilistic routing to a
        baseline scheme (the Fig. 16 combinations); for mT-Share use
        the ``"mt-share-pro"`` name instead.
        """
        config = config if config is not None else self.default_config()
        info = SCHEME_REGISTRY.get(name.lower())
        if info is None:
            raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}")
        scheme = info.factory(self, config, partition_method)
        if probabilistic and not isinstance(scheme, MTShare):
            scheme.enable_probabilistic(self._probabilistic_router(config))
            scheme.name = f"{scheme.name}+prob"
        return scheme


# ----------------------------------------------------------------------
# Bounded scenario cache
# ----------------------------------------------------------------------
_SCENARIO_CACHE: OrderedDict[ScenarioSpec, Scenario] = OrderedDict()
_SCENARIO_CACHE_SIZE: int | None = None
_SCENARIO_HITS = 0
_SCENARIO_MISSES = 0
_SCENARIO_EVICTIONS = 0


def _scenario_cache_limit() -> int:
    """Configured cache bound: setter wins, then env, then default."""
    if _SCENARIO_CACHE_SIZE is not None:
        return _SCENARIO_CACHE_SIZE
    raw = os.environ.get(SCENARIO_CACHE_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_SCENARIO_CACHE_SIZE


def set_scenario_cache_size(size: int | None) -> None:
    """Bound the scenario cache (``None`` restores env/default).

    Shrinking evicts least-recently-used scenarios immediately, which
    releases their matrices / mmaps once callers drop their references.
    """
    global _SCENARIO_CACHE_SIZE, _SCENARIO_EVICTIONS
    if size is not None and size < 1:
        raise ValueError("cache size must be >= 1")
    _SCENARIO_CACHE_SIZE = size
    limit = _scenario_cache_limit()
    while len(_SCENARIO_CACHE) > limit:
        _SCENARIO_CACHE.popitem(last=False)
        _SCENARIO_EVICTIONS += 1


def get_scenario(spec: ScenarioSpec) -> Scenario:
    """Memoised scenario builder (trace + APSP + partitioning are expensive).

    LRU-bounded (:data:`SCENARIO_CACHE_ENV`, default
    :data:`DEFAULT_SCENARIO_CACHE_SIZE` entries) so long sweeps cannot
    accumulate unbounded resident matrices.
    """
    global _SCENARIO_HITS, _SCENARIO_MISSES, _SCENARIO_EVICTIONS
    cached = _SCENARIO_CACHE.get(spec)
    if cached is not None:
        _SCENARIO_CACHE.move_to_end(spec)
        _SCENARIO_HITS += 1
        return cached
    _SCENARIO_MISSES += 1
    scenario = Scenario(spec)
    _SCENARIO_CACHE[spec] = scenario
    limit = _scenario_cache_limit()
    while len(_SCENARIO_CACHE) > limit:
        _SCENARIO_CACHE.popitem(last=False)
        _SCENARIO_EVICTIONS += 1
    return scenario


def clear_scenarios() -> None:
    """Drop every cached scenario (their artifacts become collectable)."""
    _SCENARIO_CACHE.clear()


def scenario_cache_stats() -> dict:
    """Cache occupancy and resident/mmap byte gauges for observability."""
    return {
        "entries": len(_SCENARIO_CACHE),
        "max_entries": _scenario_cache_limit(),
        "hits": _SCENARIO_HITS,
        "misses": _SCENARIO_MISSES,
        "evictions": _SCENARIO_EVICTIONS,
        "memory_bytes": sum(s.memory_bytes() for s in _SCENARIO_CACHE.values()),
        "mmap_bytes": sum(s.mmap_bytes() for s in _SCENARIO_CACHE.values()),
    }


def peak_spec(**overrides) -> ScenarioSpec:
    """The default peak-scenario spec, optionally overridden."""
    return ScenarioSpec(kind="peak", **overrides)


def nonpeak_spec(**overrides) -> ScenarioSpec:
    """The default non-peak-scenario spec, optionally overridden."""
    return ScenarioSpec(kind="nonpeak", **overrides)
