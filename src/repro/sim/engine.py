"""Event-driven ridesharing simulator.

The simulator is one client of the discrete-event kernel
(:mod:`repro.sim.kernel`): the kernel owns the event queue and the
committed clock, the simulator owns the fleet and the workload, and the
dispatch scheme owns its indexes and matching logic.  Request releases
and post-release drain ticks are kernel events; each event boundary
advances every taxi along its planned route at the constant network
speed, firing pick-ups and drop-offs, scanning traversed vertices for
*offline* requests waiting at the roadside, and replaying any due
injected faults.  After the last release the drain ticks keep the clock
moving in fixed steps — the last step clamped to the drain horizon —
until all schedules finish.

Ingest is heap-ordered, so the workload no longer has to arrive sorted:
an out-of-order release is sequenced by the kernel instead of dragging
the committed clock backwards.  The streaming façade
(:mod:`repro.service`) feeds the same kernel incrementally through
:meth:`Simulator.stream_begin` / :meth:`Simulator.stream_submit` /
:meth:`Simulator.stream_finish`; batch :meth:`Simulator.run` is the
schedule-everything special case, and both produce bit-identical
decisions for the same workload.  See docs/ARCHITECTURE.md.

Offline requests live in a per-vertex pool.  When a taxi passes a
vertex hosting a released, not-yet-expired offline request, the scheme
is asked whether *this* taxi can serve it (Section IV-C2); if it
cannot and ``redispatch_encounters`` is on, the request becomes visible
to the dispatcher (the paper: "the server will quickly dispatch
another taxi to serve it").
"""

from __future__ import annotations

import math
import time
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass, field

from ..analysis import contracts
from ..baselines.base import DispatchScheme
from ..core.payment import PaymentModel
from ..demand.request import RideRequest
from ..faults.plan import FaultPlan, ShockWindow
from ..faults.recovery import CONTINUATION_ID_BASE, continuation_request
from ..fleet.rebalance import Rebalancer
from ..fleet.taxi import FleetLog, Taxi
from ..index.spatial import StaticVertexGrid
from ..network.shortest_path import subgraph_cache_stats
from ..obs import Instrumentation, JsonlTraceWriter
from .events import priority_of
from .kernel import DRAIN_TICK, REBALANCE_TICK, REQUEST_RELEASE, WINDOW_TICK, Event, Kernel
from .metrics import SimulationMetrics

#: Clock step while draining schedules after the last online release.
DRAIN_STEP_S = 60.0

#: Safety horizon after the last release before the run is cut off.
DRAIN_HORIZON_S = 3 * 3600.0

#: A street-hailing passenger flags down any taxi passing within this
#: distance of where they stand (roughly one city block).
DEFAULT_ENCOUNTER_RADIUS_M = 250.0

#: Raw-sample list bound in compact (bounded-RSS streaming) mode.
COMPACT_SAMPLE_CAP = 4096

#: Streaming decision callback: ``(request, now, matched, taxi_id,
#: elapsed_s, kind)`` with ``kind`` one of ``"online"`` (a first-look
#: dispatch), ``"redispatch"`` (encounter hand-off or fault recovery)
#: or ``"offline"`` (a street hail installed on a passing taxi).
DecisionHook = Callable[[RideRequest, float, bool, int | None, float, str], None]


@dataclass
class _EpisodeState:
    """Per-taxi ridesharing episode for payment settlement."""

    start_time: float = 0.0
    active: bool = False
    member_requests: dict[int, RideRequest] = field(default_factory=dict)
    pickup_times: dict[int, float] = field(default_factory=dict)
    dropoff_times: dict[int, float] = field(default_factory=dict)


class Simulator:
    """Run one scheme over one workload on one fleet.

    Parameters
    ----------
    scheme:
        The dispatcher; its network/engine/config drive everything.
    taxis:
        Initial fleet; the simulator takes ownership and mutates it.
    requests:
        The full workload (online and offline), any order.
    payment:
        Optional payment model; when given, every ridesharing episode
        is settled and the monetary aggregates are collected.
    redispatch_encounters:
        Whether an offline request that a taxi meets but cannot carry
        is handed to the dispatcher as a fresh online request.
    obs:
        Observability registry (``repro.obs``); the simulator creates
        one when omitted and attaches it to the scheme, so every run's
        metrics carry per-stage dispatch timings and counters.  Pass a
        :class:`~repro.obs.NullInstrumentation` to disable aggregation
        entirely.
    trace_path:
        When given (and ``obs`` is omitted), stage exits and dispatch
        events are additionally appended to this JSONL file.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` of disruptions to
        replay at event boundaries (breakdowns, cancellations, shock
        windows); ``None`` or an empty plan leaves the simulation path
        bit-identical to a fault-free run.  See docs/ROBUSTNESS.md.
    compact:
        Bounded-memory mode for soak-length streaming runs: completed
        trips are evicted from the fleet log once their samples are
        folded into the metrics, and the metric sample lists are capped
        at :data:`COMPACT_SAMPLE_CAP` (running aggregates keep exact
        counts/means).  Off by default — determinism fingerprints rely
        on the full sample lists.
    rebalance:
        Optional :class:`~repro.fleet.rebalance.Rebalancer`: at each
        ``rebalance.tick`` boundary, surplus idle taxis are steered onto
        cruise routes toward predicted-deficit partitions; a real match
        tears the cruise down for free.  ``None`` (or a disabled spec)
        leaves the simulation path bit-identical to a rebalancing-free
        run.  See docs/ALGORITHMS.md ("Proactive rebalancing").
    """

    def __init__(
        self,
        scheme: DispatchScheme,
        taxis: list[Taxi],
        requests: list[RideRequest],
        payment: PaymentModel | None = None,
        redispatch_encounters: bool = True,
        encounter_radius_m: float = DEFAULT_ENCOUNTER_RADIUS_M,
        obs: Instrumentation | None = None,
        trace_path: str | None = None,
        faults: FaultPlan | None = None,
        compact: bool = False,
        rebalance: Rebalancer | None = None,
    ) -> None:
        self._scheme = scheme
        if obs is None:
            trace = JsonlTraceWriter(trace_path) if trace_path else None
            obs = Instrumentation(trace=trace)
        self._obs = obs
        scheme.instrument(obs)
        self._fleet = {t.taxi_id: t for t in taxis}
        self._requests = sorted(requests, key=lambda r: (r.release_time, r.request_id))
        self._payment = payment
        self._redispatch = redispatch_encounters
        self._encounter_radius = float(encounter_radius_m)

        self._log = FleetLog()
        self._metrics = SimulationMetrics(scheme_name=scheme.name)
        self._episodes: dict[int, _EpisodeState] = defaultdict(_EpisodeState)
        # Offline requests are registered under every vertex inside their
        # encounter radius; a taxi traversing any of those vertices can
        # be hailed.  ``_offline_done`` marks requests already served or
        # expired so duplicate bucket entries are skipped lazily.
        self._offline_pool: dict[int, list[RideRequest]] = defaultdict(list)
        self._offline_done: set[int] = set()
        # Vertex grid for catchment lookups; built lazily on the first
        # offline request so online-only workloads pay nothing.
        self._vertex_grid: StaticVertexGrid | None = None
        self._was_busy: dict[int, bool] = {}
        self._now = 0.0
        # Fault-injection state.  An empty plan is normalised to None so
        # a "faults off" run takes exactly the pre-fault code path.
        self._faults = faults if faults is not None and not faults.empty else None
        self._breakdown_i = 0
        self._cancel_i = 0
        self._shocked: set[tuple[int, int]] = set()
        # continuation/redispatched request id -> the original workload
        # request whose accounting bucket the recovery chain occupies.
        self._continuation_root: dict[int, RideRequest] = {}
        self._cont_serial = 0
        self._request_by_id: dict[int, RideRequest] = {}

        # Discrete-event kernel: request releases and drain ticks are
        # heap-ordered events, so out-of-order ingestion (the streaming
        # façade, an unsorted batch) can never move the clock backwards.
        self._kernel = Kernel(start_time=0.0)
        self._kernel.subscribe(REQUEST_RELEASE, self._on_request_release)
        self._kernel.subscribe(DRAIN_TICK, self._on_drain_tick)
        # Offline requests awaiting resolution, keyed by id — the
        # end-of-run sweep walks this instead of the full request list,
        # so streaming runs never need to retain the workload.
        self._pending_offline: dict[int, RideRequest] = {}
        # Dispatch-window batching (the window-lap scheme): when the
        # scheme declares a window length, online releases are buffered
        # and flushed through ``scheme.match_window`` at ``window.tick``
        # boundaries instead of being dispatched one by one.
        self._window_s = scheme.dispatch_window_s
        self._window_buffer: list[RideRequest] = []
        self._window_tick_at: float | None = None
        if self._window_s is not None:
            self._kernel.subscribe(WINDOW_TICK, self._on_window_tick)
        # Proactive repositioning (repro.fleet.rebalance): a disabled
        # spec is normalised to None so a "rebalancing off" run takes
        # exactly the pre-rebalancing code path — bit-identical
        # fingerprints, zero rebalance.* counters.
        self._rebalance = rebalance if rebalance is not None and rebalance.spec.enabled else None
        self._rebalance_tick_at: float | None = None
        # taxi id -> target partition of its in-flight repositioning
        # cruise; entries are dropped when the cruise arrives, is
        # abandoned for a real match, or the taxi breaks down.
        self._rebalance_dest: dict[int, int] = {}
        if self._rebalance is not None:
            self._kernel.subscribe(REBALANCE_TICK, self._on_rebalance_tick)
        self._last_release = 0.0
        self._streaming = False
        self._wall_start = 0.0
        self._stats_base: tuple[dict[str, int], dict[str, int]] | None = None
        self._compact = bool(compact)
        if self._compact:
            self._metrics.sample_cap = COMPACT_SAMPLE_CAP
        #: Optional decision-stream hook fired once per dispatch outcome
        #: ``(request, now, matched, taxi_id, elapsed_s, kind)`` with
        #: ``kind`` in ``{"online", "redispatch", "offline"}``; the
        #: streaming façade uses it to emit its decision records.
        self.on_decision: DecisionHook | None = None

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> SimulationMetrics:
        """Metrics collected so far."""
        return self._metrics

    @property
    def log(self) -> FleetLog:
        """Per-request service records."""
        return self._log

    @property
    def fleet(self) -> dict[int, Taxi]:
        """The simulated taxis."""
        return self._fleet

    @property
    def obs(self) -> Instrumentation:
        """The observability registry driving this run."""
        return self._obs

    @property
    def kernel(self) -> Kernel:
        """The discrete-event kernel ordering this run's events."""
        return self._kernel

    # ------------------------------------------------------------------
    # callbacks wired into taxi movement
    # ------------------------------------------------------------------
    def _on_pickup(self, taxi: Taxi, request: RideRequest, t: float) -> None:
        self._log.record_pickup(request, t)
        episode = self._episodes[taxi.taxi_id]
        if not episode.active:
            episode.active = True
            episode.start_time = t
            episode.member_requests = {}
            episode.pickup_times = {}
            episode.dropoff_times = {}
        episode.member_requests[request.request_id] = request
        episode.pickup_times[request.request_id] = t

    def _on_dropoff(self, taxi: Taxi, request: RideRequest, t: float) -> None:
        self._log.record_dropoff(request, t)
        self._scheme.on_request_finished(request)
        trip = self._log.trips[request.request_id]
        self._metrics.add_waiting(trip.waiting_time)
        self._metrics.add_detour(trip.detour_time)
        self._metrics.completed += 1

        episode = self._episodes[taxi.taxi_id]
        episode.dropoff_times[request.request_id] = t
        self._quote_fare(taxi, episode, request, t)
        if taxi.occupancy == 0 and episode.active:
            self._settle_episode(taxi, episode, t)
            episode.active = False
        if self._compact:
            # Soak mode: the trip's samples are folded in; drop the
            # record so the fleet log stays bounded over long streams.
            self._log.trips.pop(request.request_id, None)

    def _quote_fare(self, taxi: Taxi, episode: _EpisodeState,
                    request: RideRequest, t: float) -> None:
        """Online fare quote at drop-off (Eqs. 6-8).

        The arriving passenger's fare uses the actual detour rates of
        everyone already delivered and the *projected* rates (Eq. 7) of
        co-riders still on board, assuming they finish along shortest
        paths.  Quotes are stored per request in the metrics.
        """
        if self._payment is None or not episode.active:
            return
        engine = self._scheme.engine
        speed = self._scheme.network.speed_mps
        shortest = {}
        shared = {}
        projected_extra = {}
        for rid, member in episode.member_requests.items():
            if rid not in episode.pickup_times:
                continue  # assigned to this episode but not yet aboard
            shortest[rid] = member.direct_cost * speed
            end = episode.dropoff_times.get(rid, t)
            shared[rid] = max(0.0, (end - episode.pickup_times[rid]) * speed)
            if rid not in episode.dropoff_times:
                projected_extra[rid] = engine.distance_m(
                    request.destination, member.destination
                )
        route_m = (t - episode.start_time) * speed
        quote = self._payment.fare_at_dropoff(
            request.request_id, shortest, shared, projected_extra, route_m
        )
        self._metrics.quoted_fares[request.request_id] = quote

    def _settle_episode(self, taxi: Taxi, episode: _EpisodeState, end_time: float) -> None:
        if self._payment is None:
            return
        speed = self._scheme.network.speed_mps
        shortest = {}
        shared = {}
        for rid, request in episode.member_requests.items():
            shortest[rid] = request.direct_cost * speed
            # Members without a drop-off were still aboard when the
            # episode was cut short (breakdown, drain horizon); they are
            # settled as if delivered at the cut instant.
            end = episode.dropoff_times.get(rid, end_time)
            shared[rid] = (end - episode.pickup_times[rid]) * speed
        route_m = (end_time - episode.start_time) * speed
        settlement = self._payment.settle(shortest, shared, route_m)
        self._metrics.regular_fares += settlement.total_regular_fare
        self._metrics.shared_fares += settlement.total_passenger_payment
        self._metrics.driver_incomes += settlement.driver_income
        self._metrics.route_fares += settlement.route_fare

    # ------------------------------------------------------------------
    # time advancement
    # ------------------------------------------------------------------
    def _advance_all(self, now: float) -> None:
        contracts.check_monotone_clock(self._now, now)
        obs = self._obs
        for taxi in self._fleet.values():
            if taxi.out_of_service:
                continue
            # The monotone lifetime counter survives schedule completion
            # (which resets the per-schedule ``_stops_fired`` index), so
            # this comparison reports *true* firings only: an idle taxi
            # cruising through vertices no longer claims "stops fired"
            # every tick and no longer triggers needless index refreshes.
            fired_before = taxi.stops_fired_total
            traversed = taxi.advance(now, on_pickup=self._on_pickup, on_dropoff=self._on_dropoff)
            if traversed:
                stops_fired = taxi.stops_fired_total != fired_before
                obs.count("sim.taxi_advances")
                if stops_fired:
                    obs.count("sim.stop_notifications")
                self._scheme.on_taxi_advanced(taxi, now, stops_fired)
                was_busy = self._was_busy.get(taxi.taxi_id, False)
                if taxi.idle and was_busy:
                    self._scheme.on_taxi_idle(taxi, now)
                self._was_busy[taxi.taxi_id] = not taxi.idle
                self._scan_encounters(taxi, traversed)
            if taxi.idle:
                # Idle taxis may start a demand-seeking cruise (non-peak
                # probabilistic mode); a no-op for every other scheme.
                self._scheme.maybe_cruise(taxi, now)
        # Encounter redispatch reclassifies served_online -> served_offline
        # within the loop above, so the accounting contract is only checked
        # here, at the event boundary, where the buckets are consistent.
        contracts.check_request_accounting(self._metrics)

    def _register_offline(self, request: RideRequest) -> None:
        """Expose an offline request to every vertex it can hail from.

        Catchment lookup is O(cell) through a static vertex grid
        instead of an O(V) full-network scan; the grid's exact distance
        predicate keeps the catchment set identical to the scan's.
        """
        if self._vertex_grid is None:
            cell = max(self._encounter_radius, 1.0)
            self._vertex_grid = StaticVertexGrid(self._scheme.network.xy, cell_size_m=cell)
        ox, oy = self._scheme.network.xy[request.origin]
        catchment = self._vertex_grid.query_radius(float(ox), float(oy), self._encounter_radius)
        self._obs.count("kernel.grid_catchment_queries")
        for node in catchment:
            self._offline_pool[int(node)].append(request)
        if catchment.size == 0:
            self._offline_pool[request.origin].append(request)
        self._pending_offline[request.request_id] = request

    def _resolve_offline(self, rid: int) -> None:
        """An offline request reached a terminal bucket: stop tracking it."""
        self._offline_done.add(rid)
        self._pending_offline.pop(rid, None)

    def _scan_encounters(self, taxi: Taxi, traversed: list[tuple[int, float]]) -> None:
        scanned = 0
        for node, t in traversed:
            pool = self._offline_pool.get(node)
            if not pool:
                continue
            still_waiting: list[RideRequest] = []
            for request in pool:
                rid = request.request_id
                if rid in self._offline_done:
                    continue
                scanned += 1
                if t < request.release_time:
                    still_waiting.append(request)
                    continue
                if t > request.pickup_deadline:
                    # Expired: the passenger gave up.  Count it — these
                    # used to vanish silently, leaving served + failed
                    # short of the request total.
                    self._resolve_offline(rid)
                    self._metrics.expired_offline += 1
                    self._obs.event("offline_expired", request=rid, t=t)
                    continue
                result = self._scheme.try_offline(taxi, request, t)
                if result is not None:
                    self._install(result, request, t, offline=True)
                    self._resolve_offline(rid)
                    continue
                if self._redispatch:
                    handled = self._dispatch_online(request, t, count_response=False)
                    if handled:
                        self._metrics.served_online -= 1
                        self._metrics.served_offline += 1
                        self._resolve_offline(rid)
                        continue
                still_waiting.append(request)
            if still_waiting:
                self._offline_pool[node] = still_waiting
            else:
                del self._offline_pool[node]
        if scanned:
            self._obs.count("sim.encounters_scanned", scanned)

    # ------------------------------------------------------------------
    # fault injection (repro.faults; docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def _apply_faults(self, now: float) -> None:
        """Replay every scheduled fault whose time has come.

        Called at each event boundary right after the fleet advanced to
        ``now`` — *boundary semantics*: an event drawn for time ``t``
        takes effect at the first boundary with ``t <= now``, which is
        what keeps faulted runs deterministic for a given plan.
        Cancellations run before breakdowns at the same boundary, so a
        withdrawn request is never pointlessly re-dispatched.
        """
        plan = self._faults
        if plan is None:
            return
        cancels = plan.cancellations
        while self._cancel_i < len(cancels) and cancels[self._cancel_i].time <= now:
            event = cancels[self._cancel_i]
            self._cancel_i += 1
            request = self._request_by_id.get(event.request_id)
            if request is not None:
                self._handle_cancel(request, now)
        breakdowns = plan.breakdowns
        while self._breakdown_i < len(breakdowns) and breakdowns[self._breakdown_i].time <= now:
            event = breakdowns[self._breakdown_i]
            self._breakdown_i += 1
            taxi = self._fleet.get(event.taxi_id)
            if taxi is not None and not taxi.out_of_service:
                self._handle_breakdown(taxi, now)
        for k, window in enumerate(plan.shocks):
            if window.start <= now < window.end:
                self._apply_shock(k, window, now)
        contracts.check_request_accounting(self._metrics)

    def _handle_breakdown(self, taxi: Taxi, now: float) -> None:
        """Take a taxi out of service and salvage its commitments.

        Recovery policy: the interrupted payment episode is settled at
        the breakdown instant; onboard passengers are dropped at the
        breakdown vertex and re-enter the dispatch queue as continuation
        requests; assigned-but-not-picked-up requests are re-dispatched
        as-is.  Whatever cannot be re-placed is counted ``stranded``.
        """
        tid = taxi.taxi_id
        episode = self._episodes.get(tid)
        onboard, assigned = taxi.break_down()
        self._was_busy[tid] = False
        # A repositioning cruise dies with the taxi: the plan is already
        # cleared by break_down(), the scheme's eviction hook removes
        # the taxi from every supply index below, and the stale
        # destination must not be credited as in-flight at later ticks.
        if self._rebalance_dest.pop(tid, None) is not None:
            self._obs.count("rebalance.broken")
        self._scheme.on_taxi_breakdown(taxi, now)
        self._metrics.breakdowns += 1
        self._obs.count("fault.breakdowns")
        self._obs.event(
            "breakdown", taxi=tid, t=now,
            onboard=len(onboard), assigned=len(assigned),
        )
        if episode is not None and episode.active:
            self._settle_episode(taxi, episode, now)
            episode.active = False
        for request in onboard:
            self._scheme.on_request_finished(request)
            self._salvage_onboard(request, taxi.loc, now)
        for request in assigned:
            self._scheme.on_request_finished(request)
            self._redispatch_request(request, now)

    def _salvage_onboard(self, request: RideRequest, node: int, now: float) -> None:
        """Recover one passenger group dropped at the breakdown vertex."""
        rid = request.request_id
        root = self._continuation_root.get(rid, request)
        if node == request.destination:
            # The taxi died exactly at the drop-off vertex: complete the
            # trip inline (mirrors the ``_on_dropoff`` bookkeeping; the
            # scheme was already notified and the episode settled).
            trip = self._log.trips[rid]
            self._log.record_dropoff(request, now)
            self._metrics.add_waiting(trip.waiting_time)
            self._metrics.add_detour(trip.detour_time)
            self._metrics.completed += 1
            if self._compact:
                self._log.trips.pop(rid, None)
            return
        spec = self._faults.spec
        cont_id = CONTINUATION_ID_BASE + self._cont_serial
        self._cont_serial += 1
        cont = continuation_request(
            self._scheme.engine, request, cont_id, node, now,
            spec.continuation_rho, spec.continuation_wait_s,
        )
        if cont is None:
            self._strand(root)
            return
        self._continuation_root[cont_id] = root
        self._metrics.continuations += 1
        self._obs.count("fault.continuations")
        self._obs.event("continuation", request=rid, continuation=cont_id, t=now)
        if self._dispatch_online(cont, now, count_response=False):
            # ``_install`` counted the continuation as a fresh
            # ``served_online``; the root request already occupies its
            # served bucket, so cancel the double count.
            self._metrics.served_online -= 1
            self._metrics.reassigned += 1
        else:
            self._strand(root)

    def _redispatch_request(self, request: RideRequest, now: float) -> None:
        """Re-dispatch an assigned-but-not-picked-up request."""
        root = self._continuation_root.get(request.request_id, request)
        self._obs.count("fault.redispatches")
        if self._dispatch_online(request, now, count_response=False):
            self._metrics.served_online -= 1
            self._metrics.reassigned += 1
        else:
            self._strand(root)

    def _strand(self, root: RideRequest) -> None:
        """Recovery failed: move the root request served -> stranded."""
        if root.offline:
            self._metrics.served_offline -= 1
            self._metrics.stranded_offline += 1
        else:
            self._metrics.served_online -= 1
            self._metrics.stranded_online += 1
        self._obs.count("fault.stranded")
        self._obs.event("stranded", request=root.request_id)

    def _handle_cancel(self, request: RideRequest, now: float) -> None:
        """A passenger withdraws a request before pick-up.

        No-op when the passengers are already aboard or the request
        already failed (unserved/stranded); an assigned request is
        removed from its taxi's schedule and the plan rebuilt for the
        remaining riders.
        """
        rid = request.request_id
        trip = self._log.trips.get(rid)
        if trip is not None:
            if not math.isnan(trip.pickup_time):
                return  # already aboard (or delivered): too late
            taxi = self._fleet.get(trip.taxi_id)
            if taxi is None or rid not in taxi.assigned:
                return  # stranded after a breakdown; already accounted
            if not self._scheme.cancel_assigned(taxi, request, now):
                return
            self._was_busy[taxi.taxi_id] = not taxi.idle
            if request.offline:
                self._metrics.served_offline -= 1
                self._metrics.cancelled_offline += 1
            else:
                self._metrics.served_online -= 1
                self._metrics.cancelled_online += 1
        elif request.offline:
            if rid in self._offline_done:
                return  # expired before the passenger bothered to cancel
            self._resolve_offline(rid)
            self._metrics.cancelled_offline += 1
        else:
            # Online and never matched: either still buffered in an open
            # dispatch window (withdraw it before the flush) or already
            # in unserved_online.
            for i, pending in enumerate(self._window_buffer):
                if pending.request_id == rid:
                    del self._window_buffer[i]
                    self._metrics.cancelled_online += 1
                    break
            else:
                return
        self._obs.count("fault.cancellations")
        self._obs.event("cancel", request=rid, t=now)

    def _apply_shock(self, k: int, window: ShockWindow, now: float) -> None:
        """Delay every in-service taxi inside an active shock window.

        Each taxi is delayed at most once per window (tracked in
        ``_shocked``); taxis without a remaining route are unaffected
        but stay eligible if they pick up a plan while the window is
        still open.
        """
        xy = self._scheme.network.xy
        r2 = window.radius_m * window.radius_m
        shocked = self._shocked
        for tid, taxi in self._fleet.items():
            if taxi.out_of_service or (k, tid) in shocked:
                continue
            x, y = xy[taxi.loc]
            dx = float(x) - window.cx
            dy = float(y) - window.cy
            if dx * dx + dy * dy > r2:
                continue
            if taxi.apply_delay(window.delay_s):
                shocked.add((k, tid))
                self._metrics.shock_delays += 1
                self._scheme.on_taxi_replanned(taxi, now)
                self._obs.count("fault.shock_delays")
                self._obs.event("shock", taxi=tid, t=now, window=k)

    # ------------------------------------------------------------------
    # dispatching
    # ------------------------------------------------------------------
    def _install(self, result, request: RideRequest, now: float, offline: bool) -> None:
        taxi = self._scheme.install(result, request, now)
        self._was_busy[taxi.taxi_id] = True
        # A real match pre-empts any repositioning cruise: install()
        # replaced the plan wholesale, so just retire the bookkeeping.
        if self._rebalance_dest.pop(taxi.taxi_id, None) is not None:
            self._obs.count("rebalance.abandoned")
        self._log.record_assignment(request, result.taxi_id, now)
        if offline:
            self._metrics.served_offline += 1
            if self.on_decision is not None:
                self.on_decision(request, now, True, result.taxi_id, 0.0, "offline")
        else:
            self._metrics.served_online += 1

    def _dispatch_online(self, request: RideRequest, now: float, count_response: bool = True) -> bool:
        t0 = time.perf_counter()  # repro-lint: disable=REP003 reason=response-time metric only, never a decision input
        result = self._scheme.dispatch(request, now)
        elapsed = time.perf_counter() - t0  # repro-lint: disable=REP003 reason=response-time metric only, never a decision input
        self._obs.record("sim.dispatch", elapsed)
        self._obs.event(
            "dispatch",
            request=request.request_id,
            t=now,
            elapsed_ms=round(1000.0 * elapsed, 4),
            matched=result is not None,
            redispatch=not count_response,
        )
        if count_response:
            self._metrics.add_response(elapsed)
        kind = "online" if count_response else "redispatch"
        if result is None:
            if count_response:
                self._metrics.unserved_online += 1
            if self.on_decision is not None:
                self.on_decision(request, now, False, None, elapsed, kind)
            return False
        if count_response:
            self._metrics.add_candidates(result.num_candidates)
        self._install(result, request, now, offline=False)
        if self.on_decision is not None:
            self.on_decision(request, now, True, result.taxi_id, elapsed, kind)
        return True

    # ------------------------------------------------------------------
    # run orchestration (batch and streaming share every piece below)
    # ------------------------------------------------------------------
    def run(self) -> SimulationMetrics:
        """Execute the full workload and return the collected metrics.

        Batch mode is one kernel client: every request becomes a
        ``request.release`` event (heap order restores any ingestion
        disorder), the post-release drain is a chain of ``drain.tick``
        events, and the boundary work per event is exactly the classic
        loop's — so decision traces are bit-identical to the pre-kernel
        engine.
        """
        self._start_run(count_population=True)
        for request in self._requests:
            self._kernel.schedule(request.release_time, REQUEST_RELEASE, request)
        self._kernel.run()
        self._drain()
        return self._finish_run()

    def _start_run(self, count_population: bool) -> None:
        """Prepare metrics baselines and the fleet for event dispatch."""
        self._wall_start = time.perf_counter()  # repro-lint: disable=REP003 reason=wall_time_s metric only, never a decision input
        # The engine may be shared across runs (scenarios memoise it), so
        # engine statistics are reported as this run's delta.
        engine = self._scheme.engine
        self._stats_base = (engine.stats(), subgraph_cache_stats())
        if count_population:
            self._metrics.num_requests = len(self._requests)
            self._metrics.num_online = sum(1 for r in self._requests if not r.offline)
            self._metrics.num_offline = self._metrics.num_requests - self._metrics.num_online
            if self._faults is not None:
                self._request_by_id = {r.request_id: r for r in self._requests}

        self._scheme.register_fleet(self._fleet, now=0.0)
        for taxi in self._fleet.values():
            busy = not taxi.idle
            self._was_busy[taxi.taxi_id] = busy
            # A taxi idle from t=0 never crosses a busy->idle transition,
            # so the _advance_all hook would never fire for it and an
            # untouched fleet stayed invisible to idle-driven policies
            # (rebalancing, cruising cooldowns).  The base hook is an
            # idempotent re-index (grids are insert-or-move, the
            # partition index replaces), so firing it after
            # register_fleet cannot change any dispatch decision.
            if not busy and not taxi.out_of_service:
                self._scheme.on_taxi_idle(taxi, 0.0)

    def _boundary(self, now: float) -> None:
        """The per-event boundary: advance the fleet, commit the clock,
        replay due faults.  Order matters — a taxi broken by ``t <=
        now`` must not win the match for a request released at ``now``,
        so faults fire after the advance and before any dispatch."""
        self._advance_all(now)
        self._now = now
        self._apply_faults(now)

    def _on_request_release(self, event: Event) -> None:
        """Kernel handler: one ride request becomes visible."""
        request: RideRequest = event.payload
        now = event.time
        self._last_release = max(self._last_release, now)
        self._boundary(now)
        if self._rebalance is not None:
            self._schedule_rebalance_tick(now)
        if request.offline:
            self._register_offline(request)
        elif self._window_s is not None:
            self._collect_window(request, now)
        else:
            self._dispatch_online(request, now)
            contracts.check_request_accounting(self._metrics)

    # ------------------------------------------------------------------
    # dispatch-window batching (the window-lap scheme)
    # ------------------------------------------------------------------
    def _collect_window(self, request: RideRequest, now: float) -> None:
        """Buffer one online release until its dispatch window flushes."""
        self._window_buffer.append(request)
        self._obs.count("window.collected")
        if self._window_s <= 0.0:
            # Degenerate single-request window: flush at the release
            # instant, which reproduces the greedy per-request decisions
            # (the W -> 0 equivalence gate).
            self._flush_window(now)
        else:
            self._schedule_window_tick(now)
        contracts.check_request_accounting(self._metrics)

    def _schedule_window_tick(self, now: float) -> None:
        """Schedule the next window boundary (at most one outstanding).

        Boundaries sit on the absolute ``W``-grid, not ``now + W``, so
        the tick sequence is a function of the workload's release times
        alone, never of internal scheduling order.  The tick carries
        the protocol table's positive priority: a release landing
        *exactly* on a boundary always enters the closing window, in
        batch and streaming runs alike, independent of event sequence
        numbers (:mod:`repro.sim.events`).
        """
        if self._window_tick_at is not None:
            return
        w = self._window_s
        tick_at = (math.floor(now / w) + 1.0) * w
        self._window_tick_at = tick_at
        self._kernel.schedule(tick_at, WINDOW_TICK, priority=priority_of(WINDOW_TICK))

    def _on_window_tick(self, event: Event) -> None:
        """Kernel handler: one dispatch-window boundary."""
        now = event.time
        self._window_tick_at = None
        self._boundary(now)
        if self._window_buffer:
            self._flush_window(now)
        if self._window_buffer:
            # Unmatched survivors rolled forward: keep ticking.
            self._schedule_window_tick(now)
        contracts.check_request_accounting(self._metrics)

    def _flush_window(self, now: float) -> None:
        """Flush the buffered window through the scheme's global matcher.

        Requests already past their pick-up deadline expire without
        being matched; the rest go to ``scheme.match_window`` as one
        batch whose wall time is amortised evenly across its requests
        for the ``sim.dispatch``/response metrics.  Unmatched survivors
        roll into the next window while their deadline allows (never
        with ``W <= 0``, where no further tick would come); otherwise
        they are terminally unserved.
        """
        batch = self._window_buffer
        self._window_buffer = []
        live: list[RideRequest] = []
        for request in batch:
            if now > request.pickup_deadline:
                self._metrics.add_response(0.0)
                self._metrics.unserved_online += 1
                self._obs.count("window.expired")
                if self.on_decision is not None:
                    self.on_decision(request, now, False, None, 0.0, "online")
                continue
            live.append(request)
        if not live:
            return
        t0 = time.perf_counter()  # repro-lint: disable=REP003 reason=response-time metric only, never a decision input
        with self._obs.stage("window.solve"):
            outcomes = self._scheme.match_window(live, now)
        elapsed = time.perf_counter() - t0  # repro-lint: disable=REP003 reason=response-time metric only, never a decision input
        share = elapsed / len(live)
        self._obs.count("window.flushes")
        self._obs.count("window.batched_requests", len(live))
        rollover = self._window_s is not None and self._window_s > 0.0
        for request, result in outcomes:
            self._obs.record("sim.dispatch", share)
            self._obs.event(
                "dispatch",
                request=request.request_id,
                t=now,
                elapsed_ms=round(1000.0 * share, 4),
                matched=result is not None,
                redispatch=False,
            )
            if result is not None:
                self._metrics.add_response(share)
                self._metrics.add_candidates(result.num_candidates)
                self._install(result, request, now, offline=False)
                self._obs.count("window.matched")
                if self.on_decision is not None:
                    self.on_decision(request, now, True, result.taxi_id, share, "online")
            elif rollover and now < request.pickup_deadline:
                self._window_buffer.append(request)
                self._obs.count("window.rolled")
            else:
                self._metrics.add_response(share)
                self._metrics.unserved_online += 1
                self._obs.count("window.unmatched")
                if self.on_decision is not None:
                    self.on_decision(request, now, False, None, share, "online")

    # ------------------------------------------------------------------
    # proactive repositioning (repro.fleet.rebalance)
    # ------------------------------------------------------------------
    def _schedule_rebalance_tick(self, now: float) -> None:
        """Schedule the next repositioning boundary (at most one out).

        Like window ticks, rebalance boundaries sit on the absolute
        cadence grid and are armed by request releases — never by the
        tick handler itself — so the tick sequence is a pure function
        of the workload's release times, identical in batch and
        streaming runs.  The protocol table's priority (2) puts the
        tick after any release or window flush sharing its instant:
        the supply census always sees the post-dispatch idle set.
        """
        if self._rebalance_tick_at is not None:
            return
        cadence = self._rebalance.spec.cadence_s
        tick_at = (math.floor(now / cadence) + 1.0) * cadence
        self._rebalance_tick_at = tick_at
        self._kernel.schedule(tick_at, REBALANCE_TICK, priority=priority_of(REBALANCE_TICK))

    def _on_rebalance_tick(self, event: Event) -> None:
        """Kernel handler: one proactive-repositioning boundary.

        Census the parked idle taxis per partition (and the
        repositioning cruises already in flight, credited to their
        target), ask the policy for moves, and install each move as a
        stop-less cruise plan.  Every step is deterministic: the fleet
        is walked in id order and the planner is pure arithmetic.
        """
        now = event.time
        self._rebalance_tick_at = None
        self._boundary(now)
        policy = self._rebalance
        self._obs.count("rebalance.ticks")
        supply: dict[int, list[int]] = {}
        in_flight: dict[int, int] = {}
        for tid in sorted(self._fleet):
            taxi = self._fleet[tid]
            if taxi.out_of_service or not taxi.idle:
                # Matched or broken since its cruise was installed; the
                # _install/_handle_breakdown hooks already dropped the
                # destination, but a taxi matched while *parked* between
                # ticks never had one — pop unconditionally.
                self._rebalance_dest.pop(tid, None)
                continue
            if taxi.cruising:
                dest = self._rebalance_dest.get(tid)
                if dest is not None:
                    in_flight[dest] = in_flight.get(dest, 0) + 1
                # A demand-seeking cruise (no recorded destination) is
                # left alone: it already chases predicted encounters.
                continue
            if self._rebalance_dest.pop(tid, None) is not None:
                self._obs.count("rebalance.arrived")
            supply.setdefault(policy.partition_of(taxi.loc), []).append(tid)
        with self._obs.stage("rebalance.plan"):
            moves = policy.plan_moves(supply, in_flight, now)
        installed = 0
        for move in moves:
            taxi = self._fleet[move.taxi_id]
            route = policy.cruise_route(taxi.loc, now, move.target)
            if route is None:
                continue
            taxi.set_plan([], route)
            self._rebalance_dest[move.taxi_id] = move.target
            # Re-index: position-grid schemes key idle taxis by vertex,
            # and the cruise will move this one.
            self._scheme.on_taxi_replanned(taxi, now)
            installed += 1
            self._obs.event(
                "rebalance", taxi=move.taxi_id, source=move.source,
                target=move.target, t=now,
            )
        if installed:
            self._obs.count("rebalance.moves", installed)
        contracts.check_request_accounting(self._metrics)

    def _drain(self) -> None:
        """Drive open schedules to completion after the last release.

        Drain ticks are kernel events in fixed steps of
        ``DRAIN_STEP_S``, each clamped to the horizon deadline so the
        final boundary lands *exactly* on the cutoff.  (The pre-kernel
        loop overstepped: ``now += DRAIN_STEP_S`` with a ``now <
        deadline`` guard settled fares up to one full step past the
        advertised horizon whenever the horizon was not a step
        multiple.)  The clock is committed on every tick — it used to
        stay stale at the last release for the whole drain, so the
        monotone-clock contract compared each step against the wrong
        previous value and fault injection read old time.
        """
        # Window ticks can legitimately commit the clock past the last
        # release (the final window's boundary); the drain chain must
        # start from whichever is later or its first tick would be
        # scheduled in the past.
        now = max(self._last_release, self._now)
        deadline = now + DRAIN_HORIZON_S
        if now < deadline and any(not t.idle for t in self._fleet.values()):
            self._kernel.schedule(min(now + DRAIN_STEP_S, deadline), DRAIN_TICK, deadline)
            self._kernel.run()
        self._now = max(self._now, now)

    def _on_drain_tick(self, event: Event) -> None:
        """Kernel handler: one post-release drain step."""
        now = event.time
        deadline: float = event.payload
        self._boundary(now)
        if now < deadline and any(not t.idle for t in self._fleet.values()):
            self._kernel.schedule(min(now + DRAIN_STEP_S, deadline), DRAIN_TICK, deadline)

    def _finish_run(self) -> SimulationMetrics:
        """Close the books: offline sweep, episode settlement, gauges."""
        now = self._now

        # Requests still buffered in an open dispatch window (a stream
        # cut off before its tick fired) are unserved; without this the
        # request balance does not close.
        for _request in self._window_buffer:
            self._metrics.unserved_online += 1
            self._obs.count("window.unflushed")
        self._window_buffer.clear()

        # Final offline accounting: requests no taxi ever resolved are
        # either expired (deadline passed while waiting at the roadside)
        # or still waiting when the run ended.  Without this sweep the
        # request balance does not close.
        for rid, request in list(self._pending_offline.items()):
            if rid in self._offline_done or rid in self._log.trips:
                continue
            if now > request.pickup_deadline:
                self._metrics.expired_offline += 1
            else:
                self._metrics.unserved_offline += 1
        self._pending_offline.clear()

        # Episodes still open were cut off by the drain horizon with
        # passengers aboard.  Settle them at the cutoff instant so their
        # fares do not silently vanish from the payment aggregates, and
        # count them so the cutoff is visible in the metrics.
        for tid, episode in self._episodes.items():
            if not episode.active:
                continue
            self._settle_episode(self._fleet[tid], episode, self._now)
            episode.active = False
            self._metrics.unsettled_episodes += 1
            self._obs.count("sim.unsettled_episodes")
            self._obs.event("unsettled_episode", taxi=tid, t=self._now)

        engine = self._scheme.engine
        stats_base, subgraph0 = self._stats_base or ({}, subgraph_cache_stats())
        obs = self._obs
        # One harvesting surface for every engine counter (spe.cache_* in
        # all modes, sp.ch.* for the hierarchy backend): monotone tallies
        # become this run's delta, gauge-like keys are reported as-is.
        for key, value in engine.stats().items():
            if key in engine.STAT_GAUGES:
                obs.gauge(key, value)
            else:
                obs.gauge(key, value - stats_base.get(key, 0))
        subgraph = subgraph_cache_stats()
        obs.gauge("kernel.subgraph_hits", subgraph["hits"] - subgraph0["hits"])
        obs.gauge("kernel.subgraph_builds", subgraph["builds"] - subgraph0["builds"])
        obs.gauge("kernel.subgraph_entries", subgraph["entries"])
        obs.gauge("kernel.subgraph_memory_bytes", subgraph["memory_bytes"])
        obs.gauge("kernel.events_processed", self._kernel.events_processed)
        obs.gauge("kernel.events_scheduled", self._kernel.events_scheduled)
        self._scheme.collect_observability(obs)
        self._metrics.stages = obs.stage_snapshot()
        self._metrics.counters = obs.counter_snapshot()
        obs.close()

        self._metrics.index_memory_bytes = self._scheme.index_memory_bytes()
        self._metrics.wall_time_s = time.perf_counter() - self._wall_start  # repro-lint: disable=REP003 reason=wall_time_s metric only, never a decision input
        self._metrics.check_balance()
        return self._metrics

    # ------------------------------------------------------------------
    # streaming ingestion (the service façade's entry points)
    # ------------------------------------------------------------------
    def stream_begin(self) -> None:
        """Start an incremental run fed by :meth:`stream_submit`.

        The workload population counters grow per submission instead of
        being counted up front; everything else — the kernel, the event
        boundary, the drain, the final accounting — is shared with
        :meth:`run`, which is what makes batch and streamed replays of
        the same workload bit-identical.
        """
        if self._streaming:
            raise RuntimeError("stream_begin() called twice")
        if self._requests:
            raise RuntimeError(
                "streaming and a constructor workload are mutually exclusive; "
                "construct the simulator with requests=[]"
            )
        self._streaming = True
        self._start_run(count_population=False)

    def stream_submit(self, request: RideRequest) -> None:
        """Accept one request into the event queue.

        The caller (the service façade) has already admitted it; the
        release time must be at or after the committed clock — late
        arrivals are the *caller's* admission decision (reject or
        clamp), by design (:class:`~repro.sim.kernel.ScheduledInPast`).
        The request list is not retained, so memory stays bounded by
        the in-flight queue, not the stream length.
        """
        if not self._streaming:
            raise RuntimeError("stream_submit() before stream_begin()")
        self._metrics.num_requests += 1
        if request.offline:
            self._metrics.num_offline += 1
        else:
            self._metrics.num_online += 1
        if self._faults is not None:
            self._request_by_id[request.request_id] = request
        self._kernel.schedule(request.release_time, REQUEST_RELEASE, request)

    def stream_pump(self, until: float | None = None) -> int:
        """Dispatch queued events (optionally only up to ``until``)."""
        if not self._streaming:
            raise RuntimeError("stream_pump() before stream_begin()")
        return self._kernel.run(until=until)

    def stream_finish(self) -> SimulationMetrics:
        """End the stream: flush the queue, drain, close the books."""
        if not self._streaming:
            raise RuntimeError("stream_finish() before stream_begin()")
        self._kernel.run()
        self._drain()
        self._streaming = False
        return self._finish_run()

    def record_rejection(self, request: RideRequest, reason: str) -> None:
        """Account one request refused at the service admission boundary.

        The request enters the population counters and its terminal
        ``rejected_*`` bucket in the same breath, so the accounting
        identity (:meth:`SimulationMetrics.check_balance`) closes
        without the dispatcher ever seeing the request.
        """
        self._metrics.num_requests += 1
        if request.offline:
            self._metrics.num_offline += 1
            self._metrics.rejected_offline += 1
        else:
            self._metrics.num_online += 1
            self._metrics.rejected_online += 1
        self._obs.count(f"service.rejected.{reason}")
        self._obs.event(
            "rejected", request=request.request_id, reason=reason, t=self._now
        )
