"""Map-partitioning substrate: k-means, transition mining, partition strategies."""

from .bipartite import (
    DEFAULT_TRANSITION_CLUSTERS,
    MapPartitioning,
    bipartite_partition,
    geo_partition,
)
from .grid import grid_labels, grid_partition
from .kmeans import KMeansResult, cluster_sizes, kmeans
from .transition import TransitionModel

__all__ = [
    "DEFAULT_TRANSITION_CLUSTERS",
    "KMeansResult",
    "MapPartitioning",
    "TransitionModel",
    "bipartite_partition",
    "cluster_sizes",
    "geo_partition",
    "grid_labels",
    "grid_partition",
    "kmeans",
]
