"""Bipartite map partitioning (Section IV-B1 of the paper).

The road-network vertices are partitioned by alternating between two
views until a fixed point: *where* a vertex is (geography) and *where
trips from it go* (transition patterns mined from historical data).

Per iteration:

1. **Transition probability calculation** — with the current ``kappa``
   spatial clusters as the destination space, estimate each vertex's
   transition vector ``B_i`` from the historical trips.
2. **Transition clustering** — k-means the ``B_i`` into ``k_t < kappa``
   transition clusters (default ``k_t = 20``).
3. **Geo-clustering on transition clusters** — split each transition
   cluster of size ``n`` into ``round(n * kappa / N)`` spatial clusters
   by location.

The spatial clusters produced by step 3 become the partitions; the loop
stops when they stop changing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..network.graph import RoadNetwork
from .kmeans import kmeans
from .transition import TransitionModel

DEFAULT_TRANSITION_CLUSTERS = 20


@dataclass(frozen=True)
class MapPartitioning:
    """A partitioning of the road-network vertices.

    Attributes
    ----------
    labels:
        ``(n,)`` partition id per vertex.
    method:
        Human-readable name of the strategy that produced it
        (``"bipartite"``, ``"grid"``, ``"geo-kmeans"``).
    iterations:
        Outer-loop iterations (bipartite only; 0 otherwise).
    transition_model:
        The final :class:`TransitionModel` fitted against these
        partitions, when historical trips were available.
    """

    labels: np.ndarray
    method: str
    iterations: int = 0
    transition_model: TransitionModel | None = None
    _partitions: list[list[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.ndim != 1 or labels.size == 0:
            raise ValueError("labels must be a non-empty 1-D array")
        num = int(labels.max()) + 1
        if sorted(set(labels.tolist())) != list(range(num)):
            raise ValueError("partition labels must be contiguous from 0")
        parts: list[list[int]] = [[] for _ in range(num)]
        for v, z in enumerate(labels):
            parts[int(z)].append(v)
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_partitions", parts)

    @property
    def num_partitions(self) -> int:
        """Number of partitions ``kappa``."""
        return len(self._partitions)

    @property
    def partitions(self) -> list[list[int]]:
        """Vertex lists per partition."""
        return self._partitions

    def partition_of(self, v: int) -> int:
        """Partition id of vertex ``v``."""
        return int(self.labels[v])

    def sizes(self) -> np.ndarray:
        """Partition sizes."""
        return np.bincount(self.labels, minlength=self.num_partitions)

    def memory_bytes(self) -> int:
        """Approximate footprint of labels plus the transition model."""
        total = self.labels.nbytes + sum(64 + 8 * len(p) for p in self._partitions)
        if self.transition_model is not None:
            total += self.transition_model.memory_bytes()
        return total

    # ------------------------------------------------------------------
    # artifact-store serialisation
    # ------------------------------------------------------------------
    def to_arrays(self) -> tuple[dict[str, np.ndarray], dict]:
        """``(arrays, meta)`` for the artifact store; exact round trip."""
        arrays: dict[str, np.ndarray] = {"labels": self.labels}
        if self.transition_model is not None:
            arrays["transition_matrix"] = self.transition_model.matrix
            arrays["pickup_counts"] = self.transition_model.pickup_counts
        meta = {"method": self.method, "iterations": int(self.iterations)}
        return arrays, meta

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray], meta: dict) -> "MapPartitioning":
        """Rebuild from stored arrays; bit-identical to the fresh build.

        The transition model is reconstructed from its persisted matrix
        and pickup counts (its derived pickup frequencies are the same
        float64 division either way).
        """
        model = None
        if "transition_matrix" in arrays:
            model = TransitionModel(
                np.asarray(arrays["transition_matrix"], dtype=np.float64).copy(),
                np.asarray(arrays["pickup_counts"], dtype=np.float64).copy(),
            )
        return cls(
            labels=np.asarray(arrays["labels"], dtype=np.int64).copy(),
            method=str(meta.get("method", "bipartite")),
            iterations=int(meta.get("iterations", 0)),
            transition_model=model,
        )


def _relabel_contiguous(labels: np.ndarray) -> np.ndarray:
    """Map arbitrary labels to a contiguous 0..k-1 range."""
    _, contiguous = np.unique(labels, return_inverse=True)
    return contiguous.astype(np.int64)


def _partition_signature(labels: np.ndarray) -> frozenset[frozenset[int]]:
    """Order-independent signature of a partitioning, for convergence tests."""
    groups: dict[int, list[int]] = {}
    for v, z in enumerate(labels):
        groups.setdefault(int(z), []).append(v)
    return frozenset(frozenset(g) for g in groups.values())


def bipartite_partition(
    network: RoadNetwork,
    historical_trips: np.ndarray,
    num_partitions: int,
    num_transition_clusters: int = DEFAULT_TRANSITION_CLUSTERS,
    max_iterations: int = 10,
    smoothing: float = 0.0,
    seed: int = 0,
) -> MapPartitioning:
    """Run the bipartite map partitioning to a fixed point.

    Parameters
    ----------
    network:
        Road network whose vertices are partitioned.
    historical_trips:
        ``(m, 2)`` array of historical (origin vertex, destination
        vertex) pairs; this is the mined mobility data.
    num_partitions:
        Target ``kappa``.  The final count can differ slightly because
        step 3 allocates clusters by rounding per transition cluster.
    num_transition_clusters:
        ``k_t`` of step 2; the paper fixes 20 and requires
        ``k_t < kappa``.
    max_iterations:
        Safety cap on the outer loop (the paper iterates until the
        spatial clusters stop changing).
    smoothing:
        Laplace smoothing for the transition estimates.
    seed:
        RNG seed shared by all k-means invocations.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    n = network.num_vertices
    num_partitions = min(num_partitions, n)
    k_t = min(num_transition_clusters, num_partitions) if num_partitions > 1 else 1
    xy = np.asarray(network.xy, dtype=np.float64)
    trips = np.asarray(historical_trips, dtype=np.int64)

    # Initial spatial clustering on geography alone.
    labels = kmeans(xy, num_partitions, seed=seed).labels
    labels = _relabel_contiguous(labels)
    signature = _partition_signature(labels)
    model = TransitionModel.fit(trips, labels, int(labels.max()) + 1, smoothing=smoothing)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        kappa = int(labels.max()) + 1
        # Step 1: transition probabilities against the current clusters.
        model = TransitionModel.fit(trips, labels, kappa, smoothing=smoothing)

        # Step 2: cluster vertices by transition behaviour.
        transition_labels = kmeans(model.matrix, k_t, seed=seed + iterations).labels

        # Step 3: geo-split each transition cluster proportionally.
        new_labels = np.empty(n, dtype=np.int64)
        next_id = 0
        for t in range(int(transition_labels.max()) + 1):
            members = np.flatnonzero(transition_labels == t)
            if members.size == 0:
                continue
            want = int(np.floor(members.size * num_partitions / n + 0.5))
            want = max(1, min(want, members.size))
            sub = kmeans(xy[members], want, seed=seed + 31 * t + iterations).labels
            new_labels[members] = next_id + sub
            next_id += int(sub.max()) + 1
        new_labels = _relabel_contiguous(new_labels)

        new_signature = _partition_signature(new_labels)
        labels = new_labels
        if new_signature == signature:
            break
        signature = new_signature

    kappa = int(labels.max()) + 1
    model = TransitionModel.fit(trips, labels, kappa, smoothing=smoothing)
    return MapPartitioning(
        labels=labels,
        method="bipartite",
        iterations=iterations,
        transition_model=model,
    )


def geo_partition(
    network: RoadNetwork,
    num_partitions: int,
    historical_trips: np.ndarray | None = None,
    smoothing: float = 0.0,
    seed: int = 0,
) -> MapPartitioning:
    """Pure geographic k-means partitioning (ablation baseline).

    This is what you get from the bipartite scheme if the transition
    view is ignored entirely; used to quantify the contribution of
    mobility patterns (Table V companion).
    """
    labels = _relabel_contiguous(kmeans(np.asarray(network.xy), num_partitions, seed=seed).labels)
    model = None
    if historical_trips is not None:
        model = TransitionModel.fit(
            np.asarray(historical_trips, dtype=np.int64),
            labels,
            int(labels.max()) + 1,
            smoothing=smoothing,
        )
    return MapPartitioning(labels=labels, method="geo-kmeans", transition_model=model)
