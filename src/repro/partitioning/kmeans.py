"""A small, dependency-light k-means used by the map-partitioning code.

The paper's bipartite map partitioning calls k-means three times per
iteration — on geographic coordinates, on transition-probability
vectors, and again on coordinates within each transition cluster — so a
single well-tested implementation with k-means++ seeding is shared by
all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    labels:
        ``(n,)`` integer cluster assignment for each sample.
    centers:
        ``(k, d)`` cluster centroids.
    inertia:
        Sum of squared distances of samples to their assigned centre.
    iterations:
        Number of Lloyd iterations performed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    iterations: int

    @property
    def num_clusters(self) -> int:
        """Number of clusters actually produced."""
        return self.centers.shape[0]


def _kmeanspp_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centres proportionally to D^2."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = data[first]
    closest_sq = ((data - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with an existing centre.
            centers[j] = data[int(rng.integers(n))]
            continue
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centers[j] = data[choice]
        dist_sq = ((data - centers[j]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def _assign(data: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Label each sample with its nearest centre; also return distances^2."""
    # (n, k) pairwise squared distances without materialising n*k*d.
    sq = (
        (data**2).sum(axis=1)[:, None]
        - 2.0 * data @ centers.T
        + (centers**2).sum(axis=1)[None, :]
    )
    labels = np.argmin(sq, axis=1)
    return labels, np.maximum(sq[np.arange(data.shape[0]), labels], 0.0)


def kmeans(
    data: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: int | None = 0,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialisation.

    Parameters
    ----------
    data:
        ``(n, d)`` sample matrix.
    k:
        Requested number of clusters.  Clamped to ``n`` when fewer
        samples than clusters are supplied.
    max_iter:
        Iteration cap.
    tol:
        Relative inertia-improvement threshold for convergence.
    seed:
        Seed for the seeding RNG; determinism matters because map
        partitions feed every downstream index.

    Empty clusters are re-seeded with the sample farthest from its
    centre, so the result always has exactly ``min(k, n)`` clusters.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D array")
    n = data.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty data set")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    centers = _kmeanspp_init(data, k, rng)
    labels, dist_sq = _assign(data, centers)
    inertia = float(dist_sq.sum())
    iterations = 0

    for iterations in range(1, max_iter + 1):
        new_centers = np.empty_like(centers)
        counts = np.bincount(labels, minlength=k)
        for j in range(k):
            if counts[j] == 0:
                # Re-seed the empty cluster at the worst-fit sample.
                worst = int(np.argmax(dist_sq))
                new_centers[j] = data[worst]
                dist_sq[worst] = 0.0
            else:
                new_centers[j] = data[labels == j].mean(axis=0)
        centers = new_centers
        labels, dist_sq = _assign(data, centers)
        new_inertia = float(dist_sq.sum())
        if inertia - new_inertia <= tol * max(inertia, 1e-12):
            inertia = new_inertia
            break
        inertia = new_inertia

    return KMeansResult(labels=labels, centers=centers, inertia=inertia, iterations=iterations)


def cluster_sizes(labels: np.ndarray, k: int | None = None) -> np.ndarray:
    """Histogram of cluster sizes for a label vector."""
    labels = np.asarray(labels)
    if k is None:
        k = int(labels.max()) + 1 if labels.size else 0
    return np.bincount(labels, minlength=k)
