"""Transition-probability model mined from historical taxi trips.

Step 1 of the bipartite map partitioning (Section IV-B1) attaches to
every road vertex ``v_i`` a *transition probability vector* ``B_i`` of
size ``kappa``: the empirical probability that a ride hailed at ``v_i``
ends in each of the ``kappa`` spatial clusters.  The same statistics are
reused by probabilistic routing (Algorithm 4) to score partitions and
vertices by their chance of yielding a *suitable* offline request.
"""

from __future__ import annotations

import numpy as np


class TransitionModel:
    """Per-vertex transition probabilities plus pickup-demand weights.

    Parameters
    ----------
    matrix:
        ``(n, kappa)`` row-stochastic matrix; row ``i`` is ``B_i``.
    pickup_counts:
        ``(n,)`` number of historical pickups observed at each vertex,
        used to weight "probability of meeting a request" estimates by
        how much demand a vertex actually generates.
    """

    def __init__(self, matrix: np.ndarray, pickup_counts: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        pickup_counts = np.asarray(pickup_counts, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        if pickup_counts.shape != (matrix.shape[0],):
            raise ValueError("pickup_counts length must match matrix rows")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums[row_sums > 0], 1.0, atol=1e-6):
            raise ValueError("matrix rows must sum to 1 (or be all-zero)")
        self._matrix = matrix
        self._pickups = pickup_counts
        total = pickup_counts.sum()
        self._pickup_freq = pickup_counts / total if total > 0 else np.zeros_like(pickup_counts)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        trips: np.ndarray,
        dest_cluster_of_vertex: np.ndarray,
        num_clusters: int,
        smoothing: float = 0.0,
    ) -> "TransitionModel":
        """Estimate the model from historical ``(origin, destination)`` pairs.

        Parameters
        ----------
        trips:
            ``(m, 2)`` integer array of (origin vertex, destination
            vertex) per historical trip.
        dest_cluster_of_vertex:
            ``(n,)`` label array mapping each vertex to its spatial
            cluster; destinations are bucketed through it.
        num_clusters:
            The ``kappa`` of the label space.
        smoothing:
            Additive (Laplace) smoothing per cell.  Vertices with no
            observed pickups fall back to the global destination
            marginal, so every row is a proper distribution.
        """
        dest_cluster_of_vertex = np.asarray(dest_cluster_of_vertex, dtype=np.int64)
        n = dest_cluster_of_vertex.shape[0]
        trips = np.asarray(trips, dtype=np.int64)
        if trips.size and (trips.ndim != 2 or trips.shape[1] != 2):
            raise ValueError("trips must be an (m, 2) array")

        counts = np.zeros((n, num_clusters), dtype=np.float64)
        pickups = np.zeros(n, dtype=np.float64)
        if trips.size:
            origins = trips[:, 0]
            dest_clusters = dest_cluster_of_vertex[trips[:, 1]]
            np.add.at(counts, (origins, dest_clusters), 1.0)
            np.add.at(pickups, origins, 1.0)

        if smoothing > 0:
            counts += smoothing
        row_sums = counts.sum(axis=1, keepdims=True)
        global_marginal = counts.sum(axis=0)
        total = global_marginal.sum()
        if total > 0:
            global_marginal = global_marginal / total
        else:
            global_marginal = np.full(num_clusters, 1.0 / num_clusters)

        matrix = np.divide(counts, row_sums, out=np.zeros_like(counts), where=row_sums > 0)
        empty = (row_sums[:, 0] == 0)
        matrix[empty] = global_marginal
        return cls(matrix, pickups)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices the model covers."""
        return self._matrix.shape[0]

    @property
    def num_clusters(self) -> int:
        """Size ``kappa`` of the destination-cluster space."""
        return self._matrix.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """Read-only view of the ``(n, kappa)`` probability matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def pickup_counts(self) -> np.ndarray:
        """Read-only view of the per-vertex historical pickup counts."""
        view = self._pickups.view()
        view.flags.writeable = False
        return view

    def vector(self, v: int) -> np.ndarray:
        """Transition probability vector ``B_v`` (copy)."""
        return self._matrix[v].copy()

    def prob(self, v: int, cluster: int) -> float:
        """``B_{v,cluster}``: probability a trip from ``v`` ends in ``cluster``."""
        return float(self._matrix[v, cluster])

    def pickup_count(self, v: int) -> float:
        """Historical pickups observed at vertex ``v``."""
        return float(self._pickups[v])

    def pickup_frequency(self, v: int) -> float:
        """Share of all historical pickups that happened at ``v``."""
        return float(self._pickup_freq[v])

    def relative_pickup_frequency(self, v: int) -> float:
        """Pickups at ``v`` relative to the hottest vertex, in ``[0, 1]``."""
        peak = float(self._pickups.max()) if self._pickups.size else 0.0
        if peak <= 0:
            return 0.0
        return float(self._pickups[v]) / peak

    def mass_to(self, v: int, dest_clusters) -> float:
        """``psi_v``: probability a trip from ``v`` ends in any of ``dest_clusters``.

        This is the accumulated transition probability used to weight
        vertices in fine-grained probabilistic routing (step 3 of
        Algorithm 4).
        """
        idx = np.fromiter(dest_clusters, dtype=np.int64)
        if idx.size == 0:
            return 0.0
        return float(self._matrix[v, idx].sum())

    def partition_probability(
        self,
        vertices,
        dest_clusters,
        weight_by_demand: bool = True,
    ) -> float:
        """``pi_i``: chance of meeting a suitable request inside a partition.

        Step 1 of Algorithm 4 sums, over the partition's vertices, the
        transition probability towards the suitable destination set.
        With ``weight_by_demand`` (the default) each vertex contributes
        proportionally to its historical pickup frequency, so partitions
        that generate little demand score low even if their few trips
        head the right way.
        """
        verts = np.fromiter(vertices, dtype=np.int64)
        dests = np.fromiter(dest_clusters, dtype=np.int64)
        if verts.size == 0 or dests.size == 0:
            return 0.0
        mass = self._matrix[np.ix_(verts, dests)].sum(axis=1)
        if weight_by_demand:
            return float((mass * self._pickup_freq[verts]).sum())
        return float(mass.sum() / verts.size)

    def memory_bytes(self) -> int:
        """Approximate footprint of the model's arrays."""
        return self._matrix.nbytes + self._pickups.nbytes + self._pickup_freq.nbytes
