"""Uniform-grid map partitioning (the strategy of T-Share and pGreedyDP).

Previous schemes index taxis and requests with a regular grid laid over
the road network.  This module provides that partitioning both as the
substrate of the baseline schemes and as the "Grid" row of Table V,
where the paper compares it against bipartite map partitioning.
"""

from __future__ import annotations

import math

import numpy as np

from ..network.graph import RoadNetwork
from .bipartite import MapPartitioning, _relabel_contiguous
from .transition import TransitionModel


def grid_labels(
    xy: np.ndarray,
    rows: int,
    cols: int,
) -> np.ndarray:
    """Raw grid-cell label (``row * cols + col``) for each point.

    Cells are laid over the bounding box of ``xy``; points on the upper
    boundary fall into the last row/column.
    """
    xy = np.asarray(xy, dtype=np.float64)
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one row and one column")
    x0, y0 = xy.min(axis=0)
    x1, y1 = xy.max(axis=0)
    width = max(x1 - x0, 1e-9)
    height = max(y1 - y0, 1e-9)
    col = np.minimum((cols * (xy[:, 0] - x0) / width).astype(np.int64), cols - 1)
    row = np.minimum((rows * (xy[:, 1] - y0) / height).astype(np.int64), rows - 1)
    return row * cols + col


def grid_partition(
    network: RoadNetwork,
    num_partitions: int,
    historical_trips: np.ndarray | None = None,
    smoothing: float = 0.0,
) -> MapPartitioning:
    """Partition the network with a square grid of about ``num_partitions`` cells.

    The grid dimension is ``ceil(sqrt(num_partitions))`` per side; empty
    cells are dropped and the remaining cells re-labelled contiguously,
    so the actual partition count is the number of *occupied* cells.
    A transition model is fitted against the grid cells when historical
    trips are supplied, so grid-partitioned mT-Share variants can still
    run probabilistic routing (needed for the Table V comparison in the
    non-peak scenario).
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    side = max(1, math.ceil(math.sqrt(num_partitions)))
    raw = grid_labels(np.asarray(network.xy), side, side)
    labels = _relabel_contiguous(raw)
    model = None
    if historical_trips is not None:
        model = TransitionModel.fit(
            np.asarray(historical_trips, dtype=np.int64),
            labels,
            int(labels.max()) + 1,
            smoothing=smoothing,
        )
    return MapPartitioning(labels=labels, method="grid", transition_model=model)
