"""No-Sharing baseline: the regular taxi service (Section V-A2).

Each request is assigned to the geographically nearest *idle* taxi
within the searching range ``gamma``; the taxi serves the trip alone
along the shortest path and becomes available again after drop-off.
"""

from __future__ import annotations

from ..core.matching import MatchResult
from ..core.routing import RouteInfeasible
from ..demand.request import RideRequest
from ..fleet.schedule import dropoff, pickup
from ..fleet.taxi import Taxi
from ..index.spatial import GridSpatialIndex
from .base import DispatchScheme


class NoSharing(DispatchScheme):
    """Nearest-idle-taxi dispatch without ridesharing."""

    name = "No-Sharing"

    def __init__(self, network, engine, config) -> None:
        super().__init__(network, engine, config)
        self._idle_index = GridSpatialIndex(cell_size_m=max(200.0, config.search_range_m / 5))

    def _index_taxi(self, taxi: Taxi, now: float) -> None:
        if taxi.idle and not taxi.out_of_service:
            x, y = self._network.xy[taxi.loc]
            self._idle_index.insert(taxi.taxi_id, float(x), float(y))
        else:
            self._idle_index.remove(taxi.taxi_id)

    def on_taxi_breakdown(self, taxi: Taxi, now: float) -> None:
        """A broken taxi is no longer idle capacity: drop it from the grid."""
        self._idle_index.remove(taxi.taxi_id)

    def dispatch(self, request: RideRequest, now: float) -> MatchResult | None:
        """Assign the nearest idle taxi that can make the pick-up deadline."""
        gamma = self._config.gamma_for_wait(request.max_wait)
        ox, oy = self._network.xy[request.origin]
        hits = self._idle_index.query_radius(float(ox), float(oy), gamma)
        stops = [pickup(request), dropoff(request)]
        for taxi_id, _dist in hits:
            taxi = self._fleet[taxi_id]
            if not taxi.idle:
                continue
            node, ready = taxi.position_at(now)
            if ready + self._engine.cost(node, request.origin) > request.pickup_deadline:
                continue
            try:
                route = self._fallback_router.route_for_schedule(node, ready, stops)
            except RouteInfeasible:
                continue
            return MatchResult(
                taxi_id=taxi_id,
                stops=tuple(stops),
                route=route,
                detour_cost=route.total_cost(),
                num_candidates=len(hits),
            )
        return None

    def try_offline(self, taxi: Taxi, request: RideRequest, now: float) -> MatchResult | None:
        """A regular taxi only stops for street hails when it is vacant."""
        if not taxi.idle:
            return None
        return self.generic_insertion(taxi, request, now)

    def index_memory_bytes(self) -> int:
        """Footprint of the idle-taxi grid."""
        return self._idle_index.memory_bytes()
