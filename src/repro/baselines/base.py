"""The dispatcher interface shared by mT-Share and every baseline.

The simulator is scheme-agnostic: it feeds requests and taxi-movement
notifications to a :class:`DispatchScheme` and installs the plans the
scheme returns.  Each scheme owns its own index structures; the
simulator owns the fleet and the clock.
"""

from __future__ import annotations

import abc

import numpy as np

from ..analysis import contracts
from ..config import SystemConfig
from ..core.matching import MatchResult
from ..demand.request import RideRequest
from ..fleet.schedule import evaluate_insertions, remove_request_stops
from ..fleet.taxi import Taxi
from ..network.graph import RoadNetwork
from ..network.shortest_path import ShortestPathEngine
from ..obs import NULL, Instrumentation
from ..core.routing import BasicRouter, ProbabilisticRouter, RouteInfeasible, compose_route


class DispatchScheme(abc.ABC):
    """Base class for ridesharing dispatch schemes.

    Subclasses implement :meth:`dispatch` (match one online request)
    and may override the indexing hooks.  The lifecycle is::

        scheme = SomeScheme(network, engine, config)
        scheme.register_fleet(fleet, now=0.0)
        ...
        result = scheme.dispatch(request, now)
        if result is not None:
            scheme.install(result, request, now)
    """

    #: Human-readable scheme name used in reports.
    name = "abstract"

    #: Batch-window length in simulation seconds.  ``None`` (every
    #: greedy scheme) dispatches each online request immediately at its
    #: release; a float makes the simulator buffer releases and flush
    #: them through :meth:`match_window` at ``window.tick`` boundaries
    #: (``0.0`` flushes a single-request window per release).
    dispatch_window_s: float | None = None

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        config: SystemConfig,
    ) -> None:
        self._network = network
        self._engine = engine
        self._config = config
        self._fleet: dict[int, Taxi] = {}
        self._fallback_router = BasicRouter(network, engine, None)
        self._prob_router: ProbabilisticRouter | None = None
        self._obs: Instrumentation = NULL

    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The road network."""
        return self._network

    @property
    def engine(self) -> ShortestPathEngine:
        """Cached shortest-path engine."""
        return self._engine

    @property
    def config(self) -> SystemConfig:
        """System parameters."""
        return self._config

    @property
    def fleet(self) -> dict[int, Taxi]:
        """The registered taxis, by id."""
        return self._fleet

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def instrument(self, obs: Instrumentation) -> None:
        """Attach an observability registry and propagate it downstream.

        The simulator calls this once before the run; subclasses extend
        it to cover their own matchers/routers/indexes.
        """
        self._obs = obs
        self._fallback_router.instrument(obs)
        if self._prob_router is not None:
            self._prob_router.instrument(obs)

    def collect_observability(self, obs: Instrumentation) -> None:
        """Report end-of-run gauges (index sizes, fallback tallies)."""
        obs.gauge("route.fallbacks_total", self._fallback_router.fallbacks)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def register_fleet(self, fleet: dict[int, Taxi], now: float) -> None:
        """Adopt the fleet and build initial indexes."""
        self._fleet = fleet
        for taxi in fleet.values():
            self._index_taxi(taxi, now)

    @abc.abstractmethod
    def dispatch(self, request: RideRequest, now: float) -> MatchResult | None:
        """Match an online request; ``None`` means it cannot be served."""

    def match_window(
        self, batch: list[RideRequest], now: float
    ) -> list[tuple[RideRequest, MatchResult | None]]:
        """Match one dispatch window's worth of requests globally.

        Only meaningful for schemes that set :attr:`dispatch_window_s`;
        the simulator never calls it otherwise.  Returns one
        ``(request, result-or-None)`` pair per batch entry, in batch
        order — a ``None`` result means "unmatched this window" and the
        simulator decides between rolling the request forward and
        declaring it unserved.
        """
        raise NotImplementedError(f"{self.name} does not batch dispatch windows")

    def _apply_plan(self, result: MatchResult, request: RideRequest, now: float) -> Taxi:
        """Raw plan application: assign, install route, refresh indexes."""
        taxi = self._fleet[result.taxi_id]
        contracts.check_schedule(result.stops, taxi.occupancy, taxi.capacity)
        taxi.assign(request)
        taxi.set_plan(list(result.stops), result.route)
        self._index_taxi(taxi, now)
        return taxi

    def on_taxi_advanced(self, taxi: Taxi, now: float, stops_fired: bool) -> None:
        """Called after the simulator moved a taxi.

        ``stops_fired`` is True when a pick-up/drop-off executed during
        the move.  Default: refresh the taxi's index entry when its
        passenger composition changed.
        """
        if stops_fired:
            self._index_taxi(taxi, now)

    def on_taxi_idle(self, taxi: Taxi, now: float) -> None:
        """Called when a taxi finishes its schedule and parks."""
        self._index_taxi(taxi, now)

    def on_request_finished(self, request: RideRequest) -> None:
        """Called when a request's passengers are dropped off."""

    # ------------------------------------------------------------------
    # fault hooks (repro.faults; docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def on_taxi_breakdown(self, taxi: Taxi, now: float) -> None:
        """Called when a taxi goes out of service mid-run.

        Subclasses evict the taxi from their index structures so it can
        never again appear in a candidate set; the base scheme keeps no
        per-taxi index.  The simulator has already cleared the taxi's
        plan and commitments when this fires.
        """

    def on_taxi_replanned(self, taxi: Taxi, now: float) -> None:
        """Called after the simulator rewrote a taxi's plan in place
        (a cancellation removed stops, a shock delayed the route);
        default: refresh the taxi's index entries."""
        self._index_taxi(taxi, now)

    def cancel_assigned(self, taxi: Taxi, request: RideRequest, now: float) -> bool:
        """Withdraw an assigned-but-not-picked-up request from a taxi.

        Removes the request's stops from the pending schedule and
        replans the route for everyone left.  Stop removal only
        shortens arrivals (triangle inequality), so the deadline-checked
        replanning normally succeeds; if a shock delay has meanwhile
        pushed a co-rider past a deadline, the route is rebuilt from
        plain shortest paths without deadline validation — passengers
        already committed must still be delivered.  Returns True when
        the cancellation was applied.
        """
        node, ready = taxi.position_at(now)
        remaining = remove_request_stops(taxi.pending_stops(), request.request_id)
        taxi.unassign(request)
        if remaining:
            contracts.check_schedule(remaining, taxi.occupancy, taxi.capacity)
            try:
                route = self._fallback_router.route_for_schedule(node, ready, remaining)
            except RouteInfeasible:
                legs = []
                prev = node
                for stop in remaining:
                    legs.append(self._engine.path(prev, stop.node))
                    prev = stop.node
                route = compose_route(self._network, node, ready, legs)
            taxi.set_plan(remaining, route)
        else:
            taxi.clear_plan()
        self.on_request_finished(request)
        self.on_taxi_replanned(taxi, now)
        return True

    def index_memory_bytes(self) -> int:
        """Approximate footprint of this scheme's index structures."""
        return 0

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _index_taxi(self, taxi: Taxi, now: float) -> None:
        """Refresh the scheme's index entries for one taxi (hook)."""

    def generic_insertion(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> MatchResult | None:
        """Minimum-detour feasible insertion of ``request`` into one taxi.

        Shared by the offline-encounter path of all schemes (the paper
        extends T-Share and pGreedyDP the same way for fairness) and by
        grid-based baselines as their scheduling core.  Routes use plain
        cached shortest paths.
        """
        if taxi.committed + request.num_passengers > taxi.capacity:
            return None
        node, ready = taxi.position_at(now)
        pending = taxi.pending_stops()
        current_cost = taxi.remaining_route_cost(ready)

        batch = evaluate_insertions(
            self._engine, node, ready, pending, request, taxi.occupancy, taxi.capacity
        )
        self._obs.count("match.insertions_evaluated", batch.size)
        self._obs.count("kernel.batched_insertions", 1)
        feasible = np.flatnonzero(batch.feasible)
        if feasible.size == 0:
            return None
        k = int(feasible[np.argmin(batch.last_arrival[feasible])])
        detour = (float(batch.last_arrival[k]) - ready) - current_cost
        stops = batch.stops_for(k)
        try:
            route = self._fallback_router.route_for_schedule(node, ready, stops)
        except RouteInfeasible:
            return None
        return MatchResult(
            taxi_id=taxi.taxi_id,
            stops=tuple(stops),
            route=route,
            detour_cost=detour,
            num_candidates=1,
        )

    def try_offline(self, taxi: Taxi, request: RideRequest, now: float) -> MatchResult | None:
        """Attempt to serve an offline request this taxi just encountered."""
        return self.generic_insertion(taxi, request, now)

    # ------------------------------------------------------------------
    # optional probabilistic routing (Fig. 16's scheme x routing grid)
    # ------------------------------------------------------------------
    def enable_probabilistic(self, router: ProbabilisticRouter) -> None:
        """Attach a probabilistic router to this scheme.

        The paper's Fig. 16 combines probabilistic routing with T-Share
        and pGreedyDP as well: after a match is found, the winning
        route is re-planned to maximise the chance of encountering
        suitable offline requests, whenever the taxi has enough idle
        seats (same trigger as mT-Share_pro).
        """
        self._prob_router = router

    def maybe_cruise(self, taxi: Taxi, now: float) -> bool:
        """Send an idle taxi on a demand-seeking cruise (non-peak mode).

        Only active when a probabilistic router is attached; the paper's
        non-peak premise is that taxis without online assignments go
        looking for street-hailing passengers.  Attempts are rate
        limited per taxi so parked taxis do not replan continuously.
        """
        if self._prob_router is None or not taxi.idle:
            return False
        if not self._config.enable_cruising:
            return False
        if taxi.cruising:
            return False  # still driving an earlier (seek or rebalance) cruise
        cooldowns = getattr(self, "_cruise_cooldown", None)
        if cooldowns is None:
            cooldowns = {}
            self._cruise_cooldown = cooldowns
        if now < cooldowns.get(taxi.taxi_id, 0.0):
            return False
        route = self._prob_router.cruise_route(taxi.loc, now)
        if route is None or route.empty:
            cooldowns[taxi.taxi_id] = now + 300.0
            return False
        taxi.set_plan([], route)
        cooldowns[taxi.taxi_id] = route.end_time
        self._index_taxi(taxi, now)
        return True

    def _maybe_probabilistic_route(self, taxi: Taxi, request: RideRequest,
                                   result: MatchResult, now: float) -> MatchResult:
        """Re-plan a match's route probabilistically when enabled."""
        if self._prob_router is None:
            return result
        idle_after = taxi.capacity - taxi.committed - request.num_passengers
        if idle_after < taxi.capacity * self._config.probabilistic_idle_seats:
            return result
        from ..core.matching import taxi_vector_with
        from ..core.routing import RouteInfeasible

        node, ready = taxi.position_at(now)
        vec = taxi_vector_with(self._network, taxi, request, now)
        try:
            route = self._prob_router.route_for_schedule(
                node, ready, list(result.stops), taxi_vector=vec
            )
        except RouteInfeasible:
            return result
        return MatchResult(
            taxi_id=result.taxi_id,
            stops=result.stops,
            route=route,
            detour_cost=route.total_cost() - taxi.remaining_route_cost(ready),
            num_candidates=result.num_candidates,
            probabilistic=True,
        )

    def install(self, result: MatchResult, request: RideRequest, now: float) -> Taxi:
        """Apply a match: assign the request and set the taxi's plan.

        When a probabilistic router is attached, the route is upgraded
        first (the schedule itself is unchanged).
        """
        taxi = self._fleet[result.taxi_id]
        if not result.probabilistic:
            result = self._maybe_probabilistic_route(taxi, request, result, now)
        return self._apply_plan(result, request, now)
