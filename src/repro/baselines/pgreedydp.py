"""pGreedyDP baseline (Tong et al., VLDB'18 — unified route planning).

pGreedyDP indexes taxis with a uniform grid like T-Share, but searches
*only* around the request's origin (range ``gamma``), so it gathers the
largest candidate sets of all compared schemes (the paper's Table III).
For every candidate it computes the minimum-detour feasible insertion
of the new pick-up/drop-off pair into the existing schedule — the
"insertion operator" solved with dynamic programming in the original —
and greedily assigns the request to the candidate with the global
minimum detour.  Examining every candidate exhaustively is also why it
shows the largest response times in the paper's Figs. 7 and 11.
"""

from __future__ import annotations

from ..core.matching import MatchResult
from ..demand.request import RideRequest
from ..fleet.insertion_dp import best_insertion_dp
from ..fleet.taxi import Taxi
from ..index.spatial import GridSpatialIndex
from .base import DispatchScheme


class PGreedyDP(DispatchScheme):
    """Origin-side grid search with exact min-detour insertion per taxi."""

    name = "pGreedyDP"

    def __init__(self, network, engine, config) -> None:
        super().__init__(network, engine, config)
        self._position_index = GridSpatialIndex(cell_size_m=config.grid_cell_m)
        self.last_candidate_count = 0

    # ------------------------------------------------------------------
    def _index_taxi(self, taxi: Taxi, now: float) -> None:
        x, y = self._network.xy[taxi.loc]
        self._position_index.insert(taxi.taxi_id, float(x), float(y))

    def on_taxi_advanced(self, taxi: Taxi, now: float, stops_fired: bool) -> None:
        """Keep current positions fresh, as with T-Share."""
        self._index_taxi(taxi, now)

    def on_taxi_breakdown(self, taxi: Taxi, now: float) -> None:
        """Evict the broken taxi from the position grid."""
        self._position_index.remove(taxi.taxi_id)

    # ------------------------------------------------------------------
    def _candidates(self, request: RideRequest, now: float) -> list[Taxi]:
        gamma = self._config.gamma_for_wait(request.max_wait)
        ox, oy = self._network.xy[request.origin]
        # Grid-granular range query: cells whose centre falls inside the
        # searching disc.  Taxis near the far edge of excluded cells are
        # invisible — the "partial trip information" cost of grid
        # indexing that mT-Share's vertex-exact indexes avoid.
        hits = self._position_index.query_radius_cells(float(ox), float(oy), gamma)
        out = []
        for taxi_id, _dist in hits:
            taxi = self._fleet[taxi_id]
            if taxi.committed + request.num_passengers > taxi.capacity:
                continue
            out.append(taxi)
        return out

    def _min_detour_insertion(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> tuple[float, list] | None:
        """The DP insertion operator (Xu et al., ICDE'19): the optimal
        (i, j) under the original stop order, computed in O(m^2) with
        slack-based pruning instead of enumerating all instances.
        Property-tested equivalent to full enumeration.
        """
        node, ready = taxi.position_at(now)
        if ready + self._engine.cost(node, request.origin) > request.pickup_deadline:
            return None
        return best_insertion_dp(
            node,
            ready,
            taxi.pending_stops(),
            request,
            self._engine.cost,
            taxi.capacity,
            initial_onboard=taxi.occupancy,
        )

    def dispatch(self, request: RideRequest, now: float) -> MatchResult | None:
        """Greedy assignment: the candidate with the global minimum detour."""
        with self._obs.stage("match.candidates"):
            candidates = self._candidates(request, now)
        self._obs.count("match.candidates_found", len(candidates))
        self.last_candidate_count = len(candidates)
        best_taxi: Taxi | None = None
        best_detour = float("inf")
        best_stops: list | None = None
        with self._obs.stage("match.insertion"):
            for taxi in candidates:
                found = self._min_detour_insertion(taxi, request, now)
                if found is None:
                    continue
                detour, stops = found
                if detour < best_detour:
                    best_detour = detour
                    best_stops = stops
                    best_taxi = taxi
        if best_taxi is None:
            return None
        node, ready = best_taxi.position_at(now)
        route = self._fallback_router.route_for_schedule(node, ready, best_stops)
        return MatchResult(
            taxi_id=best_taxi.taxi_id,
            stops=tuple(best_stops),
            route=route,
            detour_cost=best_detour,
            num_candidates=len(candidates),
        )

    def index_memory_bytes(self) -> int:
        """Footprint of the position grid."""
        return self._position_index.memory_bytes()
