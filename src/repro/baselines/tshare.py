"""T-Share baseline (Ma, Zheng, Wolfson — ICDE'13 / TKDE'15).

T-Share indexes taxis with a uniform spatial grid and serves a request
through a *dual-side* search: candidate taxis must be able to reach the
request's origin before the pick-up deadline (origin side, range
``gamma``) *and* be positioned to reach the destination before the
delivery deadline (destination side).  Crucially, T-Share returns the
**first** candidate whose schedule admits a feasible insertion — not
the best one — scanning candidates from nearest to farthest.  The
paper's Table III traces its small candidate sets (and hence its missed
matches) to exactly this intersection.
"""

from __future__ import annotations

from ..core.matching import MatchResult
from ..core.routing import RouteInfeasible
from ..demand.request import RideRequest
from ..fleet.schedule import arrival_times, capacity_ok, deadlines_met, enumerate_insertions
from ..fleet.taxi import Taxi
from ..index.spatial import GridSpatialIndex
from .base import DispatchScheme


class TShare(DispatchScheme):
    """Grid-indexed dual-side search with first-valid selection."""

    name = "T-Share"

    def __init__(self, network, engine, config) -> None:
        super().__init__(network, engine, config)
        self._position_index = GridSpatialIndex(cell_size_m=config.grid_cell_m)
        #: How many nearest candidates are examined before giving up;
        #: T-Share stops at the first feasible one anyway.
        self.max_examined = 64
        self.last_candidate_count = 0

    # ------------------------------------------------------------------
    def _index_taxi(self, taxi: Taxi, now: float) -> None:
        x, y = self._network.xy[taxi.loc]
        self._position_index.insert(taxi.taxi_id, float(x), float(y))

    def on_taxi_advanced(self, taxi: Taxi, now: float, stops_fired: bool) -> None:
        """Track current positions continuously: the grid index is a
        position index, unlike mT-Share's route-based partition lists."""
        self._index_taxi(taxi, now)

    def on_taxi_breakdown(self, taxi: Taxi, now: float) -> None:
        """Evict the broken taxi from the position grid."""
        self._position_index.remove(taxi.taxi_id)

    # ------------------------------------------------------------------
    def _dual_side_candidates(self, request: RideRequest, now: float) -> list[Taxi]:
        """Origin-side disc intersected with the destination-side disc.

        Both sides use the searching range ``gamma`` (Section V-A2).
        This is the filter the paper blames for T-Share's small
        candidate sets: taxis that could serve the request but are
        currently far from *both* endpoints — e.g. heading towards the
        origin from beyond ``gamma`` — are removed outright.
        """
        speed = self._network.speed_mps
        gamma = self._config.gamma_for_wait(request.max_wait)
        # Origin side: grids whose taxis can still make the pick-up
        # deadline — the temporal radius speed * Delta_t, never wider
        # than gamma.
        origin_radius = min(gamma, max(0.0, request.max_wait) * speed)
        ox, oy = self._network.xy[request.origin]
        origin_hits = self._position_index.query_radius_cells(
            float(ox), float(oy), origin_radius
        )

        # Destination side: grids whose taxis can still make the
        # delivery deadline from their current position.
        dx, dy = self._network.xy[request.destination]
        dest_radius = max(0.0, request.deadline - now) * speed
        dest_ids = {
            taxi_id
            for taxi_id, _d in self._position_index.query_radius_cells(
                float(dx), float(dy), dest_radius
            )
        }

        candidates = []
        for taxi_id, _dist in origin_hits:  # nearest first
            if taxi_id not in dest_ids:
                continue
            taxi = self._fleet[taxi_id]
            if taxi.committed + request.num_passengers > taxi.capacity:
                continue
            candidates.append(taxi)
        return candidates

    def _first_feasible_insertion(self, taxi: Taxi, request: RideRequest, now: float):
        """T-Share stops at the first *valid* schedule instance — it does
        not look for the minimum-detour one (Section V-A2)."""

        node, ready = taxi.position_at(now)
        cost_fn = self._engine.cost
        for _i, _j, stops in enumerate_insertions(taxi.pending_stops(), request):
            if not capacity_ok(stops, taxi.occupancy, taxi.capacity):
                continue
            times = arrival_times(node, ready, stops, cost_fn)
            if not deadlines_met(stops, times):
                continue
            detour = (times[-1] - ready) - taxi.remaining_route_cost(ready)
            return detour, stops, node, ready
        return None

    def dispatch(self, request: RideRequest, now: float) -> MatchResult | None:
        """Return the *first* candidate with a feasible insertion."""
        with self._obs.stage("match.candidates"):
            candidates = self._dual_side_candidates(request, now)
        self._obs.count("match.candidates_found", len(candidates))
        self.last_candidate_count = len(candidates)
        for taxi in candidates[: self.max_examined]:
            node, ready = taxi.position_at(now)
            if ready + self._engine.cost(node, request.origin) > request.pickup_deadline:
                continue
            with self._obs.stage("match.insertion"):
                found = self._first_feasible_insertion(taxi, request, now)
            if found is None:
                continue
            detour, stops, node, ready = found
            try:
                route = self._fallback_router.route_for_schedule(node, ready, stops)
            except RouteInfeasible:  # infeasible route, try next taxi
                continue
            return MatchResult(
                taxi_id=taxi.taxi_id,
                stops=tuple(stops),
                route=route,
                detour_cost=detour,
                num_candidates=len(candidates),
            )
        return None

    def index_memory_bytes(self) -> int:
        """Footprint of the position grid."""
        return self._position_index.memory_bytes()
