"""Comparison schemes: No-Sharing, T-Share, pGreedyDP (Section V-A2)."""

from .base import DispatchScheme
from .nosharing import NoSharing
from .pgreedydp import PGreedyDP
from .tshare import TShare

__all__ = ["DispatchScheme", "NoSharing", "PGreedyDP", "TShare"]
