"""Deterministic fault injection and graceful degradation.

``repro.faults`` turns the simulator's happy path into a chaos-testable
one: :mod:`repro.faults.plan` draws seed-driven fault plans (taxi
breakdowns, pre-pickup cancellations, zonal travel-time shocks) and
:mod:`repro.faults.recovery` builds the continuation requests used to
salvage broken taxis' passengers.  The injection and recovery
orchestration itself lives in :class:`repro.sim.engine.Simulator`; the
semantics are documented in docs/ROBUSTNESS.md.
"""

from .plan import (
    FaultPlan,
    FaultSpec,
    RequestCancellation,
    ShockWindow,
    TaxiBreakdown,
    build_fault_plan,
    format_fault_spec,
    parse_fault_spec,
)
from .recovery import CONTINUATION_ID_BASE, continuation_request

__all__ = [
    "CONTINUATION_ID_BASE",
    "FaultPlan",
    "FaultSpec",
    "RequestCancellation",
    "ShockWindow",
    "TaxiBreakdown",
    "build_fault_plan",
    "continuation_request",
    "format_fault_spec",
    "parse_fault_spec",
]
