"""Deterministic fault plans: breakdowns, cancellations, travel shocks.

The simulator's fault-injection layer is *plan driven*: every disruption
of a run is drawn up front from one seeded RNG into an immutable
:class:`FaultPlan`, and the simulator merely replays that plan at event
boundaries.  This is what makes chaos runs reproducible — the same
scenario plus the same fault seed yields the same disruptions, the same
recovery decisions and the same metrics, which the chaos-smoke CI job
asserts (see docs/ROBUSTNESS.md).

Three fault families are modelled:

* **Taxi breakdowns** — a taxi is taken out of service mid-route at a
  drawn instant; the recovery policy in :mod:`repro.sim.engine` salvages
  its schedule (Section IV-C2's "the server will quickly dispatch
  another taxi" applied to the failure case).
* **Passenger cancellations** — a request is withdrawn after release but
  before pick-up; assigned taxis shed the matching stops and replan.
* **Zonal travel-time shocks** — inside a disc-shaped zone and a time
  window, taxis lose ``delay_s`` seconds off their remaining route, once
  per window (a coarse congestion-shock model; the constant-speed
  assumption of the paper holds outside shock windows).

The CLI grammar (``--faults seed=3,breakdown_rate=0.05,...``) is parsed
by :func:`parse_fault_spec`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..demand.request import RideRequest
from ..fleet.taxi import Taxi
from ..network.graph import RoadNetwork

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "RequestCancellation",
    "ShockWindow",
    "TaxiBreakdown",
    "build_fault_plan",
    "parse_fault_spec",
]

#: Field -> parser for the ``--faults`` key=value grammar.
_SPEC_FIELDS: dict[str, type] = {
    "seed": int,
    "breakdown_rate": float,
    "cancel_rate": float,
    "shock_windows": int,
    "shock_delay_s": float,
    "shock_duration_s": float,
    "shock_radius_frac": float,
    "continuation_rho": float,
    "continuation_wait_s": float,
}


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Everything that determines a fault plan, hashable and seedable.

    Attributes
    ----------
    seed:
        RNG seed for every draw of the plan; two plans built from the
        same spec over the same fleet/workload are identical.
    breakdown_rate:
        Probability that a given taxi breaks down during the run.
    cancel_rate:
        Probability that a given request is cancelled pre-pickup.
    shock_windows:
        Number of zonal travel-time shock windows.
    shock_delay_s:
        Delay added to a taxi's remaining route when a shock hits it.
    shock_duration_s:
        Length of each shock window in seconds.
    shock_radius_frac:
        Shock-zone radius as a fraction of the network's larger extent.
    continuation_rho:
        Flexible factor of continuation requests (Eq. 9 applied to the
        salvaged leg from the breakdown vertex).
    continuation_wait_s:
        Extra waiting budget granted to a continuation request on top of
        ``rho``; stranded passengers are given time to be re-collected.
    """

    seed: int = 0
    breakdown_rate: float = 0.0
    cancel_rate: float = 0.0
    shock_windows: int = 0
    shock_delay_s: float = 180.0
    shock_duration_s: float = 900.0
    shock_radius_frac: float = 0.3
    continuation_rho: float = 1.5
    continuation_wait_s: float = 600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.breakdown_rate <= 1.0:
            raise ValueError("breakdown_rate must be a probability in [0, 1]")
        if not 0.0 <= self.cancel_rate <= 1.0:
            raise ValueError("cancel_rate must be a probability in [0, 1]")
        if self.shock_windows < 0:
            raise ValueError("shock_windows must be non-negative")
        if self.shock_delay_s < 0 or self.shock_duration_s < 0:
            raise ValueError("shock delay/duration must be non-negative")
        if self.shock_radius_frac < 0:
            raise ValueError("shock_radius_frac must be non-negative")
        if self.continuation_rho < 1.0:
            raise ValueError("continuation_rho must be >= 1 (Eq. 9)")
        if self.continuation_wait_s < 0:
            raise ValueError("continuation_wait_s must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether this spec can produce any fault at all."""
        return (
            self.breakdown_rate > 0.0
            or self.cancel_rate > 0.0
            or self.shock_windows > 0
        )


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the ``--faults`` grammar: ``key=value[,key=value...]``.

    Recognised keys are exactly the :class:`FaultSpec` fields, e.g.
    ``"seed=3,breakdown_rate=0.05,cancel_rate=0.1,shock_windows=1"``.
    An empty string yields the all-off default spec.
    """
    values: dict[str, int | float] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"fault spec entry {part!r} is not key=value")
        parser = _SPEC_FIELDS.get(key)
        if parser is None:
            known = ", ".join(sorted(_SPEC_FIELDS))
            raise ValueError(f"unknown fault spec key {key!r}; expected one of {known}")
        try:
            values[key] = parser(raw.strip())
        except ValueError as exc:
            raise ValueError(f"fault spec key {key!r}: {exc}") from None
    return FaultSpec(**values)  # type: ignore[arg-type]


def format_fault_spec(spec: FaultSpec) -> str:
    """The canonical ``key=value,...`` form of a spec (non-defaults only)."""
    default = FaultSpec()
    parts = []
    for f in dataclasses.fields(spec):
        value = getattr(spec, f.name)
        if value != getattr(default, f.name):
            parts.append(f"{f.name}={value}")
    return ",".join(parts)


# ----------------------------------------------------------------------
# fault events
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class TaxiBreakdown:
    """Taxi ``taxi_id`` goes out of service at ``time``."""

    time: float
    taxi_id: int


@dataclass(frozen=True, slots=True)
class RequestCancellation:
    """Request ``request_id`` is withdrawn at ``time`` (pre-pickup only).

    The event is a no-op if the passengers are already aboard (or the
    request already failed) when the simulator replays it.
    """

    time: float
    request_id: int


@dataclass(frozen=True, slots=True)
class ShockWindow:
    """A zonal travel-time shock: the disc at ``(cx, cy)`` of radius
    ``radius_m`` during ``[start, end)`` delays each affected taxi's
    remaining route once by ``delay_s``."""

    start: float
    end: float
    cx: float
    cy: float
    radius_m: float
    delay_s: float


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, fully materialised disruption schedule.

    Event tuples are sorted by time (ties broken by id) so the
    simulator replays them with simple cursors; the plan carries its
    spec so recovery parameters (continuation deadlines) travel with it.
    """

    spec: FaultSpec
    breakdowns: tuple[TaxiBreakdown, ...] = ()
    cancellations: tuple[RequestCancellation, ...] = ()
    shocks: tuple[ShockWindow, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether the plan holds no event at all."""
        return not (self.breakdowns or self.cancellations or self.shocks)

    @property
    def num_events(self) -> int:
        """Total scheduled disruptions."""
        return len(self.breakdowns) + len(self.cancellations) + len(self.shocks)

    def fingerprint(self) -> tuple:
        """A hashable digest of every scheduled event (for tests/CI)."""
        return (
            tuple((e.time, e.taxi_id) for e in self.breakdowns),
            tuple((e.time, e.request_id) for e in self.cancellations),
            tuple(
                (w.start, w.end, w.cx, w.cy, w.radius_m, w.delay_s)
                for w in self.shocks
            ),
        )


def build_fault_plan(
    spec: FaultSpec,
    taxis: Sequence[Taxi],
    requests: Sequence[RideRequest],
    network: RoadNetwork,
) -> FaultPlan:
    """Draw a :class:`FaultPlan` for one run from ``spec.seed``.

    Draw order is fixed — breakdowns over taxis sorted by id, then
    cancellations over requests sorted by ``(release_time, id)``, then
    shock windows — so the plan is a pure function of
    ``(spec, fleet ids, workload, network)``.
    """
    rng = np.random.default_rng(spec.seed)
    ordered = sorted(requests, key=lambda r: (r.release_time, r.request_id))
    if ordered:
        t_lo = ordered[0].release_time
        t_hi = max(r.release_time for r in ordered)
    else:
        t_lo = t_hi = 0.0
    span = max(t_hi - t_lo, 1.0)

    breakdowns: list[TaxiBreakdown] = []
    for taxi in sorted(taxis, key=lambda t: t.taxi_id):
        if rng.random() < spec.breakdown_rate:
            breakdowns.append(
                TaxiBreakdown(time=t_lo + rng.random() * span, taxi_id=taxi.taxi_id)
            )

    cancellations: list[RequestCancellation] = []
    for request in ordered:
        if rng.random() < spec.cancel_rate:
            # Strictly after release (the dispatcher has seen it) and
            # inside the waiting window, where a pre-pickup withdrawal
            # is physically possible.
            frac = 0.05 + 0.9 * rng.random()
            delta = max(frac * max(request.max_wait, 0.0), 1e-6)
            cancellations.append(
                RequestCancellation(
                    time=request.release_time + delta, request_id=request.request_id
                )
            )

    xy = network.xy
    extent = float(
        max(
            xy[:, 0].max() - xy[:, 0].min(),
            xy[:, 1].max() - xy[:, 1].min(),
            1.0,
        )
    )
    shocks: list[ShockWindow] = []
    for _ in range(spec.shock_windows):
        center = int(rng.integers(0, network.num_vertices))
        cx, cy = (float(c) for c in xy[center])
        start = t_lo + rng.random() * span
        shocks.append(
            ShockWindow(
                start=start,
                end=start + spec.shock_duration_s,
                cx=cx,
                cy=cy,
                radius_m=spec.shock_radius_frac * extent,
                delay_s=spec.shock_delay_s,
            )
        )

    return FaultPlan(
        spec=spec,
        breakdowns=tuple(sorted(breakdowns, key=lambda e: (e.time, e.taxi_id))),
        cancellations=tuple(
            sorted(cancellations, key=lambda e: (e.time, e.request_id))
        ),
        shocks=tuple(sorted(shocks, key=lambda w: (w.start, w.cx, w.cy))),
    )
