"""Recovery policy helpers: continuation requests for salvaged passengers.

When a taxi breaks down, its onboard passengers are dropped at the
breakdown vertex and must be re-collected by another taxi.  The engine
models that as a *continuation request*: a fresh online request from the
breakdown vertex to the original destination, released at the breakdown
instant, with a deadline rebuilt from the fault spec's ``rho`` and
waiting budget (the original deadline may already be unreachable and
would make the salvaged leg trivially infeasible).

Continuation ids live in a reserved band above real request ids so
traces and metrics can tell them apart, and so chained breakdowns (a
continuation's taxi breaking down again) keep producing unique ids.
"""

from __future__ import annotations

import math

from ..demand.request import RideRequest
from ..network.shortest_path import ShortestPathEngine

__all__ = ["CONTINUATION_ID_BASE", "continuation_request"]

#: Continuation request ids start here; real workloads stay far below.
CONTINUATION_ID_BASE = 1_000_000_000


def continuation_request(
    engine: ShortestPathEngine,
    original: RideRequest,
    cont_id: int,
    origin: int,
    now: float,
    rho: float,
    wait_s: float,
) -> RideRequest | None:
    """Build the continuation of ``original`` from the breakdown vertex.

    Returns ``None`` when the salvaged leg is degenerate (the breakdown
    vertex has no path to the destination).  The deadline is
    ``now + rho * direct_cost + wait_s`` which always satisfies the
    request-validity constraint ``deadline >= release + direct_cost``
    and leaves a positive waiting budget for re-collection.
    """
    direct_cost = float(engine.cost(origin, original.destination))
    if not math.isfinite(direct_cost):  # unreachable breakdown vertex
        return None
    return RideRequest(
        request_id=cont_id,
        release_time=now,
        origin=origin,
        destination=original.destination,
        deadline=now + rho * direct_cost + wait_s,
        direct_cost=direct_cost,
        num_passengers=original.num_passengers,
        offline=False,
    )
