"""Trace I/O: GAIA-format CSV reading/writing and map matching."""

from .gaia import (
    DEFAULT_SNAP_RADIUS_M,
    GAIA_COLUMNS,
    MapMatcher,
    TraceFormatError,
    read_gaia_csv,
    write_gaia_csv,
)

__all__ = [
    "DEFAULT_SNAP_RADIUS_M",
    "GAIA_COLUMNS",
    "MapMatcher",
    "TraceFormatError",
    "read_gaia_csv",
    "write_gaia_csv",
]
