"""GAIA-format trace I/O and map matching.

The paper's data is the Didi GAIA Chengdu ride-request trace: CSV rows
of ``order_id, taxi_id, start_time, pickup_lng, pickup_lat,
dropoff_lng, dropoff_lat``.  This module reads/writes that format so
the pipeline can run on the real trace when it is available, and on
export of our synthetic traces otherwise.  Coordinates are snapped to
road-network vertices with a KD-tree map matcher.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np
from scipy.spatial import cKDTree

from ..demand.dataset import TripDataset
from ..network.geo import latlng_to_xy, xy_to_latlng
from ..network.graph import RoadNetwork

#: Column order of a GAIA-format CSV.
GAIA_COLUMNS = (
    "order_id",
    "taxi_id",
    "start_time",
    "pickup_lng",
    "pickup_lat",
    "dropoff_lng",
    "dropoff_lat",
)

#: Default snap tolerance: points farther than this from every vertex
#: are considered outside the study area and dropped.
DEFAULT_SNAP_RADIUS_M = 500.0


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the GAIA format."""


class MapMatcher:
    """Snap planar or lat/lng points to the nearest road vertex.

    Parameters
    ----------
    network:
        Road network whose vertices are the snap targets.
    snap_radius_m:
        Points farther than this from every vertex do not match.
    """

    def __init__(self, network: RoadNetwork, snap_radius_m: float = DEFAULT_SNAP_RADIUS_M) -> None:
        if snap_radius_m <= 0:
            raise ValueError("snap radius must be positive")
        self._network = network
        self._radius = float(snap_radius_m)
        self._tree = cKDTree(np.asarray(network.xy))

    @property
    def snap_radius_m(self) -> float:
        """The snap tolerance in metres."""
        return self._radius

    def match_xy(self, x: float, y: float) -> int | None:
        """Nearest vertex to a planar point, or ``None`` if out of range."""
        dist, idx = self._tree.query([x, y])
        if dist > self._radius:
            return None
        return int(idx)

    def match_latlng(self, lat: float, lng: float) -> int | None:
        """Nearest vertex to a lat/lng point, or ``None`` if out of range."""
        p = latlng_to_xy(lat, lng)
        return self.match_xy(p.x, p.y)

    def match_many_xy(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`match_xy`; unmatched points get ``-1``."""
        dists, idxs = self._tree.query(np.asarray(xy, dtype=float))
        out = np.asarray(idxs, dtype=np.int64)
        out[np.asarray(dists) > self._radius] = -1
        return out


def write_gaia_csv(path: str | Path, dataset: TripDataset, network: RoadNetwork) -> int:
    """Export a trip dataset as a GAIA-format CSV.

    Vertex ids are converted back to lat/lng through the network's
    planar projection.  Returns the number of rows written.
    """
    path = Path(path)
    xy = np.asarray(network.xy)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(GAIA_COLUMNS)
        for i in range(len(dataset)):
            o = int(dataset.origins[i])
            d = int(dataset.destinations[i])
            olat, olng = xy_to_latlng(float(xy[o, 0]), float(xy[o, 1]))
            dlat, dlng = xy_to_latlng(float(xy[d, 0]), float(xy[d, 1]))
            writer.writerow(
                [
                    i,
                    int(dataset.taxi_ids[i]),
                    f"{float(dataset.release_times[i]):.1f}",
                    f"{olng:.7f}",
                    f"{olat:.7f}",
                    f"{dlng:.7f}",
                    f"{dlat:.7f}",
                ]
            )
    return len(dataset)


def read_gaia_csv(
    path: str | Path,
    network: RoadNetwork,
    snap_radius_m: float = DEFAULT_SNAP_RADIUS_M,
) -> TripDataset:
    """Load a GAIA-format CSV and map-match it onto a road network.

    Rows whose pick-up or drop-off lies farther than ``snap_radius_m``
    from every network vertex are dropped (the paper restricts the
    trace to the 2nd Ring Road the same way), as are rows that snap
    onto identical origin and destination vertices.
    """
    path = Path(path)
    matcher = MapMatcher(network, snap_radius_m)

    times: list[float] = []
    origins: list[int] = []
    destinations: list[int] = []
    taxis: list[int] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header] != list(GAIA_COLUMNS):
            raise TraceFormatError(
                f"expected header {','.join(GAIA_COLUMNS)!r}, got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(GAIA_COLUMNS):
                raise TraceFormatError(f"line {lineno}: expected {len(GAIA_COLUMNS)} fields")
            try:
                taxi_id = int(row[1])
                start = float(row[2])
                plng, plat = float(row[3]), float(row[4])
                dlng, dlat = float(row[5]), float(row[6])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
            origin = matcher.match_latlng(plat, plng)
            destination = matcher.match_latlng(dlat, dlng)
            if origin is None or destination is None or origin == destination:
                continue
            times.append(start)
            origins.append(origin)
            destinations.append(destination)
            taxis.append(taxi_id)

    return TripDataset(
        release_times=np.asarray(times, dtype=np.float64),
        origins=np.asarray(origins, dtype=np.int64),
        destinations=np.asarray(destinations, dtype=np.int64),
        taxi_ids=np.asarray(taxis, dtype=np.int64),
    )
