"""Streaming dispatch service façade over the simulation kernel.

The batch :class:`~repro.sim.engine.Simulator` answers "what would the
whole day have looked like"; this package answers "what does the
dispatcher do with the request that just arrived".  Both are clients of
the same discrete-event kernel and produce bit-identical decisions for
the same admitted workload — the façade adds only what a long-lived
service needs on top:

* **request sources** — a synthetic generator, a JSONL replay file, or
  an HTTP endpoint (:mod:`repro.service.http`);
* **admission control** — duplicate delivery, arrivals behind the
  committed clock (reject or clamp), and backpressure on a bounded
  in-flight queue, each rejection landing in its own terminal
  accounting bucket so :meth:`SimulationMetrics.check_balance` still
  closes;
* a **decision stream** — one record per dispatch outcome or rejection,
  consumable as a callback or JSONL.

See docs/ARCHITECTURE.md for where the façade sits in the stack.
"""

from .admission import (
    REJECT_BACKPRESSURE,
    REJECT_DUPLICATE,
    REJECT_LATE,
    Admission,
    AdmissionPolicy,
)
from .codec import decision_to_dict, request_from_dict, request_to_dict
from .service import DecisionRecord, DispatchService, ServiceConfig
from .sources import jsonl_requests, synthetic_requests

__all__ = [
    "REJECT_BACKPRESSURE",
    "REJECT_DUPLICATE",
    "REJECT_LATE",
    "Admission",
    "AdmissionPolicy",
    "DecisionRecord",
    "DispatchService",
    "ServiceConfig",
    "decision_to_dict",
    "jsonl_requests",
    "request_from_dict",
    "request_to_dict",
    "synthetic_requests",
]
