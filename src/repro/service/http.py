"""Minimal HTTP endpoint over :class:`DispatchService` (stdlib only).

One process, one simulator run, many clients::

    POST /requests   {request json}  -> admission outcome + decisions fired
    GET  /metrics                    -> current metrics summary
    GET  /healthz                    -> liveness + queue depth
    POST /finish                     -> drain, close the run, final summary

The simulator is single-threaded by design (determinism), so the
handler serialises everything behind one lock; concurrency here means
"many clients", not "many dispatches at once".  Decision records fired
by a submission's pump are returned in that submission's response —
they may belong to earlier queued requests, which is the nature of a
stream.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..demand.request import RequestError
from .codec import decision_to_dict, request_from_dict
from .service import DecisionRecord, DispatchService


class ServiceState:
    """The shared state behind the handler: service + lock + buffer."""

    def __init__(self, service: DispatchService) -> None:
        self.service = service
        self.lock = threading.Lock()
        self.buffer: list[DecisionRecord] = []
        self.finished_summary: dict[str, Any] | None = None
        service.set_sink(self.buffer.append)  # the server owns the stream

    def drain(self) -> list[dict[str, Any]]:
        fired = [decision_to_dict(d) for d in self.buffer]
        self.buffer.clear()
        return fired


def _make_handler(state: ServiceState) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:  # silence stderr
            pass

        def _reply(self, code: int, payload: dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            if self.path == "/healthz":
                with state.lock:
                    self._reply(
                        200,
                        {
                            "ok": True,
                            "finished": state.finished_summary is not None,
                            "pending": state.service.pending,
                            "submitted": state.service.submitted,
                        },
                    )
            elif self.path == "/metrics":
                with state.lock:
                    summary = state.finished_summary or state.service.sim.metrics.summary()
                    self._reply(200, summary)
            else:
                self._reply(404, {"error": f"no such path: {self.path}"})

        def do_POST(self) -> None:
            if self.path == "/requests":
                self._post_request()
            elif self.path == "/finish":
                with state.lock:
                    if state.finished_summary is None:
                        metrics = state.service.finish()
                        state.finished_summary = metrics.summary()
                    self._reply(
                        200,
                        {"summary": state.finished_summary, "decisions": state.drain()},
                    )
            else:
                self._reply(404, {"error": f"no such path: {self.path}"})

        def _post_request(self) -> None:
            try:
                length = int(self.headers.get("Content-Length", "0"))
                payload = json.loads(self.rfile.read(length))
                request = request_from_dict(payload)
            except (json.JSONDecodeError, KeyError, ValueError, RequestError) as exc:
                self._reply(400, {"error": str(exc)})
                return
            with state.lock:
                if state.finished_summary is not None:
                    self._reply(409, {"error": "run already finished"})
                    return
                outcome = state.service.submit(request)
                if outcome.accepted:
                    state.service.pump()
                self._reply(
                    200 if outcome.accepted else 429 if outcome.reason == "backpressure" else 409,
                    {
                        "accepted": outcome.accepted,
                        "reason": outcome.reason,
                        "clamped": outcome.clamped,
                        "decisions": state.drain(),
                    },
                )

    return Handler


def make_server(
    service: DispatchService, host: str = "127.0.0.1", port: int = 0
) -> tuple[ThreadingHTTPServer, ServiceState]:
    """Build (not start) an HTTP server over one dispatch service.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  Call ``serve_forever()`` to run.
    """
    state = ServiceState(service)
    server = ThreadingHTTPServer((host, port), _make_handler(state))
    return server, state


__all__ = ["ServiceState", "make_server"]
