"""The dispatch service: admission + kernel + decision stream.

:class:`DispatchService` wraps a :class:`~repro.sim.engine.Simulator`
constructed with an empty workload and feeds it through the streaming
entry points (``stream_begin`` / ``stream_submit`` / ``stream_finish``).
Every submission passes the :class:`~repro.service.admission.AdmissionPolicy`
first; every dispatch outcome and every rejection becomes one
:class:`DecisionRecord` on the decision stream.

Equivalence guarantee: replaying a workload through the service (any
submission order, any pumping cadence) produces decisions bit-identical
to ``Simulator.run()`` over the same workload, because both reduce to
the same heap-ordered event sequence — the equivalence tests in
``tests/test_service.py`` pin this.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..demand.request import RideRequest
from ..sim.engine import Simulator
from ..sim.metrics import SimulationMetrics
from .admission import Admission, AdmissionPolicy

#: Decision stream statuses.
MATCHED = "matched"
UNMATCHED = "unmatched"
REJECTED = "rejected"

DecisionSink = Callable[["DecisionRecord"], None]


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One entry of the decision stream.

    ``status`` is ``"matched"``/``"unmatched"`` for dispatch outcomes
    (then ``kind`` says which path decided: ``"online"``,
    ``"redispatch"`` or ``"offline"``) or ``"rejected"`` for admission
    refusals (then ``kind`` is the rejection reason).
    """

    request_id: int
    time: float
    status: str
    kind: str
    taxi_id: int | None = None
    elapsed_ms: float = 0.0


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs; admission rules live in :class:`AdmissionPolicy`."""

    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: Retain the decision stream in memory when no sink is given.
    #: Soak runs with a sink (or with neither) keep memory flat.
    keep_decisions: bool = True


class DispatchService:
    """Streaming façade over one simulator run.

    Parameters
    ----------
    sim:
        A :class:`~repro.sim.engine.Simulator` built with
        ``requests=[]``; the service takes over its decision hook and
        drives it through the streaming API.
    config:
        Admission policy and decision-stream retention.
    on_decision:
        Optional sink called once per decision record, in decision
        order.  When given, records are *not* retained in memory.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ServiceConfig | None = None,
        on_decision: DecisionSink | None = None,
    ) -> None:
        self._sim = sim
        self._config = config or ServiceConfig()
        self._sink = on_decision
        self._decisions: list[DecisionRecord] = []
        self._seen: set[int] | None = set() if self._config.admission.dedupe else None
        self._started = False
        self._finished = False
        self._submitted = 0
        self._admitted = 0
        self._rejections: dict[str, int] = {}
        sim.on_decision = self._on_dispatch_decision

    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The wrapped simulator (metrics, kernel, fleet)."""
        return self._sim

    def set_sink(self, sink: DecisionSink | None) -> None:
        """Redirect the decision stream (``None`` reverts to retention)."""
        self._sink = sink

    @property
    def decisions(self) -> list[DecisionRecord]:
        """Retained decision records (empty when a sink consumes them)."""
        return self._decisions

    @property
    def submitted(self) -> int:
        """Submissions screened so far (admitted + rejected)."""
        return self._submitted

    @property
    def admitted(self) -> int:
        """Submissions that became kernel events."""
        return self._admitted

    @property
    def rejections(self) -> dict[str, int]:
        """Rejection counts by reason."""
        return dict(self._rejections)

    @property
    def pending(self) -> int:
        """Admitted requests not yet dispatched (the in-flight queue)."""
        return self._sim.kernel.pending

    # ------------------------------------------------------------------
    def _emit(self, record: DecisionRecord) -> None:
        if self._sink is not None:
            self._sink(record)
        elif self._config.keep_decisions:
            self._decisions.append(record)

    def _on_dispatch_decision(
        self,
        request: RideRequest,
        now: float,
        matched: bool,
        taxi_id: int | None,
        elapsed_s: float,
        kind: str,
    ) -> None:
        self._emit(
            DecisionRecord(
                request_id=request.request_id,
                time=now,
                status=MATCHED if matched else UNMATCHED,
                kind=kind,
                taxi_id=taxi_id,
                elapsed_ms=round(1000.0 * elapsed_s, 4),
            )
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the stream (idempotent)."""
        if not self._started:
            self._sim.stream_begin()
            self._started = True

    def submit(self, request: RideRequest) -> Admission:
        """Screen one request and enqueue it if admitted."""
        if not self._started:
            self.start()
        if self._finished:
            raise RuntimeError("submit() after finish()")
        self._submitted += 1
        outcome = self._config.admission.screen(
            request, self._sim.kernel.now, self._sim.kernel.pending, self._seen
        )
        if not outcome.accepted:
            reason = outcome.reason or "unknown"
            self._rejections[reason] = self._rejections.get(reason, 0) + 1
            self._sim.record_rejection(request, reason)
            self._emit(
                DecisionRecord(
                    request_id=request.request_id,
                    time=self._sim.kernel.now,
                    status=REJECTED,
                    kind=reason,
                )
            )
            return outcome
        admitted = outcome.request if outcome.request is not None else request
        self._sim.stream_submit(admitted)
        self._admitted += 1
        if self._seen is not None:
            self._seen.add(request.request_id)
        return outcome

    def pump(self, until: float | None = None) -> int:
        """Dispatch queued events; returns how many fired."""
        if not self._started:
            self.start()
        return self._sim.stream_pump(until)

    def finish(self) -> SimulationMetrics:
        """Flush, drain and close the run; returns the final metrics."""
        if not self._started:
            self.start()
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._finished = True
        return self._sim.stream_finish()

    # ------------------------------------------------------------------
    def replay(
        self,
        source: Iterable[RideRequest],
        pump_every: int | None = 1,
    ) -> SimulationMetrics:
        """Feed an entire source through the service and finish.

        ``pump_every=k`` dispatches queued events after every ``k``-th
        admitted request (eager, bounded queue); ``None`` defers all
        dispatching to :meth:`finish` (the queue then holds the whole
        admitted stream, exactly like batch ``run()``).
        """
        if pump_every is not None and pump_every < 1:
            raise ValueError("pump_every must be a positive int or None")
        self.start()
        for request in source:
            outcome = self.submit(request)
            if (
                outcome.accepted
                and pump_every is not None
                and self._admitted % pump_every == 0
            ):
                self.pump()
        return self.finish()


__all__ = [
    "MATCHED",
    "REJECTED",
    "UNMATCHED",
    "DecisionRecord",
    "DispatchService",
    "ServiceConfig",
]
