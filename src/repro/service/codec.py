"""Wire codec for requests and decisions (JSON object per line).

The replay file format is one JSON object per ride request, fields
mirroring :class:`~repro.demand.request.RideRequest`; unknown keys are
ignored so traces can carry annotations.  Decisions serialise to flat
dicts for the decision stream (``repro replay --decisions`` and the
HTTP endpoint respond with the same shape).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..demand.request import RideRequest

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from .service import DecisionRecord

_REQUEST_FIELDS = (
    "request_id",
    "release_time",
    "origin",
    "destination",
    "deadline",
    "direct_cost",
    "num_passengers",
    "offline",
)


def request_to_dict(request: RideRequest) -> dict[str, Any]:
    """Serialise one request to its wire dict."""
    return {name: getattr(request, name) for name in _REQUEST_FIELDS}


def request_from_dict(payload: dict[str, Any]) -> RideRequest:
    """Parse one wire dict (validation is RideRequest's own).

    Raises ``KeyError`` on missing required fields and
    :class:`~repro.demand.request.RequestError` on invalid values —
    callers surface both as client errors, not crashes.
    """
    return RideRequest(
        request_id=int(payload["request_id"]),
        release_time=float(payload["release_time"]),
        origin=int(payload["origin"]),
        destination=int(payload["destination"]),
        deadline=float(payload["deadline"]),
        direct_cost=float(payload["direct_cost"]),
        num_passengers=int(payload.get("num_passengers", 1)),
        offline=bool(payload.get("offline", False)),
    )


def decision_to_dict(decision: "DecisionRecord") -> dict[str, Any]:
    """Serialise one decision record to its wire dict."""
    return {
        "request_id": decision.request_id,
        "time": decision.time,
        "status": decision.status,
        "kind": decision.kind,
        "taxi_id": decision.taxi_id,
        "elapsed_ms": decision.elapsed_ms,
    }


__all__ = ["decision_to_dict", "request_from_dict", "request_to_dict"]
