"""Request sources for the dispatch service.

Three ways requests reach the service: replayed from a JSONL trace
(:func:`jsonl_requests`), generated on the fly for soak/throughput runs
(:func:`synthetic_requests`), or posted over HTTP
(:mod:`repro.service.http`).  Sources are plain iterators of
:class:`~repro.demand.request.RideRequest`, so a batch workload list
works anywhere a source does.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

from ..demand.request import RideRequest
from .codec import request_from_dict

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..network.shortest_path import ShortestPathEngine


def jsonl_requests(path: str) -> Iterator[RideRequest]:
    """Yield requests from a JSONL trace file, one object per line.

    Blank lines are skipped; malformed lines raise with the line number
    so a truncated trace fails loudly instead of silently shortening
    the workload.
    """
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield request_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad request record: {exc}") from exc


def synthetic_requests(
    engine: "ShortestPathEngine",
    count: int,
    rate_per_s: float = 2.0,
    rho: float = 1.5,
    seed: int = 0,
    start_id: int = 0,
) -> Iterator[RideRequest]:
    """Generate ``count`` online requests lazily (O(1) memory).

    Poisson arrivals at ``rate_per_s``, origin/destination uniform over
    the network's vertices (re-drawn until distinct and reachable),
    deadlines from the flexible factor ``rho`` (Eq. 9).  Deterministic
    in ``seed``; the stream is sorted by construction, so it exercises
    the service's steady-state path rather than its admission edge
    cases.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    num_vertices = engine.network.num_vertices
    t = 0.0
    produced = 0
    while produced < count:
        t += float(rng.exponential(1.0 / rate_per_s))
        origin = int(rng.integers(num_vertices))
        destination = int(rng.integers(num_vertices))
        if origin == destination:
            continue
        cost = engine.cost(origin, destination)
        if not np.isfinite(cost) or cost <= 0.0:
            continue
        yield RideRequest.from_flexible_factor(
            request_id=start_id + produced,
            release_time=t,
            origin=origin,
            destination=destination,
            direct_cost=float(cost),
            rho=rho,
        )
        produced += 1


__all__ = ["jsonl_requests", "synthetic_requests"]
