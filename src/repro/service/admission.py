"""Admission control for the streaming dispatch service.

The kernel refuses events behind its committed clock
(:class:`~repro.sim.kernel.ScheduledInPast`) — deciding what to *do*
with such input is service policy, not kernel mechanics.  This module
is that policy: every submission is screened for duplicate delivery,
lateness and backpressure before it may become a ``request.release``
event, and every refusal carries a machine-readable reason that the
metrics account under its own terminal bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..demand.request import RequestError, RideRequest

#: The request id was already admitted (at-least-once delivery upstream).
REJECT_DUPLICATE = "duplicate"

#: The release time is behind the committed clock and the policy is
#: ``"reject"`` (or clamping it forward made the deadline infeasible).
REJECT_LATE = "late"

#: The bounded in-flight queue is full.
REJECT_BACKPRESSURE = "backpressure"

_LATE_POLICIES = ("reject", "clamp")


@dataclass(frozen=True, slots=True)
class Admission:
    """Outcome of screening one submission.

    ``request`` is the request to enqueue when admitted — the original,
    or a copy clamped forward to the committed clock under the
    ``"clamp"`` late policy (``clamped`` is then set).
    """

    accepted: bool
    reason: str | None = None
    clamped: bool = False
    request: RideRequest | None = None


@dataclass(frozen=True)
class AdmissionPolicy:
    """Screening rules applied to every submission, in a fixed order.

    Parameters
    ----------
    max_in_flight:
        Upper bound on admitted-but-undispatched events; submissions
        beyond it are rejected with :data:`REJECT_BACKPRESSURE` (the
        caller is expected to pump the kernel and retry).
    late_policy:
        ``"reject"`` refuses requests released behind the committed
        clock; ``"clamp"`` re-releases them *at* the clock, preserving
        the original deadline (so a clamp can still fail as late when
        the remaining window no longer fits the direct trip).
    dedupe:
        Track admitted request ids and refuse re-deliveries.  Costs one
        set entry per admitted request; a soak harness replaying a
        stream it knows to be unique can turn it off.
    """

    max_in_flight: int = 4096
    late_policy: str = "reject"
    dedupe: bool = True

    def __post_init__(self) -> None:
        if self.late_policy not in _LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {_LATE_POLICIES}, got {self.late_policy!r}"
            )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")

    def screen(
        self,
        request: RideRequest,
        now: float,
        pending: int,
        seen: set[int] | None,
    ) -> Admission:
        """Screen one submission against the committed clock ``now`` and
        the current in-flight count ``pending``.

        ``seen`` is the caller-owned set of admitted ids (``None`` when
        ``dedupe`` is off); this method only reads it — the caller adds
        the id *after* enqueueing, so a rejected submission may be
        retried.
        """
        if seen is not None and request.request_id in seen:
            return Admission(False, reason=REJECT_DUPLICATE)
        if pending >= self.max_in_flight:
            return Admission(False, reason=REJECT_BACKPRESSURE)
        if request.release_time < now:
            if self.late_policy == "reject":
                return Admission(False, reason=REJECT_LATE)
            try:
                clamped = replace(request, release_time=now)
            except RequestError:
                # Clamping forward left less than the direct travel time
                # before the deadline: the trip can no longer happen.
                return Admission(False, reason=REJECT_LATE)
            return Admission(True, clamped=True, request=clamped)
        return Admission(True, request=request)


__all__ = [
    "REJECT_BACKPRESSURE",
    "REJECT_DUPLICATE",
    "REJECT_LATE",
    "Admission",
    "AdmissionPolicy",
]
