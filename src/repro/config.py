"""System-wide parameter set, mirroring Table II of the paper.

A single frozen dataclass carries every tunable the evaluation sweeps,
with the paper's default values.  Experiments create variants with
:meth:`SystemConfig.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Metres per second for 15 km/h, the constant taxi speed of Section V-A4.
DEFAULT_SPEED_MPS = 15_000.0 / 3600.0


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """All evaluation parameters with the paper's defaults (Table II).

    Attributes
    ----------
    num_taxis:
        Fleet size (paper sweeps 500-3000, default 2000).
    capacity:
        Seats per taxi (paper default 3).
    search_range_m:
        Candidate-search radius ``gamma`` (paper default 2.5 km).  When
        ``adaptive_gamma`` is set, the radius is instead derived from
        each request's waiting budget (Eq. 2), capped at this value.
    rho:
        Flexible factor fixing delivery deadlines (Eq. 9, default 1.3).
    num_partitions:
        ``kappa``, the number of map partitions (paper default 150 for
        a 214k-vertex network; scale with network size).
    num_transition_clusters:
        ``k_t`` of the bipartite partitioning (paper default 20).
    lam:
        Direction threshold ``lambda = cos(theta)`` (default cos 45).
    epsilon:
        Travel-cost slack of the partition-filter rule (default 1.0).
    beta, eta:
        Payment-model parameters (defaults 0.8 and 0.01).
    index_horizon_s:
        ``T_mp``: how far ahead routes are indexed (default 1 h).
    speed_mps:
        Constant taxi speed.
    adaptive_gamma:
        Derive ``gamma`` per request from its waiting budget (applies
        to every scheme when set).
    mtshare_adaptive_gamma:
        mT-Share-specific: its searching range follows Eq. 2
        (``gamma = speed * Delta_t``) instead of the static range, which
        is Section IV-C1's design and the source of the paper's Fig. 1
        "taxi t3" effect.  Disable to force the static ``gamma`` on
        mT-Share too (the Fig. 15 sweep does this for all schemes).
    baseline_grid_cell_m:
        Grid-cell side of the baselines' (T-Share, pGreedyDP) spatial
        index.  Their range queries operate at whole-cell granularity,
        which is the "partial trip information" limitation the paper
        attacks; 0 (the default) means "half the searching range".
    probabilistic_idle_seats:
        A taxi switches to probabilistic routing when at least this
        fraction of its capacity is idle (paper: half) and the scenario
        enables the mode.
    max_probabilistic_attempts:
        Retry cap of Algorithm 4 (paper: 5).
    match_planning_cutoff:
        Algorithm 1 plans concrete routes for candidates lazily, in
        ascending order of their O(1)-estimated detour, and keeps the
        minimum *actual* route detour.  Because a planned route can
        never beat its own shortest-path estimate, planning stops as
        soon as the next estimate cannot beat the incumbent; this
        cutoff additionally bounds the number of successfully planned
        candidates examined after a winner exists, capping worst-case
        planning work per dispatch.  With a full all-pairs cache basic
        routes equal their estimates and the loop exits after one plan,
        so the cutoff only matters for probabilistic or lazily-routed
        configurations.
    prob_steering_m:
        Probability-vs-detour trade-off of probabilistic routing: the
        maximum per-vertex preference (expressed as metres of travel)
        granted to high-probability vertices.  0 disables fine-grained
        steering entirely.  The paper defers this trade-off to future
        work; the ablation benchmark sweeps it.
    enable_cruising:
        Whether idle taxis in probabilistic mode cruise towards
        historically hot pick-up areas (the non-peak premise that taxis
        without online assignments go looking for street hails).
    use_demand_prediction:
        Target cruising with the hour-aware
        :class:`~repro.demand.prediction.DemandPredictor` blended into
        the overall demand shares.  Off by default: with short mined
        histories the hourly estimates are noisier than the stable
        overall shares (see the prediction module's docs).
    dispatch_window_s:
        Batch-window length ``W`` of the ``window-lap`` scheme: online
        requests released inside the same ``W``-second window are
        matched together by one global linear assignment per window
        tick.  ``0`` degenerates to single-request windows, which
        reproduce the greedy per-request decisions exactly.  Ignored by
        the greedy schemes.
    """

    num_taxis: int = 2000
    capacity: int = 3
    search_range_m: float = 2500.0
    rho: float = 1.3
    num_partitions: int = 150
    num_transition_clusters: int = 20
    lam: float = 0.707
    epsilon: float = 1.0
    beta: float = 0.8
    eta: float = 0.01
    index_horizon_s: float = 3600.0
    speed_mps: float = DEFAULT_SPEED_MPS
    adaptive_gamma: bool = False
    mtshare_adaptive_gamma: bool = True
    baseline_grid_cell_m: float = 0.0
    probabilistic_idle_seats: float = 0.5
    max_probabilistic_attempts: int = 5
    match_planning_cutoff: int = 4
    prob_steering_m: float = 120.0
    enable_cruising: bool = True
    use_demand_prediction: bool = False
    dispatch_window_s: float = 30.0

    def __post_init__(self) -> None:
        if self.num_taxis < 1:
            raise ValueError("num_taxis must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.search_range_m <= 0:
            raise ValueError("search_range_m must be positive")
        if self.rho < 1.0:
            raise ValueError("rho must be >= 1")
        if not -1.0 <= self.lam <= 1.0:
            raise ValueError("lambda must be a cosine in [-1, 1]")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.match_planning_cutoff < 1:
            raise ValueError("match_planning_cutoff must be >= 1")
        if self.dispatch_window_s < 0:
            raise ValueError("dispatch_window_s must be non-negative")

    def replace(self, **changes) -> "SystemConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def gamma_for_wait(self, max_wait_s: float) -> float:
        """Search radius from a request's waiting budget (Eq. 2).

        ``gamma = speed * Delta_t``, optionally capped by the static
        ``search_range_m`` when ``adaptive_gamma`` is off (the paper's
        default fixes ``gamma = 2.5 km`` which equals a 10-minute wait
        at 15 km/h).
        """
        if not self.adaptive_gamma:
            return self.search_range_m
        return max(0.0, max_wait_s) * self.speed_mps

    @property
    def grid_cell_m(self) -> float:
        """Effective baseline grid-cell size (defaults to ``gamma / 2``)."""
        if self.baseline_grid_cell_m > 0:
            return self.baseline_grid_cell_m
        return self.search_range_m / 2.0
