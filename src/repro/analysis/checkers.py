"""The REP00x checkers: this codebase's determinism failure modes, as AST rules.

Each checker is a small class with a ``code``, a path scope and a
``check(ctx)`` method returning :class:`~repro.analysis.engine.Finding`
objects.  They share one piece of real machinery: a syntactic
set-typed-ness inferencer (:class:`SetTypes`) that recognises set
displays/comprehensions, ``set()``/``frozenset()`` calls, set-annotated
names and attributes, and calls to functions whose return annotation is
set-typed — including functions defined in *other* linted modules, via
the engine's :class:`~repro.analysis.engine.ProjectTable`.  That last
hop is what catches the PR 3 bug class, where routing iterated
``LandmarkGraph.neighbors()`` sets built two modules away.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from .engine import Finding, ModuleContext

#: Consumers for which iteration order provably cannot matter.  ``sum``
#: is deliberately absent: float sums are order-dependent.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset"}
)

_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_SEQ_ANNOTATION_NAMES = frozenset({"list", "List", "tuple", "Tuple", "Sequence"})


def _name_of(node: ast.AST) -> str | None:
    """Trailing identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def annotation_kind(node: ast.AST | None) -> str | None:
    """Classify an annotation as ``'set'``, ``'list_of_set'`` or None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # X | None
        return annotation_kind(node.left) or annotation_kind(node.right)
    if isinstance(node, ast.Subscript):
        base = _name_of(node.value)
        if base == "Optional":
            return annotation_kind(node.slice)
        if base in _SET_ANNOTATION_NAMES:
            return "set"
        if base in _SEQ_ANNOTATION_NAMES:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            if annotation_kind(inner) == "set":
                return "list_of_set"
        return None
    if _name_of(node) in _SET_ANNOTATION_NAMES:
        return "set"
    return None


def _is_str_literal_set(node: ast.AST) -> bool:
    """A set display whose every element is a string constant.

    String iteration order only varies across processes (hash
    randomisation), and the determinism contract this repo cares about
    — identical decisions per seeded run — keys everything by ints.
    REP001 therefore exempts all-str set displays, per its charter
    ("non-str keys").
    """
    return isinstance(node, ast.Set) and all(
        isinstance(e, ast.Constant) and isinstance(e.value, str) for e in node.elts
    )


class SetTypes:
    """Syntactic set-typed-ness inference for one module.

    Scope model: one namespace per function (parameters + local
    assignments), one per class (``self.attr`` assignments anywhere in
    the class body), one for the module.  Assignments count when the
    right-hand side is *directly* recognisable: a set display or
    comprehension, a ``set()``/``frozenset()`` call, set algebra on a
    known set, or a call to a function whose return annotation says set.
    """

    def __init__(self, ctx: ModuleContext) -> None:
        self._ctx = ctx
        self.func_kinds: dict[str, str] = {}
        self.module_scope: dict[str, str] = {}
        self.fn_scopes: dict[ast.AST, dict[str, str]] = {}
        self.class_attrs: dict[ast.AST, dict[str, str]] = {}
        self._fn_of: dict[ast.AST, ast.AST | None] = {}
        self._class_of: dict[ast.AST, ast.AST | None] = {}
        self._collect()

    # -- collection ----------------------------------------------------
    def _collect(self) -> None:
        tree = self._ctx.tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                kind = annotation_kind(node.returns)
                if kind:
                    self.func_kinds[node.name] = kind
        # Map every node to its enclosing function / class.
        for node in ast.walk(tree):
            parent = self._ctx.parent(node)
            while parent is not None and not isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                parent = self._ctx.parent(parent)
            self._fn_of[node] = parent
            cls = self._ctx.parent(node)
            while cls is not None and not isinstance(cls, ast.ClassDef):
                cls = self._ctx.parent(cls)
            self._class_of[node] = cls
        # Parameter annotations.
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = self.fn_scopes.setdefault(node, {})
                all_args = (
                    list(node.args.posonlyargs)
                    + list(node.args.args)
                    + list(node.args.kwonlyargs)
                )
                for arg in all_args:
                    kind = annotation_kind(arg.annotation)
                    if kind:
                        scope[arg.arg] = kind
        # Assignments (two sweeps so later reads see earlier bindings).
        for _sweep in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    kind = self.kind_of(node.value)
                    if kind:
                        for target in node.targets:
                            self._bind(target, kind, node)
                elif isinstance(node, ast.AnnAssign):
                    kind = annotation_kind(node.annotation) or (
                        self.kind_of(node.value) if node.value else None
                    )
                    if kind:
                        self._bind(node.target, kind, node)

    def _bind(self, target: ast.AST, kind: str, site: ast.AST) -> None:
        if isinstance(target, ast.Name):
            fn = self._fn_of.get(site)
            if fn is not None:
                self.fn_scopes.setdefault(fn, {})[target.id] = kind
            else:
                self.module_scope[target.id] = kind
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            cls = self._class_of.get(site)
            if cls is not None:
                self.class_attrs.setdefault(cls, {})[target.attr] = kind

    # -- resolution ----------------------------------------------------
    def kind_of(self, node: ast.AST) -> str | None:
        """``'set'`` / ``'list_of_set'`` / None for an expression."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return None if _is_str_literal_set(node) else "set"
        if isinstance(node, ast.Call):
            fname = _name_of(node.func)
            if fname in ("set", "frozenset"):
                return "set"
            if fname in ("sorted", "list", "tuple"):
                return None
            local = self.func_kinds.get(fname or "")
            if local:
                return local
            project = self._ctx.project
            if fname in project.set_returning:
                return "set"
            if fname in project.list_of_set_returning:
                return "list_of_set"
            return None
        if isinstance(node, ast.Name):
            fn = self._fn_of.get(node)
            if fn is not None:
                kind = self.fn_scopes.get(fn, {}).get(node.id)
                if kind:
                    return kind
            return self.module_scope.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                cls = self._class_of.get(node)
                if cls is not None:
                    return self.class_attrs.get(cls, {}).get(node.attr)
            return None
        if isinstance(node, ast.Subscript):
            if self.kind_of(node.value) == "list_of_set":
                return "set"
            return None
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            if self.kind_of(node.left) == "set" or self.kind_of(node.right) == "set":
                return "set"
            return None
        if isinstance(node, ast.IfExp):
            return self.kind_of(node.body) or self.kind_of(node.orelse)
        return None


def _consumer_name(ctx: ModuleContext, node: ast.AST) -> str | None:
    """Name of the call directly consuming ``node``'s iteration, if any.

    Climbs through a generator-expression hop so that
    ``sorted(x for x in expr)`` counts ``sorted`` as the consumer of
    ``expr``.
    """
    parent = ctx.parent(node)
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = ctx.parent(parent)
        if isinstance(comp, ast.GeneratorExp):
            node = comp
            parent = ctx.parent(comp)
        else:
            return None
    if isinstance(parent, ast.Call) and node in parent.args:
        return _name_of(parent.func)
    return None


# ----------------------------------------------------------------------
# checker base
# ----------------------------------------------------------------------
class Checker:
    """Base class: path scoping plus a finding factory."""

    code: ClassVar[str] = "REP000"
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: Substring path scopes; empty means every file.  A file is in
    #: scope when any entry occurs in its posix path.
    include: ClassVar[tuple[str, ...]] = ()
    #: Files containing any of these substrings are always skipped.
    exclude: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, relpath: str) -> bool:
        path = "/" + relpath
        if any(part in path for part in self.exclude):
            return False
        if not self.include:
            return True
        return any(part in path for part in self.include)

    def finding(self, node: ast.AST, message: str, path: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )

    def check(self, ctx: ModuleContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# REP001: unordered iteration over sets
# ----------------------------------------------------------------------
class UnorderedSetIteration(Checker):
    code = "REP001"
    name = "unordered-set-iteration"
    description = (
        "Iterating a set/frozenset of non-str keys yields an insertion- and "
        "hash-layout-dependent order; wrap in sorted() so cold and "
        "store-warmed builds take identical paths (the PR 3 bug class)."
    )
    # Widened from the per-PR directory list to the whole tree (PR 9):
    # set iteration leaks order anywhere a decision or an artifact is
    # derived from it, not just in the modules that have bitten us.
    include = ()

    def check(self, ctx: ModuleContext) -> list[Finding]:
        types = SetTypes(ctx)
        out: list[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            out.append(
                self.finding(
                    node,
                    f"{what} iterates a set in nondeterministic order; "
                    "wrap the set in sorted()",
                    ctx.path,
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and types.kind_of(node.iter) == "set":
                flag(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if types.kind_of(gen.iter) != "set":
                        continue
                    if (
                        isinstance(node, ast.GeneratorExp)
                        and _consumer_name(ctx, gen.iter) in ORDER_INSENSITIVE_CONSUMERS
                    ):
                        continue
                    flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                fname = _name_of(node.func)
                if (
                    fname in ("list", "tuple")
                    and len(node.args) == 1
                    and not node.keywords
                    and types.kind_of(node.args[0]) == "set"
                ):
                    flag(node.args[0], f"{fname}() conversion")
                elif fname == "fromiter" and node.args and types.kind_of(node.args[0]) == "set":
                    flag(node.args[0], "np.fromiter()")
        return out


# ----------------------------------------------------------------------
# REP002: unseeded global-state RNG
# ----------------------------------------------------------------------
class UnseededRandom(Checker):
    code = "REP002"
    name = "unseeded-global-rng"
    description = (
        "Calls into the global random / np.random state are unseeded shared "
        "state; use an explicitly seeded np.random.default_rng(seed) instead."
    )
    exclude = ("/repro/demand/generator.py",)

    _NP_SAFE = frozenset({"default_rng", "Generator", "SeedSequence", "BitGenerator"})
    _PY_SAFE = frozenset({"Random", "SystemRandom"})

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            func = node.func
            if isinstance(func.value, ast.Name) and func.value.id == "random":
                if func.attr not in self._PY_SAFE:
                    out.append(
                        self.finding(
                            node,
                            f"random.{func.attr}() uses unseeded global RNG state; "
                            "use np.random.default_rng(seed)",
                            ctx.path,
                        )
                    )
            elif (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")
            ):
                if func.attr not in self._NP_SAFE:
                    out.append(
                        self.finding(
                            node,
                            f"np.random.{func.attr}() uses unseeded global RNG state; "
                            "use np.random.default_rng(seed)",
                            ctx.path,
                        )
                    )
        return out


# ----------------------------------------------------------------------
# REP003: wall-clock reads in sim/dispatch code
# ----------------------------------------------------------------------
class WallClockInSim(Checker):
    code = "REP003"
    name = "wall-clock-in-sim"
    description = (
        "time.time()/perf_counter()/datetime.now() in simulation or dispatch "
        "code makes decisions depend on host speed; simulation time comes "
        "from the event clock (obs/ is exempt — it only measures)."
    )
    exclude = ("/repro/obs/", "/repro/analysis/")

    _TIME_ATTRS = frozenset(
        {
            "time", "time_ns", "monotonic", "monotonic_ns",
            "perf_counter", "perf_counter_ns", "clock_gettime",
        }
    )
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: ModuleContext) -> list[Finding]:
        # Names imported straight from the time module.
        time_aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_ATTRS:
                        time_aliases.add(alias.asname or alias.name)

        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            label: str | None = None
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in self._TIME_ATTRS
            ):
                label = f"time.{func.attr}()"
            elif isinstance(func, ast.Name) and func.id in time_aliases:
                label = f"{func.id}()"
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in self._DATETIME_ATTRS
                and _name_of(func.value) in ("datetime", "date")
            ):
                label = f"{_name_of(func.value)}.{func.attr}()"
            if label:
                out.append(
                    self.finding(
                        node,
                        f"{label} reads the wall clock in sim/dispatch code; "
                        "decisions must depend only on the event clock",
                        ctx.path,
                    )
                )
        return out


# ----------------------------------------------------------------------
# REP004: float equality in routing/scheduling
# ----------------------------------------------------------------------
class FloatEquality(Checker):
    code = "REP004"
    name = "float-equality"
    description = (
        "== / != against a nonzero float literal in routing/scheduling code "
        "is precision-fragile; compare with a tolerance (exact-zero sentinel "
        "tests are exempt)."
    )
    # Widened from the per-PR directory list to the whole tree (PR 9):
    # originally scoped to routing/scheduling plus ch.py (whose
    # bit-identical-to-scipy promise makes float == doubly dangerous);
    # nothing about float precision respects directory boundaries.
    include = ()

    @staticmethod
    def _nonzero_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0
        )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._nonzero_float_literal(left) or self._nonzero_float_literal(right):
                    out.append(
                        self.finding(
                            node,
                            "float equality against a nonzero literal; "
                            "use an explicit tolerance",
                            ctx.path,
                        )
                    )
                    break
        return out


# ----------------------------------------------------------------------
# REP005: mutable default arguments
# ----------------------------------------------------------------------
class MutableDefaultArg(Checker):
    code = "REP005"
    name = "mutable-default-arg"
    description = (
        "A mutable default ([], {}, set()) is shared across calls and makes "
        "behaviour depend on call history; default to None and build inside."
    )

    @staticmethod
    def _is_mutable(node: ast.AST | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                             ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray", "defaultdict",
                                 "Counter", "deque")
        )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if self._is_mutable(default):
                    out.append(
                        self.finding(
                            default,
                            "mutable default argument is shared across calls; "
                            "use None and construct in the body",
                            ctx.path,
                        )
                    )
        return out


# ----------------------------------------------------------------------
# REP006: unordered collections fed into hashes / serialised keys
# ----------------------------------------------------------------------
class UnorderedHashInput(Checker):
    code = "REP006"
    name = "unordered-hash-input"
    description = (
        "A set or set-driven comprehension inside hash()/json.dumps()/"
        "hashlib arguments bakes iteration order into a digest; route cache "
        "keys through artifacts.canonical_json (which sorts) or sort first."
    )

    _SINK_NAMES = frozenset({"hash", "sha256", "sha1", "sha512", "md5", "blake2b",
                             "blake2s"})

    def _is_sink(self, func: ast.AST) -> str | None:
        if isinstance(func, ast.Name) and func.id in self._SINK_NAMES:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr == "dumps":
                return f"{_name_of(func.value)}.dumps"
            if isinstance(func.value, ast.Name) and func.value.id == "hashlib":
                return f"hashlib.{func.attr}"
        return None

    def check(self, ctx: ModuleContext) -> list[Finding]:
        types = SetTypes(ctx)
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._is_sink(node.func)
            if sink is None:
                continue
            hit: ast.AST | None = None
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                for sub in ast.walk(arg):
                    if types.kind_of(sub) == "set":
                        hit = sub
                        break
                    if isinstance(sub, ast.DictComp) and any(
                        types.kind_of(g.iter) == "set" for g in sub.generators
                    ):
                        hit = sub
                        break
                if hit is not None:
                    break
            if hit is not None:
                out.append(
                    self.finding(
                        hit,
                        f"unordered collection flows into {sink}(); iteration "
                        "order leaks into the digest — sort or use canonical_json",
                        ctx.path,
                    )
                )
        return out


# ----------------------------------------------------------------------
# REP007: bare / swallowed exceptions
# ----------------------------------------------------------------------
class SwallowedException(Checker):
    code = "REP007"
    name = "swallowed-exception"
    description = (
        "A bare except, or a broad except whose body only passes/continues, "
        "hides dispatch-loop failures as silently skipped work; catch the "
        "specific exception the callee raises."
    )

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        names: list[ast.AST] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(_name_of(n) in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or ellipsis
            return False
        return True

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                out.append(
                    self.finding(
                        node,
                        "bare except catches everything including KeyboardInterrupt; "
                        "name the exception",
                        ctx.path,
                    )
                )
            elif self._is_broad(node.type) and self._swallows(node.body):
                out.append(
                    self.finding(
                        node,
                        "broad except silently swallows errors; catch the specific "
                        "exception and surface the rest",
                        ctx.path,
                    )
                )
        return out


# ----------------------------------------------------------------------
# REP008: unsorted directory listings
# ----------------------------------------------------------------------
class UnsortedDirectoryListing(Checker):
    code = "REP008"
    name = "unsorted-directory-listing"
    description = (
        "os.listdir()/glob()/iterdir() order is filesystem-dependent; wrap "
        "the listing in sorted() before iterating."
    )

    _PATH_METHODS = frozenset({"glob", "rglob", "iterdir"})
    _OS_FUNCS = frozenset({"listdir", "scandir"})

    def _listing_label(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "os":
                if func.attr in self._OS_FUNCS:
                    return f"os.{func.attr}()"
                return None
            if isinstance(func.value, ast.Name) and func.value.id == "glob":
                if func.attr in ("glob", "iglob"):
                    return f"glob.{func.attr}()"
                return None
            if func.attr in self._PATH_METHODS:
                return f".{func.attr}()"
        elif isinstance(func, ast.Name) and func.id in self._OS_FUNCS:
            return f"{func.id}()"
        return None

    def check(self, ctx: ModuleContext) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._listing_label(node)
            if label is None:
                continue
            if _consumer_name(ctx, node) in ORDER_INSENSITIVE_CONSUMERS:
                continue
            out.append(
                self.finding(
                    node,
                    f"{label} yields entries in filesystem order; wrap in sorted()",
                    ctx.path,
                )
            )
        return out


#: Registry, in code order; the engine runs them per file in this order.
ALL_CHECKERS: tuple[Checker, ...] = (
    UnorderedSetIteration(),
    UnseededRandom(),
    WallClockInSim(),
    FloatEquality(),
    MutableDefaultArg(),
    UnorderedHashInput(),
    SwallowedException(),
    UnsortedDirectoryListing(),
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "SetTypes",
    "annotation_kind",
    "ORDER_INSENSITIVE_CONSUMERS",
]
