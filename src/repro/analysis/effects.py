"""Whole-program effect inference and the REP101/REP102 contracts.

Every function in the linted tree gets an **effect set** — which of the
six effect kinds its execution may perform, directly or through any
call it can reach:

=================  ====================================================
``UNSEEDED_RNG``   global ``random`` / ``np.random`` state (REP002's
                   patterns, applied at the leaf call)
``WALL_CLOCK``     ``time.time``/``perf_counter``/``datetime.now``
                   (REP003's patterns)
``FILESYSTEM``     ``open()``, ``os``/``shutil`` file ops, ``Path``
                   read/write methods, ``np.save``/``np.load``
``ENV``            ``os.environ`` / ``os.getenv`` reads
``NETWORK``        ``socket`` / ``urllib`` / ``requests`` traffic
``GLOBAL_MUTATION``  rebinding or mutating a module-level name from
                   inside a function
=================  ====================================================

Seeds are detected at leaf call sites, then propagated transitively
over the :mod:`~repro.analysis.callgraph` until fixpoint, carrying a
**witness chain** (who called whom down to the seeding statement) so a
violation message reads as a path, not an assertion.

Two contracts are enforced on the result:

``REP101`` — *the dispatch path is effect-free.*  Everything reachable
from the ``Simulator`` event-boundary handlers, from any
``DispatchScheme`` ``match*`` method, and from
``WindowLAP.build_cost_matrix`` must have an empty effect set.  The
documented timer suppressions (``# repro-lint: disable=REP003
reason=...`` at the ``perf_counter`` sites that only feed observability
metrics) drop their seeds before propagation, so the shipped tree's
dispatch path proves clean rather than being grandfathered.

``REP102`` — *fingerprints are pure.*  Any function named
``fingerprint`` must have an empty effect set: a fingerprint that reads
the clock or the filesystem can differ across equal runs, which defeats
its whole purpose.

Seed-level escapes: a seed whose line carries a valid suppression for
its per-file sibling code (REP002 for RNG, REP003 for wall clock) or
for REP101/REP102 directly is dropped.  ``repro/obs/`` and
``repro/analysis/`` are exempt from seeding entirely — observability
measures and the linter lints; neither is allowed on the dispatch path
in the first place, and the call graph shows they are not.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, FunctionInfo, ModuleInfo, _attr_chain
from .checkers import UnseededRandom, WallClockInSim
from .engine import Finding, Suppression

__all__ = [
    "CONTRACT_CODE",
    "EFFECTS",
    "EffectReport",
    "FINGERPRINT_CODE",
    "check_effects",
    "infer_effects",
    "render_effects_report",
]

CONTRACT_CODE = "REP101"
FINGERPRINT_CODE = "REP102"

#: The effect lattice is a powerset of these six kinds (order = report order).
EFFECTS = (
    "UNSEEDED_RNG",
    "WALL_CLOCK",
    "FILESYSTEM",
    "ENV",
    "NETWORK",
    "GLOBAL_MUTATION",
)

#: Per-file sibling code whose line suppression also silences the seed.
_SEED_SIBLING_CODE = {"UNSEEDED_RNG": "REP002", "WALL_CLOCK": "REP003"}

#: Paths that never seed effects: obs/ measures, analysis/ lints, and
#: neither is reachable from the dispatch path (the graph proves it).
_SEED_EXEMPT = ("/repro/obs/", "/repro/analysis/")

_OS_FS_FUNCS = frozenset(
    {
        "remove", "rename", "makedirs", "mkdir", "rmdir", "unlink",
        "listdir", "scandir", "walk", "chdir", "symlink", "link",
        "chmod", "utime", "truncate",
    }
)
_PATH_FS_METHODS = frozenset(
    {
        "write_text", "write_bytes", "read_text", "read_bytes",
        "mkdir", "unlink", "touch", "symlink_to", "hardlink_to",
        "iterdir", "rglob",
    }
)
_NP_FS_FUNCS = frozenset({"save", "load", "savez", "savez_compressed", "savetxt", "loadtxt", "memmap"})
_NETWORK_HEADS = frozenset({"socket", "urllib", "requests"})
_MUTATING_METHODS = frozenset(
    {
        "append", "add", "pop", "update", "setdefault", "popitem",
        "clear", "extend", "insert", "remove", "discard",
        "move_to_end", "appendleft", "popleft",
    }
)


@dataclass(frozen=True)
class Seed:
    """One primitive effect occurrence at a leaf statement."""

    effect: str
    qualname: str
    path: str
    line: int
    label: str


@dataclass
class EffectReport:
    """The inference result every contract and the report consume."""

    #: qualname -> effect kind -> (callee the effect arrived through, seed).
    effects: dict[str, dict[str, tuple[str | None, Seed]]] = field(default_factory=dict)
    seeds: list[Seed] = field(default_factory=list)
    #: REP101 contract roots actually present in the tree, sorted.
    contract_roots: list[str] = field(default_factory=list)
    #: functions named ``fingerprint``, sorted.
    fingerprint_roots: list[str] = field(default_factory=list)

    def effects_of(self, qualname: str) -> list[str]:
        """Sorted effect kinds of one function (empty = pure)."""
        return sorted(self.effects.get(qualname, ()), key=EFFECTS.index)

    def witness_chain(self, qualname: str, effect: str, limit: int = 10) -> list[str]:
        """``[qualname, ..., seeding function]`` for one effect."""
        chain = [qualname]
        current = qualname
        while len(chain) < limit:
            via, seed = self.effects[current][effect]
            if via is None:
                break
            chain.append(via)
            current = via
        return chain


# ----------------------------------------------------------------------
# seed detection
# ----------------------------------------------------------------------
def _own_nodes(fn: ast.AST) -> list[ast.AST]:
    """Nodes lexically in ``fn`` excluding nested function bodies.

    Nested defs are separate functions in the graph (linked by a
    parent -> child edge), so their seeds must not double-count here.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return out


def _bound_names(target: ast.AST) -> set[str]:
    """Names a binding target actually (re)binds.

    ``x[...] = v`` and ``x.attr = v`` mutate ``x`` but do NOT bind it —
    treating them as local bindings would hide global-mutation seeds.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _bound_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return set()


def _local_names(fn: ast.AST) -> tuple[set[str], set[str]]:
    """(locally bound names, ``global``-declared names) of one function."""
    local: set[str] = set()
    declared_global: set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            local.add(arg.arg)
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
    for node in _own_nodes(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                local |= _bound_names(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            local |= _bound_names(node.target)
        elif isinstance(node, ast.comprehension):
            local |= _bound_names(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            local |= _bound_names(node.optional_vars)
    return local - declared_global, declared_global


def _call_seed(
    node: ast.Call, time_aliases: set[str], local: set[str]
) -> tuple[str, str] | None:
    """(effect, label) of one call expression, or None.

    ``local`` holds the enclosing function's bound names: a receiver
    that is a local variable is *not* the module it happens to be named
    after (a local list called ``requests`` is not the requests
    library), so module-head patterns skip it.  Method-name patterns
    (``.write_text()``) apply regardless — path objects usually *are*
    locals.
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open" and "open" not in local:
            return ("FILESYSTEM", "open()")
        if func.id in time_aliases and func.id not in local:
            return ("WALL_CLOCK", f"{func.id}()")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    chain = _attr_chain(func)
    head = chain[0] if chain else None
    module_head = head if head is not None and head not in local else None
    # UNSEEDED_RNG (REP002 patterns).
    if isinstance(func.value, ast.Name) and func.value.id == "random" and module_head:
        if attr not in UnseededRandom._PY_SAFE and attr != "seed":
            return ("UNSEEDED_RNG", f"random.{attr}()")
        return None
    if (
        isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id in ("np", "numpy")
        and func.value.value.id not in local
    ):
        if attr not in UnseededRandom._NP_SAFE:
            return ("UNSEEDED_RNG", f"np.random.{attr}()")
        return None
    # WALL_CLOCK (REP003 patterns).
    if module_head == "time" and attr in WallClockInSim._TIME_ATTRS:
        return ("WALL_CLOCK", f"time.{attr}()")
    if attr in WallClockInSim._DATETIME_ATTRS and module_head in ("datetime", "date"):
        return ("WALL_CLOCK", f"{module_head}.{attr}()")
    # FILESYSTEM.
    if module_head == "os" and len(chain) == 2 and attr in _OS_FS_FUNCS:
        return ("FILESYSTEM", f"os.{attr}()")
    if module_head == "os" and len(chain) == 2 and attr == "getenv":
        return ("ENV", "os.getenv()")
    if module_head == "shutil":
        return ("FILESYSTEM", f"shutil.{attr}()")
    if module_head in ("np", "numpy") and len(chain) == 2 and attr in _NP_FS_FUNCS:
        return ("FILESYSTEM", f"{module_head}.{attr}()")
    if attr in _PATH_FS_METHODS:
        return ("FILESYSTEM", f".{attr}()")
    # NETWORK.
    if module_head in _NETWORK_HEADS:
        return ("NETWORK", f"{module_head}.{attr}()")
    if attr in ("urlopen", "urlretrieve"):
        return ("NETWORK", f"{attr}()")
    return None


def _seeds_of(fn: FunctionInfo, mod: ModuleInfo, time_aliases: set[str]) -> list[Seed]:
    """Primitive effects performed directly inside one function body."""
    out: list[Seed] = []
    local, declared_global = _local_names(fn.node)
    mutable_globals = (mod.module_globals - local) | declared_global

    def seed(effect: str, node: ast.AST, label: str) -> None:
        out.append(
            Seed(
                effect=effect,
                qualname=fn.qualname,
                path=fn.path,
                line=getattr(node, "lineno", fn.lineno),
                label=label,
            )
        )

    for node in _own_nodes(fn.node):
        if isinstance(node, ast.Call):
            hit = _call_seed(node, time_aliases, local)
            if hit is not None:
                seed(hit[0], node, hit[1])
            # Mutating method call on a module-level name.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in mutable_globals
                and func.attr in _MUTATING_METHODS
            ):
                seed("GLOBAL_MUTATION", node, f"{func.value.id}.{func.attr}()")
        elif isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if (
                chain == ["os", "environ"]
                and "os" not in local
            ):
                seed("ENV", node, "os.environ")
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    seed("GLOBAL_MUTATION", node, f"global {target.id} rebound")
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_globals
                ):
                    seed("GLOBAL_MUTATION", node, f"{target.value.id}[...] assigned")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_globals
                ):
                    seed("GLOBAL_MUTATION", node, f"del {target.value.id}[...]")
    return out


def _time_aliases(mod: ModuleInfo) -> set[str]:
    """Names ``from time import ...`` bound in one module (REP003 rule)."""
    out: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in WallClockInSim._TIME_ATTRS:
                    out.add(alias.asname or alias.name)
    return out


def _seed_suppressed(
    seed: Seed, suppressions: dict[str, dict[int, Suppression]]
) -> bool:
    sup = suppressions.get(seed.path, {}).get(seed.line)
    if sup is None or not sup.reason:
        return False
    allowed = {CONTRACT_CODE, FINGERPRINT_CODE}
    sibling = _SEED_SIBLING_CODE.get(seed.effect)
    if sibling is not None:
        allowed.add(sibling)
    return bool(sup.codes & allowed)


# ----------------------------------------------------------------------
# propagation
# ----------------------------------------------------------------------
def infer_effects(
    graph: CallGraph, suppressions: dict[str, dict[int, Suppression]]
) -> EffectReport:
    """Seed, propagate to fixpoint, and locate the contract roots."""
    report = EffectReport()
    alias_cache = {mod.path: _time_aliases(mod) for mod in graph.modules.values()}
    for qualname, fn in graph.functions.items():
        fnpath = "/" + fn.path
        if any(part in fnpath for part in _SEED_EXEMPT):
            continue
        mod = graph.modules[fn.path]
        for seed in _seeds_of(fn, mod, alias_cache[fn.path]):
            if _seed_suppressed(seed, suppressions):
                continue
            report.seeds.append(seed)
            report.effects.setdefault(qualname, {}).setdefault(
                seed.effect, (None, seed)
            )

    reverse: dict[str, list[str]] = {}
    for caller, callees in graph.edges.items():
        for callee in callees:
            reverse.setdefault(callee, []).append(caller)

    worklist: list[tuple[str, str]] = [
        (qual, effect)
        for qual, effs in sorted(report.effects.items())
        for effect in sorted(effs)
    ]
    while worklist:
        qual, effect = worklist.pop()
        _via, seed = report.effects[qual][effect]
        for caller in reverse.get(qual, ()):
            caller_effects = report.effects.setdefault(caller, {})
            if effect in caller_effects:
                continue
            caller_effects[effect] = (qual, seed)
            worklist.append((caller, effect))

    report.contract_roots = sorted(_contract_roots(graph))
    report.fingerprint_roots = sorted(
        qual for qual, fn in graph.functions.items() if fn.name == "fingerprint"
    )
    return report


def _contract_roots(graph: CallGraph) -> set[str]:
    """The REP101 effect-free roots present in the linted tree."""
    roots: set[str] = set()
    boundary_names = {
        "_on_request_release",
        "_on_drain_tick",
        "_on_window_tick",
        "_on_rebalance_tick",
    }
    scheme_classes = graph.subclasses_of("DispatchScheme")
    scheme_classes.update(graph.classes_by_name.get("DispatchScheme", []))
    for qual, fn in graph.functions.items():
        if fn.cls is None:
            continue
        cls_short = fn.cls.rsplit(".", 1)[-1]
        if cls_short == "Simulator" and fn.name in boundary_names:
            roots.add(qual)
        elif fn.cls in scheme_classes and fn.name.startswith("match"):
            roots.add(qual)
        elif cls_short == "WindowLAP" and fn.name == "build_cost_matrix":
            roots.add(qual)
    return roots


# ----------------------------------------------------------------------
# the checker and the report
# ----------------------------------------------------------------------
def _violation(
    report: EffectReport, graph: CallGraph, root: str, code: str, contract: str
) -> list[Finding]:
    fn = graph.functions[root]
    out: list[Finding] = []
    for effect in report.effects_of(root):
        chain = report.witness_chain(root, effect)
        _via, seed = report.effects[root][effect]
        path_str = " -> ".join(chain)
        out.append(
            Finding(
                path=fn.path,
                line=fn.lineno,
                col=1,
                code=code,
                message=(
                    f"{contract}: {effect} reachable via {path_str} "
                    f"(seed: {seed.label} at {seed.path}:{seed.line})"
                ),
            )
        )
    return out


def check_effects(
    graph: CallGraph, suppressions: dict[str, dict[int, Suppression]]
) -> list[Finding]:
    """REP101 + REP102 findings over the whole program."""
    report = infer_effects(graph, suppressions)
    out: list[Finding] = []
    for root in report.contract_roots:
        out.extend(
            _violation(report, graph, root, CONTRACT_CODE, "dispatch path must be effect-free")
        )
    for root in report.fingerprint_roots:
        out.extend(
            _violation(report, graph, root, FINGERPRINT_CODE, "fingerprint() must be pure")
        )
    return out


def render_effects_report(
    graph: CallGraph, suppressions: dict[str, dict[int, Suppression]]
) -> str:
    """The human-readable ``repro lint effects`` report."""
    report = infer_effects(graph, suppressions)
    lines: list[str] = []
    lines.append("effect contracts")
    lines.append("================")
    for root in report.contract_roots + report.fingerprint_roots:
        effects = report.effects_of(root)
        status = "PURE" if not effects else ",".join(effects)
        lines.append(f"  {status:<14} {root}")
    lines.append("")
    lines.append("effect seeds by kind")
    lines.append("====================")
    by_kind: dict[str, list[Seed]] = {}
    for seed in report.seeds:
        by_kind.setdefault(seed.effect, []).append(seed)
    for kind in EFFECTS:
        seeds = sorted(by_kind.get(kind, []), key=lambda s: (s.path, s.line))
        lines.append(f"  {kind}: {len(seeds)}")
        for seed in seeds:
            lines.append(f"    {seed.path}:{seed.line}: {seed.label} in {seed.qualname}")
    lines.append("")
    impure = sorted(q for q in report.effects if q in graph.functions)
    lines.append(f"functions with effects: {len(impure)} of {len(graph.functions)}")
    return "\n".join(lines)
