"""The ``repro lint`` engine: file walking, suppressions, baselines, output.

The engine is deliberately small: it parses every ``.py`` file once,
hands the tree (plus a little cross-module context) to each registered
checker, filters the resulting findings through per-line suppressions
and the committed baseline, and renders the survivors as human-readable
lines or JSON.  The process exits nonzero iff *new* (non-baselined)
findings remain.

Suppression syntax (same physical line as the finding)::

    risky_call()  # repro-lint: disable=REP003 reason=metrics only

A suppression without a ``reason=`` is ignored — the finding still
fires — so every silenced warning documents why it is safe.

Baseline files are JSON (``{"version": 1, "findings": [...]}``) keyed
by ``(path, code, message)`` with an occurrence count, so grandfathered
findings survive unrelated line drift but resurface when the code is
touched in a way that changes the message or adds occurrences.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .checkers import Checker

#: Engine-level diagnostic code for files that fail to parse.
PARSE_ERROR_CODE = "REP000"

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*disable=(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s+reason=(?P<reason>\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Line-insensitive identity used to match baseline entries."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        """``path:line:col: CODE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` pragma."""

    line: int
    codes: frozenset[str]
    reason: str


@dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """0 when no new findings survived suppression and baseline."""
        return 1 if self.new else 0


# ----------------------------------------------------------------------
# file discovery and per-file context
# ----------------------------------------------------------------------
def iter_python_files(paths: list[str]) -> list[Path]:
    """Every ``.py`` under ``paths``, in sorted (deterministic) order."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(q for q in p.rglob("*.py") if q.is_file()))
        elif p.is_file():
            out.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    seen: dict[Path, None] = {}
    for p in out:
        seen.setdefault(p, None)
    return list(seen)


def _relpath(path: Path) -> str:
    """Posix path relative to the CWD when possible (stable baselines)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Per-line suppression pragmas, found via the tokenizer.

    Using real COMMENT tokens (rather than a regex over raw lines)
    means pragma-looking text inside string literals never counts.
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            codes = frozenset(c.strip() for c in m.group("codes").split(","))
            reason = (m.group("reason") or "").strip()
            out[tok.start[0]] = Suppression(line=tok.start[0], codes=codes, reason=reason)
    except tokenize.TokenError:
        pass
    return out


class ModuleContext:
    """Everything a checker needs about one parsed module."""

    def __init__(self, path: str, tree: ast.Module, source: str, project: "ProjectTable") -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.project = project
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Syntactic parent of ``node`` (None for the module root)."""
        return self.parents.get(node)


class ProjectTable:
    """Cross-module facts collected in a first pass over every file.

    Currently: the names of functions/methods whose *return annotation*
    is set-typed (or a list of sets).  Checkers use it to recognise
    ``obj.method(...)`` calls that hand back unordered collections even
    when the definition lives in another module — exactly how the PR 3
    landmark-adjacency bug leaked set iteration into routing.
    """

    def __init__(self) -> None:
        self.set_returning: set[str] = set()
        self.list_of_set_returning: set[str] = set()

    def collect(self, tree: ast.Module) -> None:
        """Record set-returning callables defined in ``tree``."""
        from .checkers import annotation_kind  # local import: cycle guard

        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.returns:
                kind = annotation_kind(node.returns)
                if kind == "set":
                    self.set_returning.add(node.name)
                elif kind == "list_of_set":
                    self.list_of_set_returning.add(node.name)


# ----------------------------------------------------------------------
# baseline handling
# ----------------------------------------------------------------------
def load_baseline(path: Path | None) -> Counter:
    """Baseline entry counts keyed by ``(path, code, message)``.

    A missing file is an empty baseline, so a fresh checkout with no
    grandfathered findings needs no baseline at all.
    """
    counts: Counter = Counter()
    if path is None or not path.is_file():
        return counts
    data = json.loads(path.read_text())
    for entry in data.get("findings", []):
        key = (str(entry["path"]), str(entry["code"]), str(entry["message"]))
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(findings: list[Finding], path: Path) -> None:
    """Persist ``findings`` as the new baseline (sorted, counted)."""
    counts: Counter = Counter(f.baseline_key for f in findings)
    entries = [
        {"path": p, "code": c, "message": m, "count": n}
        for (p, c, m), n in sorted(counts.items())
    ]
    path.write_text(json.dumps({"version": 1, "findings": entries}, indent=2) + "\n")


# ----------------------------------------------------------------------
# the lint run
# ----------------------------------------------------------------------
def lint_paths(
    paths: list[str],
    checkers: "list[Checker] | None" = None,
    baseline_path: Path | None = None,
    deep: bool = False,
) -> LintResult:
    """Run every checker over every file under ``paths``.

    With ``deep=True`` the whole-program tier also runs: a call graph
    is built over every parsed file and the REP10x checkers (effects,
    concurrency, event protocol) contribute findings through the same
    suppression and baseline machinery as the per-file checkers.
    """
    from .checkers import ALL_CHECKERS

    active = list(ALL_CHECKERS) if checkers is None else list(checkers)
    files = iter_python_files(paths)
    result = LintResult(files_checked=len(files))

    parsed: list[tuple[str, ast.Module, str]] = []
    raw: list[Finding] = []
    for file in files:
        rel = _relpath(file)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raw.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    code=PARSE_ERROR_CODE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        parsed.append((rel, tree, source))

    project = ProjectTable()
    for _rel, tree, _source in parsed:
        project.collect(tree)

    suppression_map = {rel: parse_suppressions(source) for rel, _tree, source in parsed}

    for rel, tree, source in parsed:
        ctx = ModuleContext(rel, tree, source, project)
        suppressions = suppression_map[rel]
        for checker in active:
            if not checker.applies_to(rel):
                continue
            for finding in checker.check(ctx):
                sup = suppressions.get(finding.line)
                if sup is not None and finding.code in sup.codes and sup.reason:
                    result.suppressed.append(finding)
                else:
                    raw.append(finding)

    if deep:
        for finding in run_deep_checkers(parsed, suppression_map):
            sup = suppression_map.get(finding.path, {}).get(finding.line)
            if sup is not None and finding.code in sup.codes and sup.reason:
                result.suppressed.append(finding)
            else:
                raw.append(finding)

    budget = load_baseline(baseline_path)
    for finding in sorted(raw):
        if budget[finding.baseline_key] > 0:
            budget[finding.baseline_key] -= 1
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    return result


# ----------------------------------------------------------------------
# the deep (whole-program) tier
# ----------------------------------------------------------------------
#: Catalog rows for the REP10x whole-program checkers (``--list-checkers``).
DEEP_CATALOG: tuple[tuple[str, str, str], ...] = (
    ("REP101", "effect-contract [deep]",
     "Everything reachable from the Simulator event boundaries, DispatchScheme "
     "match*, or WindowLAP.build_cost_matrix must be effect-free."),
    ("REP102", "impure-fingerprint [deep]",
     "fingerprint() functions must be pure: no RNG, clock, filesystem, env, "
     "network, or global mutation anywhere in their call tree."),
    ("REP103", "unlocked-shared-state [deep]",
     "Thread-entry code must hold the guarding lock on every path that "
     "mutates shared service state."),
    ("REP104", "unpicklable-process-boundary [deep]",
     "Callables submitted to a ProcessPoolExecutor must be module-level "
     "functions (spawn workers re-import by qualified name)."),
    ("REP105", "event-protocol [deep]",
     "Every scheduled event kind must come from the central EVENT_TABLE, "
     "carry the table's priority, and have at least one subscriber."),
)


def run_deep_checkers(
    parsed: list[tuple[str, ast.Module, str]],
    suppression_map: dict[str, dict[int, Suppression]],
) -> list[Finding]:
    """Build the call graph once and run every whole-program checker."""
    from .callgraph import build_call_graph
    from .concurrency import check_concurrency
    from .effects import check_effects
    from .protocol import check_protocol

    graph = build_call_graph([(rel, tree) for rel, tree, _source in parsed])
    findings: list[Finding] = []
    findings.extend(check_effects(graph, suppression_map))
    findings.extend(check_concurrency(graph, suppression_map))
    findings.extend(check_protocol(graph, suppression_map))
    return findings


def _effects_report(paths: list[str]) -> int:
    """``repro lint effects [paths]`` — print the effects report."""
    from .callgraph import build_call_graph
    from .effects import render_effects_report

    files = iter_python_files(paths)
    parsed: list[tuple[str, ast.Module]] = []
    suppression_map: dict[str, dict[int, Suppression]] = {}
    for file in files:
        rel = _relpath(file)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue
        parsed.append((rel, tree))
        suppression_map[rel] = parse_suppressions(source)
    graph = build_call_graph(parsed)
    print(render_effects_report(graph, suppression_map))
    return 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism/invariant lint for the mT-Share reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", default="lint-baseline.json", metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: lint-baseline.json; missing file = empty)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline; report every finding as new")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings and exit 0")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    parser.add_argument("--deep", action="store_true",
                        help="also run the whole-program checkers (REP101-REP105: "
                             "effect contracts, lock discipline, event protocol)")
    parser.add_argument("--list-checkers", action="store_true",
                        help="print the checker catalog and exit")
    return parser


def _print_catalog() -> None:
    from .checkers import ALL_CHECKERS

    for checker in ALL_CHECKERS:
        print(f"{checker.code}  {checker.name}")
        print(f"       {checker.description}")
    for code, name, description in DEEP_CATALOG:
        print(f"{code}  {name}")
        print(f"       {description}")


def main(argv: list[str] | None = None) -> int:
    """Entry point shared by ``repro lint`` and ``python -m repro.analysis``."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "effects":
        return _effects_report(argv[1:] or ["src"])
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        _print_catalog()
        return 0

    baseline = None if args.no_baseline else Path(args.baseline)
    result = lint_paths(args.paths, baseline_path=baseline, deep=args.deep)

    if args.update_baseline:
        target = Path(args.baseline)
        write_baseline(result.new + result.baselined, target)
        print(f"baseline written: {target} "
              f"({len(result.new) + len(result.baselined)} findings)")
        return 0

    if args.format == "json":
        payload = {
            "version": 1,
            "files_checked": result.files_checked,
            "new": [f.as_dict() for f in result.new],
            "baselined": [f.as_dict() for f in result.baselined],
            "suppressed": [f.as_dict() for f in result.suppressed],
        }
        print(json.dumps(payload, indent=2))
        return result.exit_code

    for finding in result.new:
        print(finding.render())
    print(
        f"repro lint: {len(result.new)} new, {len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed across {result.files_checked} files"
    )
    return result.exit_code
