"""Project-specific static analysis: the ``repro lint`` engine.

The reproduction's value rests on bit-for-bit determinism (cold builds,
store-warmed builds and worker processes must take identical dispatch
decisions) and on the paper's schedule/accounting invariants.  This
package enforces both:

``repro.analysis.engine`` / ``repro.analysis.checkers``
    An AST-walking lint engine with checkers tuned to this codebase's
    historical failure modes (REP001..REP008) — unordered set
    iteration, unseeded global RNG, wall-clock reads in dispatch code,
    float equality, mutable defaults, unordered hash inputs, swallowed
    exceptions and unsorted directory listings.  Run it as
    ``repro lint [paths]`` or ``python -m repro.analysis``.

``repro.analysis.contracts``
    Runtime invariant checks (pickup-before-dropoff, capacity, clock
    monotonicity, request accounting) enabled by ``REPRO_CONTRACTS=1``
    and in the test suite; no-ops otherwise.

See ``docs/STATIC_ANALYSIS.md`` for the checker catalog, the
suppression syntax and the baseline workflow.
"""

from __future__ import annotations

from .checkers import ALL_CHECKERS
from .engine import Finding, LintResult, lint_paths, main

__all__ = ["ALL_CHECKERS", "Finding", "LintResult", "lint_paths", "main"]
