"""Runtime invariant contracts for the simulation core.

The paper's correctness conditions — Algorithm 1's schedule feasibility
(each pick-up precedes its drop-off, capacity never exceeded), the
event clock's monotonicity, and the request-accounting identity behind
every service-rate figure — are cheap to state and expensive to debug
when silently violated.  This module states them as *contracts*: check
functions guarded by one module-level flag.

Enablement
----------
Contracts are **off** by default and the guard is a single attribute
load + branch, so production runs pay effectively nothing (the obs
overhead test bounds the whole layer at <= 5% of wall time).  They are
on when:

* the environment variable ``REPRO_CONTRACTS`` is set to anything but
  ``0``/``false``/``off``/empty when :mod:`repro.analysis.contracts` is
  first imported, or
* :func:`enable` is called (the test suite does this in a session
  fixture, so every tier-1 run exercises the invariants).

A violated contract raises :class:`ContractViolation` (an
``AssertionError`` subclass: genuine programming errors, not user
input errors).

Usage::

    from repro.analysis import contracts

    contracts.check_schedule(stops, taxi.occupancy, taxi.capacity)
    contracts.check_monotone_clock(previous_now, now)
    contracts.check_request_accounting(metrics)
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, TypeVar

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..fleet.schedule import Stop
    from ..sim.metrics import SimulationMetrics

ENV_VAR = "REPRO_CONTRACTS"

_F = TypeVar("_F", bound=Callable[..., None])


class ContractViolation(AssertionError):
    """A runtime invariant of the simulation core does not hold."""


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in ("", "0", "false", "off")


_ENABLED: bool = _env_enabled()


def enabled() -> bool:
    """Whether contract checks currently execute."""
    return _ENABLED


def enable(on: bool = True) -> None:
    """Force contracts on (or off), overriding the environment."""
    global _ENABLED
    _ENABLED = on


def invariant(description: str) -> Callable[[_F], _F]:
    """Mark a function as a contract check, compiled out when disabled.

    The wrapper returns immediately unless contracts are enabled, so a
    disabled check costs one call + one branch.  ``description`` is
    attached as ``contract_description`` for introspection/reporting.
    """

    def decorate(fn: _F) -> _F:
        def wrapper(*args: object, **kwargs: object) -> None:
            if not _ENABLED:
                return
            fn(*args, **kwargs)

        wrapper.contract_description = description  # type: ignore[attr-defined]
        wrapper.__name__ = fn.__name__
        wrapper.__doc__ = fn.__doc__
        return wrapper  # type: ignore[return-value]

    return decorate


# ----------------------------------------------------------------------
# the contracts
# ----------------------------------------------------------------------
@invariant("each pick-up precedes its drop-off and capacity is never exceeded")
def check_schedule(stops: "Sequence[Stop]", occupancy: int, capacity: int) -> None:
    """Algorithm 1 feasibility of an installed schedule.

    ``occupancy`` is the number of passengers already on board when the
    schedule starts (their drop-offs appear without pick-ups).
    """
    from ..fleet.schedule import StopKind

    picked: set[int] = set()
    onboard = occupancy
    for idx, stop in enumerate(stops):
        rid = stop.request.request_id
        if stop.kind is StopKind.PICKUP:
            if rid in picked:
                raise ContractViolation(f"request {rid} picked up twice in one schedule")
            picked.add(rid)
        elif rid not in picked and any(
            s.kind is StopKind.PICKUP and s.request.request_id == rid
            for s in stops[idx + 1:]
        ):
            raise ContractViolation(
                f"request {rid} is dropped off before its pick-up (stop {idx})"
            )
        onboard += stop.passenger_delta
        if onboard > capacity:
            raise ContractViolation(
                f"capacity exceeded after stop {idx}: {onboard} > {capacity}"
            )
        if onboard < 0:
            raise ContractViolation(
                f"negative occupancy after stop {idx}: taxi drops off "
                "passengers it never carried"
            )


@invariant("the simulation clock never moves backwards")
def check_monotone_clock(previous: float, now: float) -> None:
    """Event times must be non-decreasing across the whole run."""
    if now < previous:
        raise ContractViolation(
            f"simulation clock moved backwards: {previous} -> {now}"
        )


@invariant("every request ends in exactly one accounting bucket")
def check_request_accounting(metrics: "SimulationMetrics") -> None:
    """The request balance of :meth:`SimulationMetrics.check_balance`.

    ``check_balance`` stays an unconditional end-of-run assertion; this
    contract makes the same identity checkable *mid-run* as an upper
    bound (no bucket may overshoot its population while requests are
    still in flight).  The fault buckets — cancellations and strandings
    move a request out of its served bucket, never into a second one —
    are part of the identity, so it holds under injected churn too
    (docs/ROBUSTNESS.md).
    """
    online = (
        metrics.served_online
        + metrics.unserved_online
        + metrics.cancelled_online
        + metrics.stranded_online
        + metrics.rejected_online
    )
    offline = (
        metrics.served_offline
        + metrics.expired_offline
        + metrics.unserved_offline
        + metrics.cancelled_offline
        + metrics.stranded_offline
        + metrics.rejected_offline
    )
    if online > metrics.num_online or offline > metrics.num_offline:
        raise ContractViolation(
            "request accounting overshoots its population: "
            f"online {online}/{metrics.num_online}, "
            f"offline {offline}/{metrics.num_offline}"
        )


__all__ = [
    "ENV_VAR",
    "ContractViolation",
    "check_monotone_clock",
    "check_request_accounting",
    "check_schedule",
    "enable",
    "enabled",
    "invariant",
]
