"""Lock-discipline and process-boundary checks (REP103/REP104).

The repo has exactly two concurrency idioms, both deliberately simple,
and this checker keeps them that way:

``REP103`` — *shared state is touched under its lock.*  The streaming
service (:mod:`repro.service.http`) runs HTTP handler threads that all
share one ``ServiceState`` guarded by a single ``threading.Lock``.  The
rule: inside a **thread-entry function** (a method of a
``BaseHTTPRequestHandler`` subclass, a ``do_GET``/``do_POST``-style
handler, or a ``threading.Thread(target=...)`` target), any mutation of
an attribute of a **guarded object** — a name that appears as ``with
X.lock:`` somewhere in the same module — must happen lexically inside a
``with X.lock:`` block.  Mutations counted: attribute assignment and
aug-assignment, subscript assignment, ``del``, and calls to mutating
collection methods (``append``/``add``/``pop``/...) or to *any* method
of the guarded object itself (a method call may mutate; reads of plain
attributes are not flagged — the GIL makes a single attribute load
atomic, and flagging reads would drown the signal).

``REP104`` — *only module-level functions cross the process boundary.*
The sweep runner (:mod:`repro.experiments.runner`) fans out over a
``ProcessPoolExecutor`` with a spawn context: workers re-import the
module and unpickle the callable by qualified name.  A lambda, a nested
function, or a bound method passed to ``pool.map``/``pool.submit``
pickles never (lambdas, locals) or drags its whole ``self`` across the
boundary (bound methods) — flag them all; only a plain module-level
function name is accepted.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, ModuleInfo, _attr_chain
from .engine import Finding

__all__ = ["LOCK_CODE", "PICKLE_CODE", "check_concurrency"]

LOCK_CODE = "REP103"
PICKLE_CODE = "REP104"

#: Attribute names that denote a lock when used as ``with X.<attr>:``.
_LOCK_ATTRS = frozenset({"lock", "_lock", "mutex", "_mutex"})

_MUTATING_METHODS = frozenset(
    {
        "append", "add", "pop", "update", "setdefault", "popitem",
        "clear", "extend", "insert", "remove", "discard",
        "move_to_end", "appendleft", "popleft",
    }
)

_THREAD_ENTRY_NAMES = frozenset(
    {"do_GET", "do_POST", "do_PUT", "do_DELETE", "do_HEAD", "run"}
)


def _lock_key(node: ast.AST) -> tuple[str, str] | None:
    """``(receiver, attr)`` of a lock expression like ``state.lock``."""
    chain = _attr_chain(node)
    if chain is not None and len(chain) == 2 and chain[1] in _LOCK_ATTRS:
        return (chain[0], chain[1])
    return None


def _guarded_names(mod: ModuleInfo) -> set[str]:
    """Names ``X`` with a ``with X.lock:`` block anywhere in the module."""
    out: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.With):
            for item in node.items:
                key = _lock_key(item.context_expr)
                if key is not None:
                    out.add(key[0])
    return out


def _thread_entry_functions(
    graph: CallGraph, mod: ModuleInfo
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions whose body runs on a non-main thread."""
    out: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    handler_bases = {"BaseHTTPRequestHandler"}
    handler_bases.update(
        cls.rsplit(".", 1)[-1]
        for cls in sorted(graph.subclasses_of("BaseHTTPRequestHandler"))
    )
    # Thread(target=f) / Thread(target=self.m): collect target names.
    thread_targets: set[str] = set()
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None or chain[-1] != "Thread":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                target_chain = _attr_chain(kw.value)
                if target_chain is not None:
                    thread_targets.add(target_chain[-1])

    def visit(body: list[ast.stmt], in_handler_class: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                bases = {
                    chain[-1]
                    for base in stmt.bases
                    if (chain := _attr_chain(base)) is not None
                }
                visit(stmt.body, in_handler_class or bool(bases & handler_bases))
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    in_handler_class
                    or stmt.name in _THREAD_ENTRY_NAMES
                    or stmt.name in thread_targets
                ):
                    out.append(stmt)
                # Nested handler classes (the _make_handler closure idiom).
                visit(stmt.body, in_handler_class)

    visit(mod.tree.body, False)
    return out


def _mutations_of(name: str, node: ast.AST) -> list[tuple[ast.AST, str]]:
    """Direct mutations of ``name.<attr>`` in one statement, labelled."""
    out: list[tuple[ast.AST, str]] = []

    def is_target(expr: ast.AST) -> bool:
        chain = _attr_chain(expr)
        return chain is not None and chain[0] == name and len(chain) >= 2

    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            base = target.value if isinstance(target, ast.Subscript) else target
            if is_target(base):
                out.append((node, f"assignment to {ast.unparse(target)}"))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            base = target.value if isinstance(target, ast.Subscript) else target
            if is_target(base):
                out.append((node, f"del {ast.unparse(target)}"))
    elif isinstance(node, ast.Call):
        chain = _attr_chain(node.func)
        if chain is not None and chain[0] == name and len(chain) >= 2:
            attr = chain[-1]
            if attr in _LOCK_ATTRS or (
                len(chain) == 3 and chain[1] in _LOCK_ATTRS
            ):
                return out  # the lock itself (acquire/release) is not state
            if len(chain) == 2 and attr not in _MUTATING_METHODS:
                # X.method() — any method of the guarded object may mutate.
                out.append((node, f"call {ast.unparse(node.func)}()"))
            elif attr in _MUTATING_METHODS:
                out.append((node, f"call {ast.unparse(node.func)}()"))
    return out


def _check_lock_discipline(graph: CallGraph, mod: ModuleInfo) -> list[Finding]:
    guarded = _guarded_names(mod)
    if not guarded:
        return []
    out: list[Finding] = []

    def check_exprs(exprs: list[ast.AST], held: frozenset[str], fn_name: str) -> None:
        for expr in exprs:
            for node in ast.walk(expr):
                for name in sorted(guarded - held):
                    for site, label in _mutations_of(name, node):
                        out.append(
                            Finding(
                                path=mod.path,
                                line=getattr(site, "lineno", 1),
                                col=getattr(site, "col_offset", 0) + 1,
                                code=LOCK_CODE,
                                message=(
                                    f"{label} in thread-entry {fn_name}() "
                                    f"without holding {name}.lock"
                                ),
                            )
                        )

    def walk(body: list[ast.stmt], held: frozenset[str], fn_name: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # separate scope; entered via its own entry
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = {
                    key[0]
                    for item in stmt.items
                    if (key := _lock_key(item.context_expr)) is not None
                }
                check_exprs([item.context_expr for item in stmt.items], held, fn_name)
                walk(stmt.body, held | acquired, fn_name)
            elif isinstance(stmt, (ast.If, ast.While)):
                check_exprs([stmt.test], held, fn_name)
                walk(stmt.body, held, fn_name)
                walk(stmt.orelse, held, fn_name)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                check_exprs([stmt.iter], held, fn_name)
                walk(stmt.body, held, fn_name)
                walk(stmt.orelse, held, fn_name)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, held, fn_name)
                walk(stmt.orelse, held, fn_name)
                walk(stmt.finalbody, held, fn_name)
                for handler in stmt.handlers:
                    walk(handler.body, held, fn_name)
            else:
                check_exprs([stmt], held, fn_name)

    for fn in _thread_entry_functions(graph, mod):
        walk(fn.body, frozenset(), fn.name)
    return out


# ----------------------------------------------------------------------
# REP104: process-boundary picklability
# ----------------------------------------------------------------------
def _check_pickle_boundary(mod: ModuleInfo) -> list[Finding]:
    # Names bound to a ProcessPoolExecutor (assignment or with-as).
    pools: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            chain = _attr_chain(node.value.func)
            if chain is not None and chain[-1] == "ProcessPoolExecutor":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pools.add(target.id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    chain = _attr_chain(item.context_expr.func)
                    if (
                        chain is not None
                        and chain[-1] == "ProcessPoolExecutor"
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        pools.add(item.optional_vars.id)
    if not pools:
        return []

    module_functions: set[str] = set()
    nested_functions: set[str] = set()

    def collect(body: list[ast.stmt], top: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                (module_functions if top else nested_functions).add(stmt.name)
                collect(stmt.body, False)
            elif isinstance(stmt, ast.ClassDef):
                collect(stmt.body, False)
            elif isinstance(stmt, (ast.If, ast.Try)):
                collect(getattr(stmt, "body", []), top)
                collect(getattr(stmt, "orelse", []), top)

    collect(mod.tree.body, True)

    out: list[Finding] = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        func = node.func
        if func.attr not in ("map", "submit"):
            continue
        if not (isinstance(func.value, ast.Name) and func.value.id in pools):
            continue
        if not node.args:
            continue
        worker = node.args[0]
        label: str | None = None
        if isinstance(worker, ast.Lambda):
            label = "a lambda"
        elif isinstance(worker, ast.Attribute):
            label = f"bound method {ast.unparse(worker)}"
        elif isinstance(worker, ast.Name):
            if worker.id in nested_functions and worker.id not in module_functions:
                label = f"nested function {worker.id}"
            elif (
                worker.id not in module_functions
                and worker.id not in mod.import_symbols
                and worker.id not in mod.import_modules
            ):
                label = f"non-module-level callable {worker.id}"
        if label is not None:
            out.append(
                Finding(
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=PICKLE_CODE,
                    message=(
                        f"{label} crosses the process boundary via "
                        f"pool.{func.attr}(); spawn workers re-import by "
                        "qualified name — pass a module-level function"
                    ),
                )
            )
    return out


def check_concurrency(graph: CallGraph, suppressions: object = None) -> list[Finding]:
    """REP103 + REP104 findings over the whole program."""
    out: list[Finding] = []
    for mod in graph.modules.values():
        out.extend(_check_lock_discipline(graph, mod))
        out.extend(_check_pickle_boundary(mod))
    return sorted(out)
