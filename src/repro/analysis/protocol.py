"""Kernel event-protocol checker (REP105).

The event protocol lives in one table — ``repro/sim/events.py``'s
``EVENT_TABLE`` — and this checker makes the table binding rather than
advisory.  Parsed straight from the linted tree's AST (never imported),
the table yields each kind's canonical priority; the rules are:

1. **No ad-hoc kinds.**  A ``kernel.schedule(...)`` site must name its
   kind via a constant that resolves into the table.  A bare string
   literal at a schedule site is flagged even when the spelling happens
   to match — literals are how the PR 8 invariant degraded into tribal
   knowledge in the first place.
2. **Priorities agree with the table.**  A schedule site's priority —
   an explicit literal, or 0 when omitted — must equal the table row's.
   ``priority=priority_of(KIND)`` (for the same kind) is consistent by
   construction and accepted without further proof.  Priorities the
   checker cannot decide statically (arbitrary expressions) are
   accepted; the runtime contract tests cover those.
3. **Every kind has a subscriber.**  A table row nobody subscribes to
   is dead protocol; the finding lands on the row so the owner either
   deletes it or documents why it stays (the ``timer`` row carries such
   a suppression: its subscribers are downstream clients and tests).
4. **One table.**  A module-level string constant outside ``events.py``
   whose value collides with a table kind is redefinition drift — the
   scattered-literals state this PR abolished — and is flagged.

Schedule sites are recognised as ``<recv>.schedule(...)`` calls whose
receiver chain mentions a kernel (``kernel.schedule``,
``self._kernel.schedule``); subscriptions as any ``.subscribe(KIND,
handler)`` call.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, ModuleInfo, _attr_chain
from .engine import Finding

__all__ = ["PROTOCOL_CODE", "EventTable", "check_protocol", "parse_event_table"]

PROTOCOL_CODE = "REP105"

#: Path suffix identifying the central table module in the linted tree.
_TABLE_PATH_SUFFIX = "sim/events.py"


class EventTable:
    """The parsed protocol table: kind -> (priority, row line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.rows: dict[str, tuple[int, int]] = {}

    def priority(self, kind: str) -> int | None:
        row = self.rows.get(kind)
        return None if row is None else row[0]


def _string_constants(mod: ModuleInfo) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings of one module."""
    out: dict[str, str] = {}
    for stmt in mod.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            out[stmt.targets[0].id] = stmt.value.value
    return out


def parse_event_table(graph: CallGraph) -> EventTable | None:
    """Extract ``EVENT_TABLE`` from the linted tree's events module."""
    for mod in graph.modules.values():
        if not mod.path.endswith(_TABLE_PATH_SUFFIX):
            continue
        constants = _string_constants(mod)
        for stmt in mod.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not any(
                isinstance(t, ast.Name) and t.id == "EVENT_TABLE" for t in targets
            ):
                continue
            if not isinstance(value, ast.Dict):
                continue
            table = EventTable(mod.path)
            for key, spec in zip(value.keys, value.values):
                kind: str | None = None
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    kind = key.value
                elif isinstance(key, ast.Name):
                    kind = constants.get(key.id)
                if kind is None or not isinstance(spec, ast.Call):
                    continue
                priority = 0
                for kw in spec.keywords:
                    if (
                        kw.arg == "priority"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, int)
                    ):
                        priority = kw.value.value
                if len(spec.args) >= 2 and isinstance(spec.args[1], ast.Constant):
                    if isinstance(spec.args[1].value, int):
                        priority = spec.args[1].value
                table.rows[kind] = (priority, spec.lineno)
            return table
    return None


def _lookup_constant(
    graph: CallGraph,
    constants_by_module: dict[str, dict[str, str]],
    module: str,
    name: str,
    depth: int = 4,
) -> str | None:
    """Value of ``module.name``, chasing re-export chains a few hops."""
    value = constants_by_module.get(module, {}).get(name)
    if value is not None:
        return value
    if depth == 0:
        return None
    for mod in graph.modules.values():
        if mod.module != module:
            continue
        symbol = mod.import_symbols.get(name)
        if symbol is not None:
            sym_module, _, sym_name = symbol.rpartition(".")
            return _lookup_constant(
                graph, constants_by_module, sym_module, sym_name, depth - 1
            )
    return None


def _resolve_kind(
    graph: CallGraph,
    node: ast.AST,
    mod: ModuleInfo,
    constants_by_module: dict[str, dict[str, str]],
) -> tuple[str | None, bool]:
    """(kind string, was-literal) an expression denotes at a schedule site."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.Name):
        local = constants_by_module.get(mod.module, {}).get(node.id)
        if local is not None:
            return local, False
        symbol = mod.import_symbols.get(node.id)
        if symbol is not None:
            sym_module, _, sym_name = symbol.rpartition(".")
            value = _lookup_constant(
                graph, constants_by_module, sym_module, sym_name
            )
            if value is not None:
                return value, False
    if isinstance(node, ast.Attribute):
        chain = _attr_chain(node)
        if chain is not None and len(chain) >= 2:
            for module_constants in constants_by_module.values():
                if chain[-1] in module_constants:
                    return module_constants[chain[-1]], False
    return None, False


def _is_kernel_schedule(func: ast.Attribute) -> bool:
    """``<recv>.schedule(...)`` where the receiver names a kernel."""
    if func.attr != "schedule":
        return False
    chain = _attr_chain(func.value)
    if chain is None:
        return False
    return any("kernel" in part.lower() for part in chain)


def _priority_expr(call: ast.Call) -> ast.AST | None:
    """The priority argument of one schedule call, or None when omitted."""
    for kw in call.keywords:
        if kw.arg == "priority":
            return kw.value
    if len(call.args) >= 4:
        return call.args[3]
    return None


def check_protocol(graph: CallGraph, suppressions: object = None) -> list[Finding]:
    """REP105 findings over the whole program."""
    table = parse_event_table(graph)
    constants_by_module = {
        mod.module: _string_constants(mod) for mod in graph.modules.values()
    }
    out: list[Finding] = []

    schedule_sites: list[tuple[ModuleInfo, ast.Call]] = []
    subscribed_kinds: set[str] = set()
    for mod in graph.modules.values():
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            if _is_kernel_schedule(node.func) and len(node.args) >= 2:
                schedule_sites.append((mod, node))
            elif node.func.attr == "subscribe" and node.args:
                kind, _literal = _resolve_kind(
                    graph, node.args[0], mod, constants_by_module
                )
                if kind is not None:
                    subscribed_kinds.add(kind)

    if table is None:
        for mod, call in schedule_sites:
            out.append(
                Finding(
                    path=mod.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    code=PROTOCOL_CODE,
                    message=(
                        "kernel.schedule() call but no EVENT_TABLE found "
                        f"(expected a module ending in {_TABLE_PATH_SUFFIX!r})"
                    ),
                )
            )
        return sorted(out)

    for mod, call in schedule_sites:
        kind, was_literal = _resolve_kind(
            graph, call.args[1], mod, constants_by_module
        )
        if kind is None:
            continue  # dynamic kind expression; runtime contracts cover it
        if was_literal:
            out.append(
                Finding(
                    path=mod.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    code=PROTOCOL_CODE,
                    message=(
                        f"event kind scheduled as string literal {kind!r}; "
                        "use the constant from repro.sim.events"
                    ),
                )
            )
            continue
        expected = table.priority(kind)
        if expected is None:
            out.append(
                Finding(
                    path=mod.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    code=PROTOCOL_CODE,
                    message=(
                        f"event kind {kind!r} is not declared in EVENT_TABLE "
                        f"({table.path})"
                    ),
                )
            )
            continue
        prio = _priority_expr(call)
        actual: int | None = None
        consistent = False
        if prio is None:
            actual = 0
        elif isinstance(prio, ast.Constant) and isinstance(prio.value, int):
            actual = prio.value
        elif isinstance(prio, ast.Call):
            chain = _attr_chain(prio.func)
            if chain is not None and chain[-1] == "priority_of" and prio.args:
                arg_kind, _lit = _resolve_kind(
                    graph, prio.args[0], mod, constants_by_module
                )
                consistent = arg_kind == kind
        if not consistent and actual is not None and actual != expected:
            shown = "omitted (= 0)" if prio is None else str(actual)
            out.append(
                Finding(
                    path=mod.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    code=PROTOCOL_CODE,
                    message=(
                        f"event kind {kind!r} scheduled with priority {shown} "
                        f"but EVENT_TABLE declares {expected}; use "
                        "priority=priority_of(kind)"
                    ),
                )
            )

    for kind, (_priority, line) in sorted(table.rows.items()):
        if kind not in subscribed_kinds:
            out.append(
                Finding(
                    path=table.path,
                    line=line,
                    col=1,
                    code=PROTOCOL_CODE,
                    message=(
                        f"event kind {kind!r} is declared in EVENT_TABLE but "
                        "has no subscriber in the linted tree"
                    ),
                )
            )

    table_module = next(
        (m.module for m in graph.modules.values() if m.path == table.path), None
    )
    kernel_reexport = table_module.rsplit(".", 1)[0] + ".kernel" if table_module else ""
    for mod in graph.modules.values():
        if mod.path == table.path:
            continue
        for stmt in mod.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
                and stmt.value.value in table.rows
            ):
                continue
            out.append(
                Finding(
                    path=mod.path,
                    line=stmt.lineno,
                    col=stmt.col_offset + 1,
                    code=PROTOCOL_CODE,
                    message=(
                        f"event kind {stmt.value.value!r} redefined outside "
                        f"the central table ({table.path}); import it from "
                        f"{table_module or 'repro.sim.events'} or {kernel_reexport}"
                    ),
                )
            )
    return sorted(out)
