"""Whole-program call-graph construction for the deep lint tier.

The per-file checkers (REP001..REP008) see one module at a time; every
determinism bug this repo has shipped and later fixed crossed module
boundaries (the PR 3 landmark-adjacency order leak, the PR 6 clock
corruption).  This module builds the structure the cross-module
checkers (:mod:`.effects`, :mod:`.concurrency`, :mod:`.protocol`) walk:
a **module-qualified call graph** over every linted file.

Resolution is deliberately layered, most precise first:

1. **Direct names** — ``f(...)`` resolves to the module's own ``f`` or
   to the binding a ``from X import f`` / ``import X as m`` brought in.
2. **Typed attributes** — ``self._kernel.run(...)`` resolves through a
   per-class attribute-type table inferred from ``self.attr =
   ClassName(...)`` constructor assignments and from parameter
   annotations flowing into ``self.attr = param``.  This is what keeps
   ``Simulator._kernel.run`` from aliasing every ``run`` in the tree.
3. **Class-attribution heuristic** — ``self.m(...)`` binds to the
   enclosing class's ``m``, else to an ancestor's, and *additionally*
   to every project subclass override (a base-class template method
   calling an abstract hook reaches all implementations).
4. **CHA by name** — a call ``obj.m(...)`` with no better information
   links to every project *method* named ``m`` (never to module-level
   functions, and never for names on the builtin-collection blocklist
   such as ``get``/``append``/``items``, which would alias dict/list
   traffic onto project classes).

Two indirections that defeat syntactic resolution are modelled
explicitly because the dispatch path runs through them:

* the **scheme registry** — ``SCHEME_REGISTRY = {...SchemeInfo(...,
  factory)}``: callers of ``.factory(...)`` or ``make_scheme(...)``
  gain edges to every registered factory;
* **event subscriptions** — ``kernel.subscribe(KIND, handler)``
  registers ``handler`` for ``KIND``; every ``kernel.schedule(...,
  KIND, ...)`` site (and the kernel's own dispatch loop) gains edges to
  the subscribed handlers, so scheduling an event *reaches* its
  consequences in the graph.

The result over-approximates reachability (that is the point: the
effect contracts are "nothing effectful is reachable", so missing
edges would be unsound) while the typed layers keep the
over-approximation small enough for an empty baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "build_call_graph",
    "module_name_for",
]

#: Attribute names never resolved by CHA-by-name: they are endemic on
#: builtin collections and would alias every dict/list/set call onto
#: any project class that happens to define one.
_CHA_BLOCKLIST = frozenset(
    {
        "get", "items", "keys", "values", "append", "add", "pop", "update",
        "clear", "copy", "count", "index", "sort", "remove", "extend",
        "insert", "setdefault", "popitem", "discard", "join", "split",
        "strip", "read", "write", "close", "open", "format", "encode",
        "decode", "startswith", "endswith", "lower", "upper", "replace",
    }
)


def module_name_for(relpath: str) -> str:
    """Dotted module name of a linted file path.

    Anchored at the last ``repro/`` component when present (so
    ``src/repro/sim/engine.py`` and a fixture tree's
    ``repro/sim/engine.py`` agree); ``__init__.py`` maps to its
    package.
    """
    path = relpath.replace("\\", "/")
    marker = path.rfind("repro/")
    if marker >= 0:
        path = path[marker:]
    if path.endswith(".py"):
        path = path[:-3]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.strip("/").replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method definition in the linted tree."""

    qualname: str
    module: str
    path: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    lineno: int


@dataclass
class ModuleInfo:
    """One parsed module plus its import environment."""

    path: str
    module: str
    tree: ast.Module
    #: local name -> dotted module it aliases (``import x.y as z``).
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local name -> fully qualified imported symbol (``from m import f``).
    import_symbols: dict[str, str] = field(default_factory=dict)
    #: names assigned at module scope (the GLOBAL_MUTATION universe).
    module_globals: set[str] = field(default_factory=set)


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class CallGraph:
    """The program model every deep checker consumes."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname -> FunctionInfo for every def in the tree.
        self.functions: dict[str, FunctionInfo] = {}
        #: bare method name -> qualnames (methods only; CHA fallback).
        self.methods_by_name: dict[str, list[str]] = {}
        #: class qualname -> direct base-class *names* (unresolved).
        self.class_bases: dict[str, list[str]] = {}
        #: class bare name -> class qualnames.
        self.classes_by_name: dict[str, list[str]] = {}
        #: (class qualname, attr) -> class qualname of the attr's type.
        self.attr_types: dict[tuple[str, str], str] = {}
        #: caller qualname -> callee qualnames.
        self.edges: dict[str, set[str]] = {}
        #: event kind string -> subscribed handler qualnames.
        self.subscribers: dict[str, list[str]] = {}
        #: registry factory function qualnames (scheme indirection).
        self.registry_factories: list[str] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> set[str]:
        """Direct callees of one function (empty when unknown)."""
        return self.edges.get(qualname, set())

    def reachable(self, roots: list[str]) -> set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.edges.get(fn, ()))
        return seen

    def subclasses_of(self, class_name: str) -> set[str]:
        """Project classes inheriting (transitively) a class *name*."""
        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for cls, bases in self.class_bases.items():
                if cls in out:
                    continue
                for base in bases:
                    base_short = base.rsplit(".", 1)[-1]
                    if base_short == class_name or any(
                        parent.rsplit(".", 1)[-1] == base_short
                        for parent in out
                    ):
                        out.add(cls)
                        changed = True
                        break
        return out

    def methods_of(self, class_qual: str) -> dict[str, str]:
        """Bare method name -> qualname for one class's own defs."""
        prefix = class_qual + "."
        return {
            info.name: qual
            for qual, info in self.functions.items()
            if qual.startswith(prefix) and info.cls is not None
            and qual.count(".", len(prefix)) == 0
        }


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def build_call_graph(parsed: list[tuple[str, ast.Module]]) -> CallGraph:
    """Build the program model from ``[(relpath, tree), ...]``."""
    graph = CallGraph()
    for relpath, tree in parsed:
        _collect_module(graph, relpath, tree)
    for info in graph.modules.values():
        _collect_defs(graph, info)
    for info in graph.modules.values():
        _collect_attr_types(graph, info)
        _collect_registry(graph, info)
    for info in graph.modules.values():
        _collect_edges(graph, info)
    _wire_event_indirection(graph)
    return graph


def _collect_module(graph: CallGraph, relpath: str, tree: ast.Module) -> None:
    info = ModuleInfo(path=relpath, module=module_name_for(relpath), tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.import_modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            base = node.module
            if node.level:
                # Relative import: anchor inside the package of this module.
                pkg_parts = info.module.split(".")
                # level=1 strips the module leaf, deeper levels strip packages.
                anchor = pkg_parts[: len(pkg_parts) - node.level]
                base = ".".join(anchor + [node.module])
            for alias in node.names:
                info.import_symbols[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(node, ast.ImportFrom) and node.level and not node.module:
            pkg_parts = info.module.split(".")
            anchor = ".".join(pkg_parts[: len(pkg_parts) - node.level])
            for alias in node.names:
                info.import_modules[alias.asname or alias.name] = (
                    f"{anchor}.{alias.name}" if anchor else alias.name
                )
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.module_globals.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.module_globals.add(stmt.target.id)
    graph.modules[info.path] = info


def _collect_defs(graph: CallGraph, info: ModuleInfo) -> None:
    """Register every def/class with module-qualified names."""

    def visit(body: list[ast.stmt], scope: str, cls: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{scope}.{stmt.name}"
                fn = FunctionInfo(
                    qualname=qual,
                    module=info.module,
                    path=info.path,
                    name=stmt.name,
                    cls=cls,
                    node=stmt,
                    lineno=stmt.lineno,
                )
                graph.functions[qual] = fn
                if cls is not None:
                    graph.methods_by_name.setdefault(stmt.name, []).append(qual)
                visit(stmt.body, qual, None)
            elif isinstance(stmt, ast.ClassDef):
                cqual = f"{scope}.{stmt.name}"
                graph.class_bases[cqual] = [
                    chain[-1]
                    for base in stmt.bases
                    if (chain := _attr_chain(base)) is not None
                ]
                graph.classes_by_name.setdefault(stmt.name, []).append(cqual)
                visit(stmt.body, cqual, cqual)
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit(getattr(stmt, "body", []), scope, cls)
                visit(getattr(stmt, "orelse", []), scope, cls)

    visit(info.tree.body, info.module, None)


def _resolve_class_name(graph: CallGraph, info: ModuleInfo, name: str) -> str | None:
    """Class qualname a bare name refers to inside one module."""
    local = f"{info.module}.{name}"
    if local in graph.class_bases:
        return local
    symbol = info.import_symbols.get(name)
    if symbol is not None and symbol in graph.class_bases:
        return symbol
    candidates = graph.classes_by_name.get(name, [])
    if len(candidates) == 1:
        return candidates[0]
    return None


def _collect_attr_types(graph: CallGraph, info: ModuleInfo) -> None:
    """Infer ``self.attr`` types from constructor calls and annotations."""
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls_qual = None
        for qual in graph.classes_by_name.get(node.name, []):
            if graph.modules.get(info.path) and qual.startswith(info.module + "."):
                cls_qual = qual
                break
        if cls_qual is None:
            continue
        for fn in node.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            param_types: dict[str, str] = {}
            for arg in (
                list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
            ):
                ann = arg.annotation
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    try:
                        ann = ast.parse(ann.value, mode="eval").body
                    except SyntaxError:
                        ann = None
                if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
                    ann = ann.left  # X | None
                chain = _attr_chain(ann) if ann is not None else None
                if chain:
                    resolved = _resolve_class_name(graph, info, chain[-1])
                    if resolved is not None:
                        param_types[arg.arg] = resolved
            for sub in ast.walk(fn):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    value = sub.value
                    typed: str | None = None
                    if isinstance(value, ast.Call):
                        chain = _attr_chain(value.func)
                        if chain:
                            typed = _resolve_class_name(graph, info, chain[-1])
                    elif isinstance(value, ast.Name):
                        typed = param_types.get(value.id)
                    if typed is not None:
                        graph.attr_types.setdefault((cls_qual, target.attr), typed)


def _collect_registry(graph: CallGraph, info: ModuleInfo) -> None:
    """Record the scheme-registry factories (``SchemeInfo(..., factory)``)."""
    for node in ast.walk(info.tree):
        if not (
            isinstance(node, ast.Call)
            and _attr_chain(node.func) is not None
            and _attr_chain(node.func)[-1] == "SchemeInfo"
        ):
            continue
        factory: ast.AST | None = None
        if len(node.args) >= 3:
            factory = node.args[2]
        for kw in node.keywords:
            if kw.arg == "factory":
                factory = kw.value
        if isinstance(factory, ast.Name):
            qual = f"{info.module}.{factory.id}"
            if qual in graph.functions:
                graph.registry_factories.append(qual)
            else:
                symbol = info.import_symbols.get(factory.id)
                if symbol in graph.functions:
                    graph.registry_factories.append(symbol)


def _method_targets(graph: CallGraph, cls_qual: str, name: str) -> list[str]:
    """``self.name`` targets: own def, ancestors', and subclass overrides."""
    out: list[str] = []
    own = graph.methods_of(cls_qual).get(name)
    if own is not None:
        out.append(own)
    # Ancestors (by base-class name resolution).
    seen_classes = {cls_qual}
    frontier = [cls_qual]
    while frontier:
        current = frontier.pop()
        for base in graph.class_bases.get(current, []):
            for cand in graph.classes_by_name.get(base, []):
                if cand in seen_classes:
                    continue
                seen_classes.add(cand)
                frontier.append(cand)
                inherited = graph.methods_of(cand).get(name)
                if inherited is not None:
                    out.append(inherited)
    # Subclass overrides (virtual dispatch from a base-class template).
    short = cls_qual.rsplit(".", 1)[-1]
    for sub in sorted(graph.subclasses_of(short)):
        override = graph.methods_of(sub).get(name)
        if override is not None:
            out.append(override)
    return out


def _collect_edges(graph: CallGraph, info: ModuleInfo) -> None:
    """Resolve every call inside every function of one module."""
    for qual, fn in graph.functions.items():
        if fn.path != info.path:
            continue
        edges = graph.edges.setdefault(qual, set())
        # A nested def is effectively part of its parent's behaviour
        # (builders, callbacks): link parent -> child.
        for stmt in ast.walk(fn.node):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not fn.node
            ):
                nested = f"{qual}.{stmt.name}"
                if nested in graph.functions:
                    edges.add(nested)
        for call in _calls_in(fn.node):
            for target in _resolve_call(graph, info, fn, call):
                edges.add(target)


def _calls_in(fn: ast.AST) -> list[ast.Call]:
    """Every call expression lexically inside one function body."""
    return [node for node in ast.walk(fn) if isinstance(node, ast.Call)]


def _resolve_call(
    graph: CallGraph, info: ModuleInfo, fn: FunctionInfo, call: ast.Call
) -> list[str]:
    func = call.func
    # f(...) — module-local, imported symbol, or nested def.
    if isinstance(func, ast.Name):
        nested = f"{fn.qualname}.{func.id}"
        if nested in graph.functions:
            return [nested]
        if fn.cls is not None:
            sibling = f"{fn.cls}.{func.id}"
            if sibling in graph.functions:
                return [sibling]
        local = f"{info.module}.{func.id}"
        if local in graph.functions:
            return [local]
        symbol = info.import_symbols.get(func.id)
        if symbol is not None:
            if symbol in graph.functions:
                return [symbol]
            # ``from x import ClassName`` then ``ClassName(...)``: the
            # constructor call reaches ``ClassName.__init__``.
            init = f"{symbol}.__init__"
            if init in graph.functions:
                return [init]
        resolved_cls = _resolve_class_name(graph, info, func.id)
        if resolved_cls is not None:
            init = f"{resolved_cls}.__init__"
            if init in graph.functions:
                return [init]
        return []
    if not isinstance(func, ast.Attribute):
        return []
    attr = func.attr
    receiver = func.value
    # self.m(...) — class-attribution heuristic.
    if isinstance(receiver, ast.Name) and receiver.id == "self" and fn.cls is not None:
        targets = _method_targets(graph, fn.cls, attr)
        if targets:
            return targets
    # self.attr.m(...) — typed-attribute resolution.
    if (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
        and fn.cls is not None
    ):
        typed = graph.attr_types.get((fn.cls, receiver.attr))
        if typed is not None:
            targets = _method_targets(graph, typed, attr)
            if targets:
                return targets
    # module_alias.f(...) — imported module attribute.
    if isinstance(receiver, ast.Name):
        module = info.import_modules.get(receiver.id)
        if module is not None:
            qual = f"{module}.{attr}"
            if qual in graph.functions:
                return [qual]
            init = f"{qual}.__init__"
            if init in graph.functions:
                return [init]
            return []
    # CHA by name: every project *method* called ``attr``.
    if attr in _CHA_BLOCKLIST:
        return []
    return list(graph.methods_by_name.get(attr, []))


# ----------------------------------------------------------------------
# event-subscription indirection
# ----------------------------------------------------------------------
def _kind_string(graph: CallGraph, info: ModuleInfo, node: ast.AST) -> str | None:
    """The event-kind string an expression denotes, when decidable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        # Constants re-exported through repro.sim.events/kernel all
        # follow NAME = "kind" at module level somewhere in the tree.
        for mod in graph.modules.values():
            for stmt in mod.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == node.id
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    return stmt.value.value
    return None


def _wire_event_indirection(graph: CallGraph) -> None:
    """schedule(KIND) reaches every handler subscribe(KIND) registered."""
    # Pass 1: collect subscriptions.
    for info in graph.modules.values():
        for qual, fn in graph.functions.items():
            if fn.path != info.path:
                continue
            for call in _calls_in(fn.node):
                func = call.func
                if not (isinstance(func, ast.Attribute) and func.attr == "subscribe"):
                    continue
                if len(call.args) < 2:
                    continue
                kind = _kind_string(graph, info, call.args[0])
                if kind is None:
                    continue
                handler = call.args[1]
                targets: list[str] = []
                if (
                    isinstance(handler, ast.Attribute)
                    and isinstance(handler.value, ast.Name)
                    and handler.value.id == "self"
                    and fn.cls is not None
                ):
                    targets = _method_targets(graph, fn.cls, handler.attr)
                elif isinstance(handler, ast.Name):
                    local = f"{info.module}.{handler.id}"
                    if local in graph.functions:
                        targets = [local]
                for target in targets:
                    graph.subscribers.setdefault(kind, []).append(target)
    # Pass 2: edges from schedule sites (and the kernel dispatch loop).
    for info in graph.modules.values():
        for qual, fn in graph.functions.items():
            if fn.path != info.path:
                continue
            edges = graph.edges.setdefault(qual, set())
            for call in _calls_in(fn.node):
                func = call.func
                if not (isinstance(func, ast.Attribute) and func.attr == "schedule"):
                    continue
                if len(call.args) < 2:
                    continue
                kind = _kind_string(graph, info, call.args[1])
                if kind is None:
                    continue
                for handler in graph.subscribers.get(kind, []):
                    edges.add(handler)
            # The kernel's step() fires handlers for every kind.
            if fn.name == "step" and fn.cls is not None and fn.cls.endswith("Kernel"):
                for handlers in graph.subscribers.values():
                    edges.update(handlers)
    # Registry indirection: callers of .factory(...) / make_scheme(...).
    if graph.registry_factories:
        for info in graph.modules.values():
            for qual, fn in graph.functions.items():
                if fn.path != info.path:
                    continue
                for call in _calls_in(fn.node):
                    func = call.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None
                    )
                    if name in ("factory", "make_scheme"):
                        graph.edges.setdefault(qual, set()).update(
                            graph.registry_factories
                        )
