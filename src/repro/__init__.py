"""repro — a full reproduction of mT-Share (Liu et al., ICDE 2020 / IoT-J 2022).

mT-Share is a mobility-aware dynamic taxi-ridesharing system: it
indexes taxis and ride requests by map partitions mined from historical
mobility data and by travel-direction clusters, matches each request to
the minimum-detour taxi, and routes shared taxis either along shortest
paths or along probability-maximising routes that pick up *offline*
street-hailing passengers.

Quickstart::

    from repro import ScenarioSpec, Simulator, get_scenario

    scenario = get_scenario(ScenarioSpec(kind="peak", hourly_requests=300))
    scheme = scenario.make_scheme("mt-share")
    sim = Simulator(scheme, scenario.make_fleet(50), scenario.requests())
    print(sim.run().summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from .config import SystemConfig
from .core import (
    FareSchedule,
    Matcher,
    MatchResult,
    MobilityClusterIndex,
    MobilityVector,
    MTShare,
    PartitionFilter,
    PaymentModel,
)
from .baselines import DispatchScheme, NoSharing, PGreedyDP, TShare
from .demand import ChengduLikeDemand, RideRequest, TripDataset
from .fleet import Taxi, TaxiRoute
from .network import (
    LandmarkGraph,
    RoadNetwork,
    ShortestPathEngine,
    grid_city,
    ring_radial_city,
)
from .partitioning import MapPartitioning, bipartite_partition, grid_partition
from .sim import (
    Scenario,
    ScenarioSpec,
    SimulationMetrics,
    Simulator,
    get_scenario,
    nonpeak_spec,
    peak_spec,
)

__version__ = "1.0.0"

__all__ = [
    "ChengduLikeDemand",
    "DispatchScheme",
    "FareSchedule",
    "LandmarkGraph",
    "MTShare",
    "MapPartitioning",
    "MatchResult",
    "Matcher",
    "MobilityClusterIndex",
    "MobilityVector",
    "NoSharing",
    "PGreedyDP",
    "PartitionFilter",
    "PaymentModel",
    "RideRequest",
    "RoadNetwork",
    "Scenario",
    "ScenarioSpec",
    "ShortestPathEngine",
    "SimulationMetrics",
    "Simulator",
    "SystemConfig",
    "TShare",
    "Taxi",
    "TaxiRoute",
    "TripDataset",
    "bipartite_partition",
    "get_scenario",
    "grid_city",
    "grid_partition",
    "nonpeak_spec",
    "peak_spec",
    "ring_radial_city",
    "__version__",
]
