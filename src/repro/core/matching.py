"""Passenger-taxi matching: candidate searching and taxi scheduling.

This implements Section IV-C of the paper.  For a request ``r_i``:

* **Candidate taxi searching** intersects two index views (Eq. 3): the
  taxis in (or soon arriving at) the map partitions overlapping the
  searching disc around ``o_{r_i}``, and the taxis of the mobility
  clusters aligned with ``r_i``'s travel direction.  Empty taxis inside
  the disc are added, then taxis with no spare capacity and taxis that
  cannot reach the pick-up before its deadline are filtered out.
* **Taxi scheduling** (Algorithm 1) enumerates every insertion of the
  pick-up/drop-off pair into each candidate's existing stop sequence,
  keeps the feasible instances, and picks the one with the minimum
  detour cost ``omega = cost(R') - cost(R)`` (Eq. 4).

Schedule instances are evaluated with O(1) cached shortest-path costs
(the paper's stated assumption); the concrete route of each candidate's
best instance is then planned by the configured router — basic or
probabilistic — and the final winner is chosen by *actual* route
detour, so probabilistic detours are fully accounted for.  Routes are
planned lazily in ascending estimated-detour order: since a planned
route can never undercut its own shortest-path estimate, planning stops
once the next estimate cannot beat the best actual detour found (and,
as a hard bound, after ``config.match_planning_cutoff`` successfully
planned candidates once a winner exists).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..demand.request import RideRequest
from ..fleet.schedule import Stop, arrival_times, capacity_ok, deadlines_met, enumerate_insertions
from ..fleet.taxi import Taxi, TaxiRoute
from ..index.partition_index import PartitionTaxiIndex
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.shortest_path import ShortestPathEngine
from ..obs import NULL, Instrumentation
from .mobility_cluster import MobilityClusterIndex, MobilityVector
from .routing import BasicRouter, RouteInfeasible


@dataclass(frozen=True, slots=True)
class MatchResult:
    """A successful passenger-taxi match ready to install on the taxi."""

    taxi_id: int
    stops: tuple[Stop, ...]
    route: TaxiRoute
    detour_cost: float
    num_candidates: int
    probabilistic: bool = False


def request_vector(network: RoadNetwork, request: RideRequest) -> MobilityVector:
    """Mobility vector of a request: origin point to destination point."""
    ox, oy = network.xy[request.origin]
    dx, dy = network.xy[request.destination]
    return MobilityVector(float(ox), float(oy), float(dx), float(dy))


def taxi_vector(network: RoadNetwork, taxi: Taxi, now: float) -> MobilityVector | None:
    """Mobility vector of a busy taxi (Section IV-B2).

    Points from the taxi's current position to the centroid of the
    destinations of every passenger it is committed to (onboard and
    assigned).  ``None`` for an empty, unassigned taxi — the paper does
    not cluster empty taxis because they have no travel destination.
    """
    requests = list(taxi.onboard.values()) + list(taxi.assigned.values())
    if not requests:
        return None
    node, _t = taxi.position_at(now)
    ox, oy = network.xy[node]
    xs = 0.0
    ys = 0.0
    for r in requests:
        px, py = network.xy[r.destination]
        xs += float(px)
        ys += float(py)
    n = len(requests)
    return MobilityVector(float(ox), float(oy), xs / n, ys / n)


class Matcher:
    """Candidate searching plus minimum-detour scheduling for mT-Share.

    Parameters
    ----------
    network, engine:
        Road network and cached shortest-path engine.
    landmark_graph:
        Partition geometry used to map the searching disc to partitions.
    partition_index:
        ``P_z.L_t`` lists with taxi arrival times.
    cluster_index:
        Mobility clusters with their taxi lists ``C_a.L_t``.
    config:
        System parameters (``gamma``, ``lambda``, capacity, ...).
    basic_router:
        Router used to build concrete routes for non-probabilistic
        matches.
    probabilistic_router:
        Router used when a match should seek offline requests; optional.
    """

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        landmark_graph: LandmarkGraph,
        partition_index: PartitionTaxiIndex,
        cluster_index: MobilityClusterIndex,
        config: SystemConfig,
        basic_router: BasicRouter,
        probabilistic_router: BasicRouter | None = None,
    ) -> None:
        self._network = network
        self._engine = engine
        self._lg = landmark_graph
        self._pindex = partition_index
        self._cindex = cluster_index
        self._config = config
        self._basic = basic_router
        self._prob = probabilistic_router
        self._obs: Instrumentation = NULL

    def instrument(self, obs: Instrumentation) -> None:
        """Attach an observability registry (``repro.obs``)."""
        self._obs = obs

    # ------------------------------------------------------------------
    # candidate searching
    # ------------------------------------------------------------------
    def candidate_taxis(
        self,
        request: RideRequest,
        fleet: dict[int, Taxi],
        now: float,
    ) -> list[Taxi]:
        """The refined candidate set ``T_{r_i}`` (Eq. 3 plus the 3 rules)."""
        if self._config.mtshare_adaptive_gamma:
            # Eq. 2: the searching range is exactly the reachability
            # radius of the request's waiting budget, so inbound taxis
            # beyond any static range (Fig. 1's taxi t3) are visible.
            gamma = max(0.0, request.max_wait) * self._config.speed_mps
        else:
            gamma = self._config.gamma_for_wait(request.max_wait)
        ox, oy = self._network.xy[request.origin]
        disc_partitions = self._lg.partitions_intersecting_disc(float(ox), float(oy), gamma)
        pool = self._pindex.union_taxis(disc_partitions)
        if not pool:
            return []

        vec = request_vector(self._network, request)
        aligned = self._cindex.aligned_taxis(vec)

        origin_partition = self._lg.partition_of(request.origin)
        candidates: list[Taxi] = []
        for taxi_id in pool:
            taxi = fleet.get(taxi_id)
            if taxi is None:
                continue
            # Rule 1: empty taxis in the disc partitions always qualify.
            # Busy taxis must travel the request's way: either their
            # mobility cluster is aligned, or — since clusters assign
            # each taxi to a single best cluster and can therefore miss
            # borderline cases — their own mobility vector is.
            if not taxi.idle and taxi_id not in aligned:
                tv = self._cindex.taxi_vector(taxi_id)
                if tv is None or vec.similarity(tv) < self._cindex.lam:
                    continue
            # Rule 2: no idle capacity -> out.
            if taxi.committed + request.num_passengers > taxi.capacity:
                continue
            # Rule 3: must reach the pick-up before its deadline.  The
            # indexed route arrival admits quickly; when it is absent or
            # late the exact O(1) shortest-path bound decides (a taxi
            # whose planned route arrives late can still divert).
            arrival = self._pindex.arrival_time(origin_partition, taxi_id)
            if arrival is None or arrival > request.pickup_deadline:
                node, ready = taxi.position_at(now)
                arrival = ready + self._engine.cost(node, request.origin)
            if arrival > request.pickup_deadline:
                continue
            candidates.append(taxi)
        return candidates

    # ------------------------------------------------------------------
    # taxi scheduling (Algorithm 1)
    # ------------------------------------------------------------------
    def _best_insertion(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> tuple[float, list[Stop]] | None:
        """Minimum-detour feasible insertion for one taxi, by O(1) costs.

        Returns ``(detour_cost, stops)`` or ``None`` when no instance is
        feasible.
        """
        node, ready = taxi.position_at(now)
        pending = taxi.pending_stops()
        current_cost = taxi.remaining_route_cost(ready)
        onboard = taxi.occupancy
        cost_fn = self._engine.cost

        best: tuple[float, list[Stop]] | None = None
        evaluated = 0
        for _i, _j, stops in enumerate_insertions(pending, request):
            evaluated += 1
            if not capacity_ok(stops, onboard, taxi.capacity):
                continue
            times = arrival_times(node, ready, stops, cost_fn)
            if not deadlines_met(stops, times):
                continue
            detour = (times[-1] - ready) - current_cost
            if best is None or detour < best[0]:
                best = (detour, stops)
        # One bulk counter update per candidate, not per instance.
        self._obs.count("match.insertions_evaluated", evaluated)
        return best

    def _should_go_probabilistic(self, taxi: Taxi, request: RideRequest) -> bool:
        """Whether this match should plan a probability-seeking route.

        Requires a probabilistic router and enough idle seats after the
        new passengers board (the paper: at least half the capacity).
        """
        if self._prob is None:
            return False
        idle_after = taxi.capacity - taxi.committed - request.num_passengers
        return idle_after >= taxi.capacity * self._config.probabilistic_idle_seats

    def match(
        self,
        request: RideRequest,
        fleet: dict[int, Taxi],
        now: float,
    ) -> MatchResult | None:
        """Full Algorithm 1: search candidates, pick the min-detour taxi.

        Returns ``None`` when no taxi can feasibly serve the request.
        """
        obs = self._obs
        with obs.stage("match.candidates"):
            candidates = self.candidate_taxis(request, fleet, now)
        obs.count("match.candidates_found", len(candidates))
        if not candidates:
            return None

        # Evaluate every candidate's best insertion with O(1) cached
        # costs.
        with obs.stage("match.insertion"):
            scored: list[tuple[float, Taxi, list[Stop]]] = []
            for taxi in candidates:
                best = self._best_insertion(taxi, request, now)
                if best is not None:
                    scored.append((best[0], taxi, best[1]))
            scored.sort(key=lambda item: (item[0], item[1].taxi_id))

        # Plan concrete routes lazily in estimated-detour order and keep
        # the minimum *actual* route detour.  A planned route's legs are
        # at best shortest paths, so actual >= estimate per candidate:
        # once the next estimate cannot beat the incumbent's actual
        # detour, no later candidate can win and planning stops.  The
        # configured cutoff additionally bounds how many successfully
        # planned candidates are examined after a winner exists.
        cutoff = self._config.match_planning_cutoff
        best_result: MatchResult | None = None
        planned = 0
        with obs.stage("match.planning"):
            for est_detour, taxi, stops in scored:
                if best_result is not None and (
                    est_detour >= best_result.detour_cost - 1e-9 or planned >= cutoff
                ):
                    break
                node, ready = taxi.position_at(now)
                use_prob = self._should_go_probabilistic(taxi, request)
                route = None
                if use_prob:
                    vec = taxi_vector_with(self._network, taxi, request, now)
                    try:
                        route = self._prob.route_for_schedule(
                            node, ready, stops, taxi_vector=vec
                        )
                    except RouteInfeasible:
                        use_prob = False
                if route is None:
                    try:
                        route = self._basic.route_for_schedule(node, ready, stops)
                        use_prob = False
                    except RouteInfeasible:
                        continue
                planned += 1
                actual_detour = route.total_cost() - taxi.remaining_route_cost(ready)
                if best_result is None or actual_detour < best_result.detour_cost:
                    best_result = MatchResult(
                        taxi_id=taxi.taxi_id,
                        stops=tuple(stops),
                        route=route,
                        detour_cost=actual_detour,
                        num_candidates=len(candidates),
                        probabilistic=use_prob,
                    )
        obs.count("match.routes_planned", planned)
        return best_result

    def insertion_for_taxi(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> MatchResult | None:
        """Feasible min-detour insertion into one specific taxi.

        Used when a taxi *encounters* an offline request on the street:
        only this taxi's schedule is examined (Section IV-C2).
        """
        if taxi.committed + request.num_passengers > taxi.capacity:
            return None
        best = self._best_insertion(taxi, request, now)
        if best is None:
            return None
        _detour, stops = best
        node, ready = taxi.position_at(now)
        try:
            route = self._basic.route_for_schedule(node, ready, stops)
        except RouteInfeasible:
            return None
        return MatchResult(
            taxi_id=taxi.taxi_id,
            stops=tuple(stops),
            route=route,
            detour_cost=route.total_cost() - taxi.remaining_route_cost(ready),
            num_candidates=1,
        )


def taxi_vector_with(
    network: RoadNetwork,
    taxi: Taxi,
    request: RideRequest,
    now: float,
) -> MobilityVector:
    """Taxi mobility vector *after* hypothetically accepting ``request``.

    Probabilistic routing plans for the taxi's direction including the
    new passenger's destination.
    """
    node, _t = taxi.position_at(now)
    ox, oy = network.xy[node]
    dests = [r.destination for r in taxi.onboard.values()]
    dests += [r.destination for r in taxi.assigned.values()]
    dests.append(request.destination)
    xs = sum(float(network.xy[d][0]) for d in dests)
    ys = sum(float(network.xy[d][1]) for d in dests)
    n = len(dests)
    return MobilityVector(float(ox), float(oy), xs / n, ys / n)
