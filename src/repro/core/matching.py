"""Passenger-taxi matching: candidate searching and taxi scheduling.

This implements Section IV-C of the paper.  For a request ``r_i``:

* **Candidate taxi searching** intersects two index views (Eq. 3): the
  taxis in (or soon arriving at) the map partitions overlapping the
  searching disc around ``o_{r_i}``, and the taxis of the mobility
  clusters aligned with ``r_i``'s travel direction.  Empty taxis inside
  the disc are added, then taxis with no spare capacity and taxis that
  cannot reach the pick-up before its deadline are filtered out.
* **Taxi scheduling** (Algorithm 1) enumerates every insertion of the
  pick-up/drop-off pair into each candidate's existing stop sequence,
  keeps the feasible instances, and picks the one with the minimum
  detour cost ``omega = cost(R') - cost(R)`` (Eq. 4).

Schedule instances are evaluated with O(1) cached shortest-path costs
(the paper's stated assumption); the concrete route of each candidate's
best instance is then planned by the configured router — basic or
probabilistic — and the final winner is chosen by *actual* route
detour, so probabilistic detours are fully accounted for.  Routes are
planned lazily in ascending estimated-detour order: since a planned
route can never undercut its own shortest-path estimate, planning stops
once the next estimate cannot beat the best actual detour found (and,
as a hard bound, after ``config.match_planning_cutoff`` successfully
planned candidates once a winner exists).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import partial

import numpy as np

from ..config import SystemConfig
from ..demand.request import RideRequest
from ..fleet.schedule import (
    Stop,
    arrival_times,
    capacity_ok,
    deadlines_met,
    enumerate_insertions,
    evaluate_insertions,
    evaluate_insertions_grouped,
    materialize_insertion,
    score_insertions_tight,
)
from ..fleet.taxi import Taxi, TaxiRoute
from ..index.partition_index import PartitionTaxiIndex
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.shortest_path import ShortestPathEngine
from ..obs import NULL, Instrumentation
from .mobility_cluster import (
    ZERO_UNIT,
    MobilityClusterIndex,
    MobilityVector,
    direction_unit,
)
from .routing import BasicRouter, RouteInfeasible

#: Total insertion instances below which a dispatch is scored with the
#: tight scalar distance-row walk instead of the grouped array kernels.
#: numpy's fixed per-call dispatch cost dominates under roughly a
#: hundred instances (see docs/PERFORMANCE.md); both paths produce the
#: scalar reference's decisions bit for bit.
TIGHT_INSERTION_MAX = 96


@dataclass(frozen=True, slots=True)
class MatchResult:
    """A successful passenger-taxi match ready to install on the taxi."""

    taxi_id: int
    stops: tuple[Stop, ...]
    route: TaxiRoute
    detour_cost: float
    num_candidates: int
    probabilistic: bool = False


def request_vector(network: RoadNetwork, request: RideRequest) -> MobilityVector:
    """Mobility vector of a request: origin point to destination point."""
    ox, oy = network.xy[request.origin]
    dx, dy = network.xy[request.destination]
    return MobilityVector(float(ox), float(oy), float(dx), float(dy))


def taxi_vector(network: RoadNetwork, taxi: Taxi, now: float) -> MobilityVector | None:
    """Mobility vector of a busy taxi (Section IV-B2).

    Points from the taxi's current position to the centroid of the
    destinations of every passenger it is committed to (onboard and
    assigned).  ``None`` for an empty, unassigned taxi — the paper does
    not cluster empty taxis because they have no travel destination.
    """
    requests = list(taxi.onboard.values()) + list(taxi.assigned.values())
    if not requests:
        return None
    node, _t = taxi.position_at(now)
    ox, oy = network.xy[node]
    xs = 0.0
    ys = 0.0
    for r in requests:
        px, py = network.xy[r.destination]
        xs += float(px)
        ys += float(py)
    n = len(requests)
    return MobilityVector(float(ox), float(oy), xs / n, ys / n)


class Matcher:
    """Candidate searching plus minimum-detour scheduling for mT-Share.

    Parameters
    ----------
    network, engine:
        Road network and cached shortest-path engine.
    landmark_graph:
        Partition geometry used to map the searching disc to partitions.
    partition_index:
        ``P_z.L_t`` lists with taxi arrival times.
    cluster_index:
        Mobility clusters with their taxi lists ``C_a.L_t``.
    config:
        System parameters (``gamma``, ``lambda``, capacity, ...).
    basic_router:
        Router used to build concrete routes for non-probabilistic
        matches.
    probabilistic_router:
        Router used when a match should seek offline requests; optional.
    """

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        landmark_graph: LandmarkGraph,
        partition_index: PartitionTaxiIndex,
        cluster_index: MobilityClusterIndex,
        config: SystemConfig,
        basic_router: BasicRouter,
        probabilistic_router: BasicRouter | None = None,
    ) -> None:
        self._network = network
        self._engine = engine
        self._lg = landmark_graph
        self._pindex = partition_index
        self._cindex = cluster_index
        self._config = config
        self._basic = basic_router
        self._prob = probabilistic_router
        self._obs: Instrumentation = NULL

    def instrument(self, obs: Instrumentation) -> None:
        """Attach an observability registry (``repro.obs``)."""
        self._obs = obs

    # ------------------------------------------------------------------
    # candidate searching
    # ------------------------------------------------------------------
    def candidate_taxis(
        self,
        request: RideRequest,
        fleet: dict[int, Taxi],
        now: float,
    ) -> list[Taxi]:
        """The refined candidate set ``T_{r_i}`` (Eq. 3 plus the 3 rules)."""
        if self._config.mtshare_adaptive_gamma:
            # Eq. 2: the searching range is exactly the reachability
            # radius of the request's waiting budget, so inbound taxis
            # beyond any static range (Fig. 1's taxi t3) are visible.
            gamma = max(0.0, request.max_wait) * self._config.speed_mps
        else:
            gamma = self._config.gamma_for_wait(request.max_wait)
        ox, oy = self._network.xy[request.origin]
        disc_partitions = self._lg.partitions_intersecting_disc(float(ox), float(oy), gamma)
        pool = self._pindex.union_taxis(disc_partitions)
        if not pool:
            return []

        cindex = self._cindex
        lam = cindex.lam
        vec = request_vector(self._network, request)
        # Request-side normalised direction, shared by every per-taxi
        # similarity fallback below.
        req_unit = direction_unit(*vec.direction)
        # A taxi belongs to the aligned-taxi union exactly when its one
        # cluster is a matching cluster, so membership is a dict + set
        # probe — no per-dispatch union materialisation.
        matching_cids = set(cindex.matching_clusters(vec))
        cluster_of_taxi = cindex.cluster_of_taxi
        taxi_unit = cindex.taxi_unit

        origin = request.origin
        origin_partition = self._lg.partition_of(origin)
        pickup_deadline = request.pickup_deadline
        n_pass = request.num_passengers
        arrival_get = self._pindex.arrival_map(origin_partition).get
        fleet_get = fleet.get
        # Full mode answers the exact Rule-3 reachability bound with
        # single reads of the distance column into the pick-up vertex;
        # lazy mode defers the affected taxis to one batched
        # cost-matrix query at the end.
        col = self._engine.dist_col(origin)
        speed = self._network.speed_mps

        screened: list[Taxi] = []
        exact_rows: list[int] = []
        exact_ready: list[float] = []
        exact_nodes: list[int] = []
        exact_checks = 0
        for taxi_id in pool:
            taxi = fleet_get(taxi_id)
            if taxi is None:
                continue
            # Rule 2: no idle capacity -> out.  (Checked first: it is
            # one integer compare, the direction rules cost float math;
            # the rules are independent filters so the surviving set is
            # the same in any order.)
            if taxi.committed + n_pass > taxi.capacity:
                continue
            # Rule 1: empty taxis in the disc partitions always qualify.
            # Busy taxis must travel the request's way: either their
            # mobility cluster is aligned, or — since clusters assign
            # each taxi to a single best cluster and can therefore miss
            # borderline cases — their own mobility vector is.  (This
            # stays scalar on purpose: a dispatch sees ~15 misaligned
            # taxis, below the break-even size of the array kernel; the
            # taxi-side normalised components come precomputed from the
            # cluster index.)
            if taxi.schedule and cluster_of_taxi(taxi_id) not in matching_cids:
                unit = taxi_unit(taxi_id)
                if unit is None:
                    continue
                if unit is not ZERO_UNIT and req_unit is not ZERO_UNIT:
                    # Inline ``unit_similarity`` (bit-identical to
                    # ``vec.similarity(taxi_vector)``; the dot product
                    # commutes multiplication-wise).
                    value = (unit[0] * req_unit[0] + unit[1] * req_unit[1]) / (
                        unit[2] * req_unit[2]
                    )
                    if max(-1.0, min(1.0, value)) < lam:
                        continue
            # Rule 3: must reach the pick-up before its deadline.  The
            # indexed route arrival admits quickly; taxis it cannot
            # admit get the exact shortest-path bound (a taxi whose
            # planned route arrives late can still divert).
            arrival = arrival_get(taxi_id)
            if arrival is None or arrival > pickup_deadline:
                node, ready = taxi.position_at(now)
                if col is not None:
                    exact_checks += 1
                    if ready + col.item(node) / speed > pickup_deadline:
                        continue
                else:
                    exact_rows.append(len(screened))
                    exact_nodes.append(node)
                    exact_ready.append(ready)
            screened.append(taxi)

        if exact_checks:
            self._obs.count("kernel.batched_reach_checks", exact_checks)
        if not exact_rows:
            return screened
        # Lazy mode: exact bounds for every deferred taxi in one
        # cost-matrix slice instead of one engine query per taxi.
        self._obs.count("kernel.batched_reach_checks", len(exact_rows))
        costs = self._engine.cost_matrix(exact_nodes, [origin])[:, 0]
        arrivals = np.asarray(exact_ready) + costs
        late: set[int] = set()
        for row, arrival in zip(exact_rows, arrivals):
            if arrival > pickup_deadline:
                late.add(row)
        return [taxi for row, taxi in enumerate(screened) if row not in late]

    # ------------------------------------------------------------------
    # taxi scheduling (Algorithm 1)
    # ------------------------------------------------------------------
    def _score_candidates(
        self,
        candidates: list[Taxi],
        request: RideRequest,
        now: float,
    ) -> list[tuple[float, Taxi, Callable[[], list[Stop]]]]:
        """Best feasible insertion per candidate, for the whole dispatch.

        Returns ``(detour, taxi, build_stops)`` triples sorted by
        detour (taxi id breaking ties); ``build_stops()`` materialises
        the winning stop list, so only the few candidates that reach
        route planning pay for it.  Small dispatches are scored with
        the tight distance-row walk, large ones with the grouped array
        kernels — detours, feasibility and the per-taxi winning
        instance are bit-identical either way to calling
        :meth:`_best_insertion` (and therefore the scalar reference)
        taxi by taxi.
        """
        items: list[tuple[Taxi, int, float, list[Stop]]] = []
        total = 0
        for taxi in candidates:
            node, ready = taxi.position_at(now)
            pending = taxi.pending_stops()
            m = len(pending)
            total += (m + 1) * (m + 2) // 2
            items.append((taxi, node, ready, pending))
        if total <= TIGHT_INSERTION_MAX:
            scored = self._score_tight(items, request)
        else:
            scored = self._score_grouped(items, request)
        self._obs.count("match.insertions_evaluated", total)
        scored.sort(key=lambda item: (item[0], item[1].taxi_id))
        return scored

    def _score_tight(
        self,
        items: list[tuple[Taxi, int, float, list[Stop]]],
        request: RideRequest,
    ) -> list[tuple[float, Taxi, Callable[[], list[Stop]]]]:
        """Small-dispatch scorer: one tight distance-row walk over the
        whole candidate set (rows and the request's stop pair are shared
        across candidates inside :func:`score_insertions_tight`)."""
        starts = [
            (node, ready, pending, taxi.occupancy, taxi.capacity)
            for taxi, node, ready, pending in items
        ]
        scored: list[tuple[float, Taxi, Callable[[], list[Stop]]]] = []
        for idx, last, i, j in score_insertions_tight(self._engine, starts, request):
            taxi, _node, ready, pending = items[idx]
            detour = (last - ready) - taxi.remaining_route_cost(ready)
            scored.append((detour, taxi, partial(materialize_insertion, pending, request, i, j)))
        self._obs.count("kernel.tight_dispatches", 1)
        return scored

    def _score_grouped(
        self,
        items: list[tuple[Taxi, int, float, list[Stop]]],
        request: RideRequest,
    ) -> list[tuple[float, Taxi, Callable[[], list[Stop]]]]:
        """Large-dispatch scorer: candidates grouped by pending-stop
        count, one :func:`evaluate_insertions_grouped` kernel each."""
        groups: dict[int, list[tuple[Taxi, int, float, list[Stop]]]] = {}
        for item in items:
            groups.setdefault(len(item[3]), []).append(item)
        scored: list[tuple[float, Taxi, Callable[[], list[Stop]]]] = []
        for group in groups.values():
            batch = evaluate_insertions_grouped(
                self._engine,
                [g[1] for g in group],
                [g[2] for g in group],
                [g[3] for g in group],
                request,
                [g[0].occupancy for g in group],
                [g[0].capacity for g in group],
            )
            # First minimum among the feasible instances, per taxi —
            # the scalar loop's strict-improvement tie handling.
            masked = np.where(batch.feasible, batch.last_arrival, np.inf)
            winners = np.argmin(masked, axis=1)
            for t, (taxi, _node, ready, _pending) in enumerate(group):
                k = int(winners[t])
                if not batch.feasible[t, k]:
                    continue
                detour = (float(batch.last_arrival[t, k]) - ready) - taxi.remaining_route_cost(
                    ready
                )
                scored.append((detour, taxi, partial(batch.stops_for, t, k)))
        self._obs.count("kernel.batched_insertions", len(groups))
        return scored

    def score_insertions_for(
        self,
        items: list[tuple[Taxi, int, float, list[Stop]]],
        request: RideRequest,
    ) -> list[tuple[float, Taxi, Callable[[], list[Stop]]]]:
        """Grouped-kernel detour scoring over pre-gathered candidate states.

        ``items`` holds ``(taxi, position_node, ready_time, pending_stops)``
        tuples — the caller gathers them once and may share them across
        several scoring calls (the window cost-matrix builder gathers
        each taxi's state once per dispatch window).  Small sets take
        the tight distance-row walk, large ones the grouped array
        kernels — the same split as :meth:`_score_candidates`, and by
        the same kernel invariants detours, feasibility and per-taxi
        winning instances are bit-identical to the scalar reference
        either way.
        """
        total = sum((len(p) + 1) * (len(p) + 2) // 2 for _, _, _, p in items)
        if total <= TIGHT_INSERTION_MAX:
            return self._score_tight(items, request)
        return self._score_grouped(items, request)

    def _best_insertion(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> tuple[float, list[Stop]] | None:
        """Minimum-detour feasible insertion for one taxi, by O(1) costs.

        Evaluates every insertion position at once with the batched
        array kernel (:func:`~repro.fleet.schedule.evaluate_insertions`);
        bit-identical to :meth:`_best_insertion_scalar`, the retained
        reference implementation.  Returns ``(detour_cost, stops)`` or
        ``None`` when no instance is feasible.
        """
        node, ready = taxi.position_at(now)
        pending = taxi.pending_stops()
        current_cost = taxi.remaining_route_cost(ready)

        batch = evaluate_insertions(
            self._engine, node, ready, pending, request, taxi.occupancy, taxi.capacity
        )
        # One bulk counter update per candidate, not per instance.
        self._obs.count("match.insertions_evaluated", batch.size)
        self._obs.count("kernel.batched_insertions", 1)
        feasible = np.flatnonzero(batch.feasible)
        if feasible.size == 0:
            return None
        detours = (batch.last_arrival[feasible] - ready) - current_cost
        # argmin keeps the first minimum, matching the scalar loop's
        # strict-improvement tie handling over the same instance order.
        k = int(feasible[np.argmin(detours)])
        detour = (batch.last_arrival[k] - ready) - current_cost
        return float(detour), batch.stops_for(k)

    def _best_insertion_scalar(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> tuple[float, list[Stop]] | None:
        """Scalar reference for :meth:`_best_insertion` (kernel tests
        diff the two; the batched path is the production one)."""
        node, ready = taxi.position_at(now)
        pending = taxi.pending_stops()
        current_cost = taxi.remaining_route_cost(ready)
        onboard = taxi.occupancy
        cost_fn = self._engine.cost

        best: tuple[float, list[Stop]] | None = None
        evaluated = 0
        for _i, _j, stops in enumerate_insertions(pending, request):
            evaluated += 1
            if not capacity_ok(stops, onboard, taxi.capacity):
                continue
            times = arrival_times(node, ready, stops, cost_fn)
            if not deadlines_met(stops, times):
                continue
            detour = (times[-1] - ready) - current_cost
            if best is None or detour < best[0]:
                best = (detour, stops)
        self._obs.count("match.insertions_evaluated", evaluated)
        return best

    def _should_go_probabilistic(self, taxi: Taxi, request: RideRequest) -> bool:
        """Whether this match should plan a probability-seeking route.

        Requires a probabilistic router and enough idle seats after the
        new passengers board (the paper: at least half the capacity).
        """
        if self._prob is None:
            return False
        idle_after = taxi.capacity - taxi.committed - request.num_passengers
        return idle_after >= taxi.capacity * self._config.probabilistic_idle_seats

    def match(
        self,
        request: RideRequest,
        fleet: dict[int, Taxi],
        now: float,
    ) -> MatchResult | None:
        """Full Algorithm 1: search candidates, pick the min-detour taxi.

        Returns ``None`` when no taxi can feasibly serve the request.
        """
        obs = self._obs
        with obs.stage("match.candidates"):
            candidates = self.candidate_taxis(request, fleet, now)
        obs.count("match.candidates_found", len(candidates))
        if not candidates:
            return None

        # Evaluate every candidate's best insertion with O(1) cached
        # costs, batched across the whole candidate set.
        with obs.stage("match.insertion"):
            scored = self._score_candidates(candidates, request, now)

        # Plan concrete routes lazily in estimated-detour order and keep
        # the minimum *actual* route detour.  A planned route's legs are
        # at best shortest paths, so actual >= estimate per candidate:
        # once the next estimate cannot beat the incumbent's actual
        # detour, no later candidate can win and planning stops.  The
        # configured cutoff additionally bounds how many successfully
        # planned candidates are examined after a winner exists.
        cutoff = self._config.match_planning_cutoff
        best_result: MatchResult | None = None
        planned = 0
        with obs.stage("match.planning"):
            for est_detour, taxi, build_stops in scored:
                if best_result is not None and (
                    est_detour >= best_result.detour_cost - 1e-9 or planned >= cutoff
                ):
                    break
                stops = build_stops()
                node, ready = taxi.position_at(now)
                use_prob = self._should_go_probabilistic(taxi, request)
                route = None
                if use_prob:
                    vec = taxi_vector_with(self._network, taxi, request, now)
                    try:
                        route = self._prob.route_for_schedule(
                            node, ready, stops, taxi_vector=vec
                        )
                    except RouteInfeasible:
                        use_prob = False
                if route is None:
                    try:
                        route = self._basic.route_for_schedule(node, ready, stops)
                        use_prob = False
                    except RouteInfeasible:
                        continue
                planned += 1
                actual_detour = route.total_cost() - taxi.remaining_route_cost(ready)
                if best_result is None or actual_detour < best_result.detour_cost:
                    best_result = MatchResult(
                        taxi_id=taxi.taxi_id,
                        stops=tuple(stops),
                        route=route,
                        detour_cost=actual_detour,
                        num_candidates=len(candidates),
                        probabilistic=use_prob,
                    )
        obs.count("match.routes_planned", planned)
        return best_result

    def insertion_for_taxi(
        self,
        taxi: Taxi,
        request: RideRequest,
        now: float,
    ) -> MatchResult | None:
        """Feasible min-detour insertion into one specific taxi.

        Used when a taxi *encounters* an offline request on the street:
        only this taxi's schedule is examined (Section IV-C2).
        """
        if taxi.committed + request.num_passengers > taxi.capacity:
            return None
        best = self._best_insertion(taxi, request, now)
        if best is None:
            return None
        _detour, stops = best
        node, ready = taxi.position_at(now)
        try:
            route = self._basic.route_for_schedule(node, ready, stops)
        except RouteInfeasible:
            return None
        return MatchResult(
            taxi_id=taxi.taxi_id,
            stops=tuple(stops),
            route=route,
            detour_cost=route.total_cost() - taxi.remaining_route_cost(ready),
            num_candidates=1,
        )


def taxi_vector_with(
    network: RoadNetwork,
    taxi: Taxi,
    request: RideRequest,
    now: float,
) -> MobilityVector:
    """Taxi mobility vector *after* hypothetically accepting ``request``.

    Probabilistic routing plans for the taxi's direction including the
    new passenger's destination.
    """
    node, _t = taxi.position_at(now)
    ox, oy = network.xy[node]
    dests = [r.destination for r in taxi.onboard.values()]
    dests += [r.destination for r in taxi.assigned.values()]
    dests.append(request.destination)
    xs = sum(float(network.xy[d][0]) for d in dests)
    ys = sum(float(network.xy[d][1]) for d in dests)
    n = len(dests)
    return MobilityVector(float(ox), float(oy), xs / n, ys / n)
