"""The mT-Share dispatcher: the paper's primary contribution, assembled.

:class:`MTShare` wires together bipartite map partitions, the landmark
graph, the transition model, the two-level taxi/request indexes, the
partition-filtered routers and the matcher into a
:class:`~repro.baselines.base.DispatchScheme` the simulator can drive.
``MTShare(probabilistic=True)`` is the paper's *mT-Share_pro* variant:
matched taxis with enough idle seats plan probability-seeking routes to
encounter offline street-hailing requests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..baselines.base import DispatchScheme
from ..config import SystemConfig
from ..demand.request import RideRequest
from ..fleet.taxi import Taxi
from ..index.partition_index import PartitionTaxiIndex
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.shortest_path import ShortestPathEngine
from ..partitioning.bipartite import MapPartitioning
from .matching import Matcher, MatchResult, request_vector, taxi_vector
from .mobility_cluster import MobilityClusterIndex
from .partition_filter import PartitionFilter
from .routing import BasicRouter, ProbabilisticRouter

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..demand.prediction import DemandPredictor
    from ..obs import Instrumentation


class MTShare(DispatchScheme):
    """Mobility-aware dynamic taxi ridesharing (Sections IV-B and IV-C).

    Parameters
    ----------
    network, engine:
        Road network and cached shortest-path engine.
    config:
        System parameters (Table II).
    partitioning:
        A :class:`MapPartitioning` — normally bipartite, but any
        strategy works, which is how the Table V ablation runs mT-Share
        on grid partitions.  Must carry a fitted transition model when
        ``probabilistic`` is requested.
    probabilistic:
        Enable probabilistic routing (the mT-Share_pro variant).
    demand_predictor:
        Optional hour-aware pick-up predictor
        (:class:`~repro.demand.prediction.DemandPredictor`); when given,
        idle cruising targets the partitions hot at the current hour.
    landmarks:
        Optional prebuilt :class:`LandmarkGraph` for ``partitioning``
        (e.g. restored from the artifact store); built from scratch
        when omitted.
    """

    name = "mT-Share"

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        config: SystemConfig,
        partitioning: MapPartitioning,
        probabilistic: bool = False,
        demand_predictor: DemandPredictor | None = None,
        landmarks: LandmarkGraph | None = None,
    ) -> None:
        super().__init__(network, engine, config)
        if probabilistic and partitioning.transition_model is None:
            raise ValueError("probabilistic routing needs a fitted transition model")
        self._partitioning = partitioning
        if landmarks is not None and landmarks.num_partitions != partitioning.num_partitions:
            raise ValueError("landmarks do not match the supplied partitioning")
        self._landmarks = (
            landmarks
            if landmarks is not None
            else LandmarkGraph(network, partitioning.partitions, engine)
        )
        self._filter = PartitionFilter(self._landmarks, lam=config.lam, epsilon=config.epsilon)
        self._basic_router = BasicRouter(network, engine, self._filter)
        self._prob_router = None
        if probabilistic:
            self._prob_router = ProbabilisticRouter(
                network,
                engine,
                self._filter,
                partitioning.transition_model,
                lam=config.lam,
                max_attempts=config.max_probabilistic_attempts,
                steering_m=config.prob_steering_m,
            )
            self._prob_router.demand_predictor = demand_predictor
            self.name = "mT-Share-pro"
        self._pindex = PartitionTaxiIndex(
            self._landmarks.num_partitions, horizon_s=config.index_horizon_s
        )
        self._cindex = MobilityClusterIndex(lam=config.lam)
        self._matcher = Matcher(
            network,
            engine,
            self._landmarks,
            self._pindex,
            self._cindex,
            config,
            self._basic_router,
            self._prob_router,
        )

    # ------------------------------------------------------------------
    @property
    def landmark_graph(self) -> LandmarkGraph:
        """Partition geometry and landmark costs."""
        return self._landmarks

    @property
    def partition_index(self) -> PartitionTaxiIndex:
        """``P_z.L_t`` taxi lists."""
        return self._pindex

    @property
    def cluster_index(self) -> MobilityClusterIndex:
        """Mobility clusters with ``C_a.L_t`` taxi lists."""
        return self._cindex

    @property
    def matcher(self) -> Matcher:
        """The candidate-search + scheduling engine."""
        return self._matcher

    @property
    def probabilistic(self) -> bool:
        """Whether this instance is the mT-Share_pro variant."""
        return self._prob_router is not None

    # ------------------------------------------------------------------
    def instrument(self, obs: Instrumentation) -> None:
        """Attach observability to the matcher and both routers."""
        super().instrument(obs)
        self._basic_router.instrument(obs)
        if self._prob_router is not None:
            self._prob_router.instrument(obs)
        self._matcher.instrument(obs)

    def collect_observability(self, obs: Instrumentation) -> None:
        """End-of-run index gauges (Table IV's structures, live sizes)."""
        super().collect_observability(obs)
        fallbacks = self._fallback_router.fallbacks + self._basic_router.fallbacks
        if self._prob_router is not None:
            fallbacks += self._prob_router.fallbacks
        obs.gauge("route.fallbacks_total", fallbacks)
        obs.gauge("index.partition_entries", self._pindex.total_entries())
        obs.gauge("index.clusters", self._cindex.num_clusters)
        obs.gauge("index.memory_bytes", self.index_memory_bytes())

    # ------------------------------------------------------------------
    def _index_taxi(self, taxi: Taxi, now: float) -> None:
        """Refresh both index views for one taxi.

        Busy and *cruising* taxis are indexed by their remaining route
        (the partition lists record future arrivals); parked taxis by
        their current partition.  Only taxis with passengers carry a
        mobility vector.
        """
        route = taxi.route
        start = taxi._route_cursor  # noqa: SLF001 - fleet and core cooperate
        if start < len(route.nodes):
            self._pindex.update_taxi_from_route(
                taxi.taxi_id,
                route.nodes[start:],
                route.times[start:],
                self._landmarks.partition_of,
                now,
            )
        else:
            partition = self._landmarks.partition_of(taxi.loc)
            self._pindex.place_idle_taxi(taxi.taxi_id, partition, now)
        self._cindex.update_taxi(taxi.taxi_id, taxi_vector(self._network, taxi, now))

    def dispatch(self, request: RideRequest, now: float) -> MatchResult | None:
        """Match an online request to the minimum-detour suitable taxi."""
        return self._matcher.match(request, self._fleet, now)

    def install(self, result: MatchResult, request: RideRequest, now: float) -> Taxi:
        """Install the plan and register the request in its mobility cluster.

        mT-Share's matcher already planned any probabilistic route, so
        the raw plan application is used directly (no re-planning).
        """
        taxi = self._apply_plan(result, request, now)
        if self._cindex.cluster_of_request(request.request_id) is None:
            self._cindex.add_request(request.request_id, request_vector(self._network, request))
        return taxi

    def on_request_finished(self, request: RideRequest) -> None:
        """Drop the finished request from its mobility cluster."""
        self._cindex.remove_request(request.request_id)

    def on_taxi_breakdown(self, taxi: Taxi, now: float) -> None:
        """Evict the broken taxi from both index views.

        The partition lists would otherwise keep advertising its stale
        future arrivals (``P_z.L_t``) and the cluster index its last
        mobility vector, so a dead taxi could keep winning matches.
        """
        self._pindex.remove_taxi(taxi.taxi_id)
        self._cindex.update_taxi(taxi.taxi_id, None)

    def try_offline(self, taxi: Taxi, request: RideRequest, now: float) -> MatchResult | None:
        """Offline encounter: examine only this taxi's schedule."""
        return self._matcher.insertion_for_taxi(taxi, request, now)

    def index_memory_bytes(self) -> int:
        """Footprint of both index views (Table IV's "index size")."""
        return self._pindex.memory_bytes() + self._cindex.memory_bytes()

    def total_memory_bytes(self) -> int:
        """Index plus partition/landmark/transition support structures."""
        total = self.index_memory_bytes() + self._landmarks.memory_bytes()
        model = self._partitioning.transition_model
        if model is not None:
            total += model.memory_bytes()
        return total
