"""Partition filtering (Algorithm 2 of the paper).

Route planning between two consecutive schedule events does not need
the whole road graph: only partitions that lie roughly *along the way*
can contribute to a good path.  Partition filtering works on the
landmark graph and keeps a partition ``P_i`` only when

* **travel direction rule** — the vector from the source landmark to
  ``P_i``'s landmark is aligned (cosine >= ``lambda``) with the vector
  from the source landmark to the destination landmark, and
* **travel cost rule** — routing via ``P_i``'s landmark costs at most
  ``(1 + epsilon)`` times the direct landmark-to-landmark cost.

The result depends only on the (source partition, destination
partition) pair, so it is memoised.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..network.geo import cosine_similarity
from ..network.landmarks import LandmarkGraph


class PartitionFilter:
    """Memoised implementation of Algorithm 2.

    Parameters
    ----------
    landmark_graph:
        Landmarks, pairwise landmark costs, and partition geometry.
    lam:
        Direction threshold ``lambda`` (shared with mobility
        clustering; default cos 45 deg).
    epsilon:
        Cost-slack threshold (the paper conservatively uses 1.0).
    """

    def __init__(
        self,
        landmark_graph: LandmarkGraph,
        lam: float = 0.707,
        epsilon: float = 1.0,
    ) -> None:
        self._lg = landmark_graph
        self._lam = float(lam)
        self._eps = float(epsilon)
        self._cache: dict[tuple[int, int], list[int]] = {}
        self._vertex_cache: dict[tuple[int, int], frozenset[int]] = {}
        self._corridor_cache: dict[tuple[int, ...], frozenset[int]] = {}

    @property
    def landmark_graph(self) -> LandmarkGraph:
        """The landmark graph being filtered."""
        return self._lg

    def filter_nodes(self, u: int, v: int) -> list[int]:
        """Retained partitions for a leg between road vertices ``u``, ``v``."""
        return self.filter_partitions(self._lg.partition_of(u), self._lg.partition_of(v))

    def filter_partitions(self, pz: int, pz1: int) -> list[int]:
        """Retained partitions for a leg from partition ``pz`` to ``pz1``.

        The source and destination partitions are always retained, so a
        path always exists inside the filtered set whenever one exists
        at all through those partitions.
        """
        key = (pz, pz1)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        lg = self._lg
        if pz == pz1:
            result = [pz]
            self._cache[key] = result
            return result

        zx, zy = lg.landmark_xy(pz)
        z1x, z1y = lg.landmark_xy(pz1)
        vx, vy = z1x - zx, z1y - zy
        direct = lg.landmark_cost(pz, pz1)
        budget = (1.0 + self._eps) * direct

        result: list[int] = []
        for pi in range(lg.num_partitions):
            if pi == pz or pi == pz1:
                result.append(pi)
                continue
            ix, iy = lg.landmark_xy(pi)
            if cosine_similarity(ix - zx, iy - zy, vx, vy) < self._lam:
                continue
            via = lg.landmark_cost(pz, pi) + lg.landmark_cost(pi, pz1)
            if via <= budget:
                result.append(pi)
        self._cache[key] = result
        return result

    def allowed_vertices(self, pz: int, pz1: int) -> frozenset[int]:
        """Union of the member vertices of the retained partitions (memoised)."""
        key = (pz, pz1)
        cached = self._vertex_cache.get(key)
        if cached is not None:
            return cached
        allowed: set[int] = set()
        for pi in self.filter_partitions(pz, pz1):
            allowed.update(self._lg.members(pi))
        result = frozenset(allowed)
        self._vertex_cache[key] = result
        return result

    def corridor_vertices(self, corridor: Iterable[int]) -> frozenset[int]:
        """Union of the member vertices of an explicit partition corridor.

        Memoised per corridor tuple; the *same frozenset object* is
        returned for repeated corridors, so the induced-subgraph LRU in
        :mod:`repro.network.shortest_path` gets cache hits by identity
        instead of rebuilding the CSR submatrix per routed leg.
        """
        key = tuple(corridor)
        cached = self._corridor_cache.get(key)
        if cached is not None:
            return cached
        vertices: set[int] = set()
        for pi in key:
            vertices.update(self._lg.members(pi))
        result = frozenset(vertices)
        self._corridor_cache[key] = result
        return result

    def cache_size(self) -> int:
        """Number of memoised (source, destination) partition pairs."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all memoised results (after re-partitioning)."""
        self._cache.clear()
        self._vertex_cache.clear()
        self._corridor_cache.clear()
