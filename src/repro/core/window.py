"""Batch-window global assignment: the ``window-lap`` scheme.

Every other scheme matches greedily, one request at a time, so each
dispatch pays the full per-request Python loop and the batched kernels
(PR 2) and CH many-to-many queries (PR 7) never amortise across
requests.  ``window-lap`` instead collects every online request
released inside a ``W``-second dispatch window and solves the whole
window as one taxi-to-request *linear assignment problem* (Simonetto,
Monteil & Gambella, "Real-time City-scale Ridesharing via Linear
Assignment Problems"):

1. **Prune** each request's candidate taxis through the existing
   partition/mobility-cluster indexes (Eq. 3 plus the three rules,
   unchanged from mT-Share).
2. **Fill** the rectangular ``requests x taxis`` cost matrix with each
   pair's minimum-detour feasible insertion.  Idle candidates — the
   bulk of every window — are filled for *all* pairs at once from two
   batched :meth:`~repro.network.shortest_path.ShortestPathEngine.cost_matrix`
   gathers (CH bucket many-to-many above the APSP cutover); busy
   candidates go through the grouped insertion kernels
   (:func:`~repro.fleet.schedule.evaluate_insertions_grouped`).  Both
   tiers reproduce the scalar per-pair insertion evaluation bit for
   bit; infeasible pairs stay ``+inf``.
3. **Solve** the LAP with ``scipy.optimize.linear_sum_assignment``
   after masking ``+inf`` to a large finite penalty, which makes the
   optimum maximise the number of feasible matches first and minimise
   total detour second.  Rows are in release order and columns in
   ascending taxi id, so tie-breaking is a deterministic function of
   the matrix alone.
4. **Apply** each winning pair through the ordinary
   :class:`~repro.baselines.base.DispatchScheme` plumbing — the LAP
   assigns every taxi at most one new request per window, so plans
   never conflict within a flush.

Single-request windows (``W -> 0``) are delegated to the greedy
matcher, so a zero-width window reproduces mT-Share's per-request
decisions exactly — the equivalence gate of ``benchmarks/pr8_window.py``.
Unmatched requests are the simulator's concern: it rolls them forward
to the next ``window.tick`` until their pick-up deadline expires.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..config import SystemConfig
from ..demand.request import RideRequest
from ..fleet.schedule import Stop, materialize_insertion
from ..fleet.taxi import Taxi
from ..network.graph import RoadNetwork
from ..network.landmarks import LandmarkGraph
from ..network.shortest_path import ShortestPathEngine
from ..partitioning.bipartite import MapPartitioning
from .matching import MatchResult
from .mtshare import MTShare
from .routing import RouteInfeasible

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..demand.prediction import DemandPredictor

#: Finite stand-in for ``+inf`` matrix cells when solving the LAP.
#: Real detours are bounded by the drain horizon (~1e4 s) and a window
#: holds at most a few thousand requests, so any assignment using one
#: fewer penalty cell beats any assignment using one more: the optimum
#: maximises feasible matches first, total detour second.  Sums stay
#: well inside float64's exact-integer range.
INFEASIBLE_PENALTY = 1e12


@dataclass
class WindowCostMatrix:
    """The pruned, filled cost matrix of one dispatch window.

    ``costs[i, j]`` is the estimated minimum detour (seconds) of
    inserting request ``i`` into taxi ``taxi_ids[j]``'s schedule, or
    ``+inf`` when the pair is not a pruned candidate or no insertion is
    feasible.  Rows follow the batch (release) order, columns ascend by
    taxi id.
    """

    requests: list[RideRequest]
    taxi_ids: list[int]
    costs: np.ndarray
    num_candidates: list[int]
    #: Winning insertion indices per feasible busy pair; idle pairs are
    #: implicitly ``(0, 1)`` (the only instance of an empty schedule).
    _builders: dict[tuple[int, int], Callable[[], list[Stop]]] = field(default_factory=dict)
    #: Pending-stop tuples per column, gathered once at fill time.
    _pendings: dict[int, tuple[Stop, ...]] = field(default_factory=dict)

    def build_stops(self, i: int, j: int) -> list[Stop]:
        """Materialise the winning stop list of pair ``(row i, col j)``."""
        builder = self._builders.get((i, j))
        if builder is not None:
            return builder()
        # Idle-tier pair: the single pickup-then-dropoff instance.
        return materialize_insertion(self._pendings.get(j, ()), self.requests[i], 0, 1)


def solve_window_lap(costs: np.ndarray) -> list[tuple[int, int]]:
    """Feasible assignments of the window LAP, in row order.

    Masks ``+inf`` to :data:`INFEASIBLE_PENALTY`, solves the
    rectangular problem with ``scipy.optimize.linear_sum_assignment``
    and drops penalty pairs.  The solver is deterministic for a given
    matrix, and rows/columns are deterministically ordered by the
    caller, so equal-cost optima always resolve the same way.
    """
    if costs.size == 0:
        return []
    finite = np.isfinite(costs)
    if not bool(finite.any()):
        return []
    masked = np.where(finite, costs, INFEASIBLE_PENALTY)
    rows, cols = linear_sum_assignment(masked)
    return [
        (int(i), int(j))
        for i, j in zip(rows, cols)
        if bool(finite[i, j])
    ]


class WindowLAP(MTShare):
    """Whole-window global assignment on top of mT-Share's indexes.

    Inherits mT-Share's partition/cluster indexes, candidate pruning
    and routers wholesale; only the matching step differs.  Immediate
    per-request paths — fault-recovery redispatches and offline street
    hails — still use the inherited greedy :meth:`dispatch` /
    :meth:`try_offline`, so the window only governs first-look online
    matching.

    Parameters match :class:`~repro.core.mtshare.MTShare` (always
    non-probabilistic: a window batch plans plain shortest-path
    routes); ``window_s`` overrides ``config.dispatch_window_s``.
    """

    name = "window-LAP"

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        config: SystemConfig,
        partitioning: MapPartitioning,
        landmarks: LandmarkGraph | None = None,
        window_s: float | None = None,
        demand_predictor: DemandPredictor | None = None,
    ) -> None:
        super().__init__(
            network,
            engine,
            config,
            partitioning,
            probabilistic=False,
            demand_predictor=demand_predictor,
            landmarks=landmarks,
        )
        self.name = "window-LAP"
        self.dispatch_window_s = float(
            config.dispatch_window_s if window_s is None else window_s
        )
        if self.dispatch_window_s < 0:
            raise ValueError("window_s must be non-negative")

    # ------------------------------------------------------------------
    # window matching
    # ------------------------------------------------------------------
    def match_window(
        self, batch: list[RideRequest], now: float
    ) -> list[tuple[RideRequest, MatchResult | None]]:
        """Globally match one window's batch (see the module docstring)."""
        if len(batch) == 1:
            # Single-request window: a 1xT LAP is an argmin, so defer to
            # Algorithm 1's greedy matcher — including its lazy route
            # planning and tie-breaking — which is what makes W -> 0
            # reproduce the greedy per-request decisions bit for bit.
            request = batch[0]
            return [(request, self._matcher.match(request, self._fleet, now))]
        obs = self._obs
        matrix = self.build_cost_matrix(batch, now)
        with obs.stage("window.lap"):
            pairs = solve_window_lap(matrix.costs)
        obs.count("window.lap_solves")
        obs.count("window.lap_assigned", len(pairs))
        assigned = dict(pairs)
        outcomes: list[tuple[RideRequest, MatchResult | None]] = []
        with obs.stage("window.planning"):
            for i, request in enumerate(batch):
                j = assigned.get(i)
                result = None if j is None else self._plan_pair(matrix, i, j, request, now)
                outcomes.append((request, result))
        return outcomes

    def _plan_pair(
        self,
        matrix: WindowCostMatrix,
        i: int,
        j: int,
        request: RideRequest,
        now: float,
    ) -> MatchResult | None:
        """Plan the concrete route of one winning (request, taxi) pair."""
        taxi = self._fleet[matrix.taxi_ids[j]]
        stops = matrix.build_stops(i, j)
        node, ready = taxi.position_at(now)
        try:
            route = self._basic_router.route_for_schedule(node, ready, stops)
        except RouteInfeasible:
            # Treated exactly like "unmatched this window": the request
            # rolls forward (or expires) instead of failing the flush.
            self._obs.count("window.plan_infeasible")
            return None
        return MatchResult(
            taxi_id=taxi.taxi_id,
            stops=tuple(stops),
            route=route,
            detour_cost=route.total_cost() - taxi.remaining_route_cost(ready),
            num_candidates=matrix.num_candidates[i],
            probabilistic=False,
        )

    # ------------------------------------------------------------------
    # cost-matrix construction
    # ------------------------------------------------------------------
    def build_cost_matrix(self, batch: list[RideRequest], now: float) -> WindowCostMatrix:
        """Prune candidates and fill the window's min-detour cost matrix.

        Entries are bit-identical to evaluating each surviving
        ``(request, taxi)`` pair with the scalar per-pair reference
        (:meth:`build_cost_matrix_scalar` diffs them in the tests).
        """
        obs = self._obs
        fleet = self._fleet
        matcher = self._matcher
        with obs.stage("window.candidates"):
            cand_lists = [matcher.candidate_taxis(r, fleet, now) for r in batch]
        obs.count(
            "match.candidates_found", sum(len(cands) for cands in cand_lists)
        )
        taxi_ids = sorted({t.taxi_id for cands in cand_lists for t in cands})
        col_of = {tid: j for j, tid in enumerate(taxi_ids)}
        n_rows, n_cols = len(batch), len(taxi_ids)
        costs = np.full((n_rows, n_cols), np.inf)
        matrix = WindowCostMatrix(
            requests=list(batch),
            taxi_ids=taxi_ids,
            costs=costs,
            num_candidates=[len(cands) for cands in cand_lists],
        )
        if n_cols == 0:
            return matrix
        with obs.stage("window.matrix"):
            # One state read per taxi per window, shared by every row.
            state: dict[int, tuple[Taxi, int, float, list[Stop]]] = {}
            for tid in taxi_ids:
                taxi = fleet[tid]
                node, ready = taxi.position_at(now)
                state[tid] = (taxi, node, ready, taxi.pending_stops())
                matrix._pendings[col_of[tid]] = tuple(state[tid][3])
            member = np.zeros((n_rows, n_cols), dtype=bool)
            for i, cands in enumerate(cand_lists):
                for taxi in cands:
                    member[i, col_of[taxi.taxi_id]] = True
            self._fill_idle(batch, member, state, col_of, matrix)
            self._fill_busy(batch, cand_lists, state, col_of, matrix)
        obs.count("window.matrix_cells", costs.size)
        obs.count("window.matrix_feasible", int(np.isfinite(costs).sum()))
        return matrix

    def _fill_idle(
        self,
        batch: list[RideRequest],
        member: np.ndarray,
        state: dict[int, tuple[Taxi, int, float, list[Stop]]],
        col_of: dict[int, int],
        matrix: WindowCostMatrix,
    ) -> None:
        """Bulk-fill every (request, idle-candidate) pair of the window.

        Idle candidates admit exactly one insertion (pick up, then drop
        off), so the whole tier reduces to two batched cost gathers —
        one ``taxi-position x request-origin`` many-to-many matrix and
        the requests' direct legs — plus elementwise deadline/capacity
        masks.  The arithmetic accumulates left to right with the exact
        operations of the scalar :func:`~repro.fleet.schedule.arrival_times`
        walk over the same cached cost entries, so detours and
        feasibility verdicts are bit-identical to the per-pair
        reference.
        """
        idle_tids = [tid for tid in matrix.taxi_ids if not state[tid][3]]
        if not idle_tids:
            return
        engine = self._engine
        obs = self._obs
        nodes = [state[tid][1] for tid in idle_tids]
        origins = [r.origin for r in batch]
        # (T_idle, R) pick-up legs in one many-to-many gather; the
        # direct legs are per *request*, not per pair.
        leg_pu = engine.cost_matrix(nodes, origins)
        direct = np.array(
            [engine.cost(r.origin, r.destination) for r in batch], dtype=np.float64
        )
        obs.count("window.bulk_m2m_cells", int(leg_pu.size))
        obs.count("kernel.batched_insertions", 1)

        ready = np.array([state[tid][2] for tid in idle_tids], dtype=np.float64)[:, None]
        remaining = np.array(
            [state[tid][0].remaining_route_cost(float(r)) for tid, r in zip(idle_tids, ready[:, 0])],
            dtype=np.float64,
        )[:, None]
        t_pu = ready + leg_pu
        t_do = t_pu + direct[None, :]
        detour = (t_do - ready) - remaining

        slack = 1e-9
        pu_deadline = np.array([r.pickup_deadline for r in batch], dtype=np.float64)[None, :]
        do_deadline = np.array([r.deadline for r in batch], dtype=np.float64)[None, :]
        onboard = np.array([state[tid][0].occupancy for tid in idle_tids], dtype=np.int64)[:, None]
        cap = np.array([state[tid][0].capacity for tid in idle_tids], dtype=np.int64)[:, None]
        n_pass = np.array([r.num_passengers for r in batch], dtype=np.int64)[None, :]
        feasible = (
            (t_pu <= pu_deadline + slack)
            & (t_do <= do_deadline + slack)
            & (onboard + n_pass <= cap)
        )

        cols = np.array([col_of[tid] for tid in idle_tids], dtype=np.intp)
        ok = member[:, cols].T & feasible  # (T_idle, R)
        t_idx, r_idx = np.nonzero(ok)
        matrix.costs[r_idx, cols[t_idx]] = detour[t_idx, r_idx]
        obs.count("window.matrix_idle_pairs", int(member[:, cols].sum()))

    def _fill_busy(
        self,
        batch: list[RideRequest],
        cand_lists: list[list[Taxi]],
        state: dict[int, tuple[Taxi, int, float, list[Stop]]],
        col_of: dict[int, int],
        matrix: WindowCostMatrix,
    ) -> None:
        """Fill the busy-candidate pairs through the grouped kernels.

        Busy schedules need the general insertion machinery; each
        request's busy candidates go through one grouped-kernel call
        per distinct pending-stop count
        (:meth:`~repro.core.matching.Matcher.score_insertions_for`),
        sharing the per-taxi state gathered once for the window.
        """
        matcher = self._matcher
        obs = self._obs
        busy_pairs = 0
        for i, (request, cands) in enumerate(zip(batch, cand_lists)):
            items = [state[t.taxi_id] for t in cands if state[t.taxi_id][3]]
            if not items:
                continue
            busy_pairs += len(items)
            for detour, taxi, build_stops in matcher.score_insertions_for(
                [(t, n, r, list(p)) for t, n, r, p in items], request
            ):
                j = col_of[taxi.taxi_id]
                matrix.costs[i, j] = detour
                matrix._builders[(i, j)] = build_stops
        if busy_pairs:
            obs.count("window.matrix_busy_pairs", busy_pairs)

    def build_cost_matrix_scalar(
        self, batch: list[RideRequest], now: float
    ) -> WindowCostMatrix:
        """Per-pair scalar reference for :meth:`build_cost_matrix`.

        Evaluates every pruned ``(request, taxi)`` pair with the scalar
        reference insertion evaluator, one pair at a time.  Retained
        for the kernel-equivalence tests (the production fill must
        reproduce it bit for bit); every pair it scores bumps the
        ``window.scalar_pair_fallbacks`` counter the benchmark gate
        asserts stays zero on the production path.
        """
        obs = self._obs
        fleet = self._fleet
        matcher = self._matcher
        cand_lists = [matcher.candidate_taxis(r, fleet, now) for r in batch]
        taxi_ids = sorted({t.taxi_id for cands in cand_lists for t in cands})
        col_of = {tid: j for j, tid in enumerate(taxi_ids)}
        costs = np.full((len(batch), len(taxi_ids)), np.inf)
        matrix = WindowCostMatrix(
            requests=list(batch),
            taxi_ids=taxi_ids,
            costs=costs,
            num_candidates=[len(cands) for cands in cand_lists],
        )
        for j, tid in enumerate(taxi_ids):
            matrix._pendings[j] = tuple(fleet[tid].pending_stops())
        for i, (request, cands) in enumerate(zip(batch, cand_lists)):
            for taxi in cands:
                obs.count("window.scalar_pair_fallbacks")
                best = matcher._best_insertion_scalar(taxi, request, now)
                if best is None:
                    continue
                detour, stops = best
                j = col_of[taxi.taxi_id]
                costs[i, j] = detour
                matrix._builders[(i, j)] = lambda stops=stops: list(stops)
        return matrix
