"""Segment-level route planning: basic and probabilistic routing.

mT-Share plans a taxi route for a schedule instance leg by leg (every
consecutive stop pair), in two phases (Section IV-C2):

1. **Partition filtering** (Algorithm 2) prunes the road graph to the
   partitions roughly along the leg.
2. **Segment-level routing** finds the leg path inside the pruned
   subgraph.  *Basic routing* (Algorithm 3) takes the shortest path.
   *Probabilistic routing* (Algorithm 4) instead maximises the chance
   of encountering *suitable offline requests*: it scores each retained
   partition by the probability that trips hailed there head the taxi's
   way, picks the max-weight landmark path between the leg's endpoint
   partitions, and runs a vertex-weighted Dijkstra (weight ``1/psi_c``)
   inside that partition corridor — retrying with the next-best
   corridor (at most five attempts) whenever the resulting leg would
   break a passenger deadline.

Both modes return a :class:`~repro.fleet.taxi.TaxiRoute` whose times
are true travel times, so deadline bookkeeping downstream is exact.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..fleet.schedule import Stop, arrival_times, deadlines_met
from ..fleet.taxi import TaxiRoute
from ..network.geo import cosine_similarity
from ..network.graph import RoadNetwork
from ..network.shortest_path import PathNotFound, ShortestPathEngine, dijkstra_restricted
from ..obs import NULL, Instrumentation
from ..partitioning.transition import TransitionModel
from .mobility_cluster import MobilityVector
from .partition_filter import PartitionFilter

#: Floor applied to psi_c so 1/psi_c vertex weights stay finite.
MIN_PSI = 1e-6

#: Cap on the number of landmark paths enumerated per corridor search.
MAX_ENUMERATED_PATHS = 400

#: Extra partition hops allowed beyond the minimum when enumerating
#: corridors; longer corridors only waste deadline slack.
CORRIDOR_EXTRA_HOPS = 3

#: Entries kept in a :class:`BasicRouter`'s per-leg path cache before it
#: resets (a path plus its per-edge costs is tens of machine words, so
#: the cap bounds the cache around a few tens of MB worst case).
LEG_CACHE_SIZE = 65536


class RouteInfeasible(RuntimeError):
    """Raised when no deadline-respecting route exists for a schedule."""


def compose_route(
    network: RoadNetwork,
    start_node: int,
    start_time: float,
    legs: Sequence[Sequence[int]],
) -> TaxiRoute:
    """Concatenate leg paths into a :class:`TaxiRoute` with true times.

    Leg ``k`` must start where leg ``k-1`` ended; the end of each leg
    is marked as the position of schedule stop ``k``.
    """
    nodes = [start_node]
    times = [start_time]
    stop_positions: list[int] = []
    for leg in legs:
        if not leg or leg[0] != nodes[-1]:
            raise ValueError(f"leg {leg!r} does not start at {nodes[-1]}")
        for u, v in zip(leg, leg[1:]):
            times.append(times[-1] + network.edge_cost(u, v))
            nodes.append(v)
        stop_positions.append(len(nodes) - 1)
    return TaxiRoute(nodes=nodes, times=times, stop_positions=stop_positions)


class BasicRouter:
    """Shortest-path routing accelerated by partition filtering (Alg. 3).

    Parameters
    ----------
    network, engine:
        Road network and its cached shortest-path engine.
    partition_filter:
        The memoised Algorithm 2 instance; ``None`` disables filtering
        (plain cached shortest paths), which is what the grid-based
        baselines effectively do.
    """

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        partition_filter: PartitionFilter | None = None,
    ) -> None:
        self._network = network
        self._engine = engine
        self._filter = partition_filter
        self.fallbacks = 0  # legs where filtering had to be bypassed
        self._obs: Instrumentation = NULL
        # (u, v) -> (path, per-edge costs, leg needed the full-graph
        # fallback).  leg_path is deterministic per endpoint pair (the
        # engine's paths and the memoised partition filter never
        # change), so replaying a cached leg is exact; the flag replays
        # the fallback bookkeeping too.
        self._leg_cache: dict[tuple[int, int], tuple[list[int], list[float], bool]] = {}

    def instrument(self, obs: Instrumentation) -> None:
        """Attach an observability registry (``repro.obs``)."""
        self._obs = obs

    @property
    def network(self) -> RoadNetwork:
        """The road network."""
        return self._network

    @property
    def engine(self) -> ShortestPathEngine:
        """The shortest-path engine (O(1) cost queries)."""
        return self._engine

    def cost(self, u: int, v: int) -> float:
        """Leg travel cost in seconds — the cached shortest-path cost.

        Matching evaluates schedule instances with this O(1) query, as
        the paper assumes for its complexity analysis.
        """
        return self._engine.cost(u, v)

    def leg_path(self, u: int, v: int) -> list[int]:
        """Leg path from ``u`` to ``v`` (Algorithm 3's segment routing).

        With a full all-pairs cache the shortest path is already
        materialised, so partition filtering buys nothing and the cache
        answers directly — this mirrors the paper's own setup, which
        precomputes and caches all shortest paths (Section V-A4).  In
        lazy mode the filter earns its keep: Dijkstra runs on the
        pruned subgraph, falling back to the full graph only when the
        pruned one disconnects the endpoints (one-way streets cut at a
        partition boundary), counted in :attr:`fallbacks`.
        """
        if u == v:
            return [u]
        if self._filter is not None and self._engine.mode != "full":
            allowed = self._filter.allowed_vertices(
                self._filter.landmark_graph.partition_of(u),
                self._filter.landmark_graph.partition_of(v),
            )
            try:
                _cost, path = dijkstra_restricted(self._network, u, v, allowed)
                return path
            except PathNotFound:
                self.fallbacks += 1
                self._obs.count("route.fallback_legs")
        return self._engine.path(u, v)

    def route_for_schedule(
        self,
        start_node: int,
        start_time: float,
        stops: Sequence[Stop],
        taxi_vector: MobilityVector | None = None,
    ) -> TaxiRoute:
        """Plan the full route for a schedule (the ``|><|`` concatenation).

        ``taxi_vector`` is accepted for interface compatibility with
        :class:`ProbabilisticRouter` and ignored here.

        Raises :class:`RouteInfeasible` when any stop deadline cannot
        be met along the produced route.
        """
        with self._obs.stage("route.basic"):
            return self._plan_basic(start_node, start_time, stops)

    def _cached_leg(self, u: int, v: int) -> tuple[list[int], list[float]]:
        """Leg path plus per-edge travel costs, memoised per endpoint pair.

        A hit replays exactly what recomputing the leg would have done —
        including the fallback counter when the cached leg needed the
        full-graph bypass — so observability totals are unchanged by
        caching.  Callers must not mutate the returned lists.
        """
        key = (u, v)
        entry = self._leg_cache.get(key)
        if entry is not None:
            path, costs, fellback = entry
            self._obs.count("kernel.legcache_hits")
            if fellback:
                self.fallbacks += 1
                self._obs.count("route.fallback_legs")
            return path, costs
        before = self.fallbacks
        path = self.leg_path(u, v)
        edge_cost = self._network.edge_cost
        costs = [edge_cost(a, b) for a, b in zip(path, path[1:])]
        if len(self._leg_cache) >= LEG_CACHE_SIZE:
            self._leg_cache.clear()
        self._leg_cache[key] = (path, costs, self.fallbacks != before)
        self._obs.count("kernel.legcache_misses")
        return path, costs

    def _plan_basic(
        self,
        start_node: int,
        start_time: float,
        stops: Sequence[Stop],
    ) -> TaxiRoute:
        # Build the route from cached legs, accumulating times with the
        # exact sequential adds of compose_route (same floats, same
        # order -> bit-identical TaxiRoute).
        nodes = [start_node]
        times = [start_time]
        stop_positions: list[int] = []
        node = start_node
        t = start_time
        for stop in stops:
            path, costs = self._cached_leg(node, stop.node)
            for c in costs:
                t = t + c
                times.append(t)
            nodes.extend(path[1:])
            stop_positions.append(len(nodes) - 1)
            node = stop.node
        route = TaxiRoute(nodes=nodes, times=times, stop_positions=stop_positions)
        stop_times = [times[i] for i in stop_positions]
        if deadlines_met(stops, stop_times):
            return route
        # The filtered subgraph can miss the true shortest path (one-way
        # streets cut by the partition boundary); retry with exact
        # shortest paths before declaring the schedule infeasible.
        self.fallbacks += 1
        self._obs.count("route.fallback_routes")
        legs: list[list[int]] = []
        node = start_node
        for stop in stops:
            legs.append(self._engine.path(node, stop.node))
            node = stop.node
        route = compose_route(self._network, start_node, start_time, legs)
        stop_times = [route.times[i] for i in route.stop_positions]
        if not deadlines_met(stops, stop_times):
            raise RouteInfeasible("a stop deadline is violated on the planned route")
        return route


class ProbabilisticRouter(BasicRouter):
    """Probabilistic routing (Algorithm 4).

    Parameters
    ----------
    transition_model:
        Historical transition statistics aligned with the partitions of
        ``partition_filter``'s landmark graph.
    lam:
        Direction threshold used to decide which destination partitions
        make an offline request *suitable* for the taxi.
    max_attempts:
        Corridor retries before giving up on a leg (paper: 5).
    """

    def __init__(
        self,
        network: RoadNetwork,
        engine: ShortestPathEngine,
        partition_filter: PartitionFilter,
        transition_model: TransitionModel,
        lam: float = 0.707,
        max_attempts: int = 5,
        steering_m: float = 120.0,
    ) -> None:
        if partition_filter is None:
            raise ValueError("probabilistic routing requires a partition filter")
        super().__init__(network, engine, partition_filter)
        self._model = transition_model
        self._lam = float(lam)
        self._max_attempts = int(max_attempts)
        self._steering_m = max(0.0, float(steering_m))
        #: Optional hour-aware demand predictor; when set, cruising
        #: targets the partitions that are hot at the current hour
        #: instead of hot on average.
        self.demand_predictor = None
        self._pd_cache: dict[tuple[int, int, int], list[int]] = {}

    # ------------------------------------------------------------------
    # step 1: suitability probabilities
    # ------------------------------------------------------------------
    def _suitable_destinations(
        self, pi: int, direction: tuple[float, float]
    ) -> list[int]:
        """Destination partitions making a request from ``pi`` suitable.

        A request hailed in ``P_i`` is suitable when its implied travel
        direction (landmark of ``P_i`` to the destination partition's
        landmark) is aligned with the taxi's direction.
        """
        lg = self._filter.landmark_graph
        # Quantise the direction into 16 sectors so the cache is effective.
        dx, dy = direction
        if dx == 0.0 and dy == 0.0:
            sector = 0
        else:
            sector = int(8.0 * (1.0 + math.atan2(dy, dx) / math.pi)) % 16
        key = (pi, sector)
        cached = self._pd_cache.get(key)
        if cached is not None:
            return cached
        ix, iy = lg.landmark_xy(pi)
        out: list[int] = []
        for pa in range(lg.num_partitions):
            if pa == pi:
                continue
            ax, ay = lg.landmark_xy(pa)
            if cosine_similarity(ax - ix, ay - iy, dx, dy) >= self._lam:
                out.append(pa)
        self._pd_cache[key] = out
        return out

    def partition_probability(self, pi: int, direction: tuple[float, float]) -> float:
        """``pi_i``: probability of meeting a suitable request in ``P_i``."""
        dests = self._suitable_destinations(pi, direction)
        lg = self._filter.landmark_graph
        return self._model.partition_probability(lg.members(pi), dests)

    # ------------------------------------------------------------------
    # step 2: max-weight landmark paths
    # ------------------------------------------------------------------
    def _corridors(
        self,
        retained: list[int],
        pz: int,
        pz1: int,
        weight: dict[int, float],
    ) -> list[list[int]]:
        """Simple landmark paths from ``pz`` to ``pz1`` inside ``retained``,
        sorted by accumulated probability (descending), capped.

        The landmark subgraph is small (the partitions that survive
        filtering), so the paper enumerates all paths; we cap the
        enumeration defensively and keep the best ones.
        """
        lg = self._filter.landmark_graph
        if pz == pz1:
            return [[pz]]
        retained_set = set(retained)

        # BFS hop distances to pz1 bound the DFS depth: corridors much
        # longer than the shortest partition path only burn slack.
        hops = {pz1: 0}
        frontier = [pz1]
        while frontier:
            nxt_frontier: list[int] = []
            for node in frontier:
                for nb in lg.neighbors(node):
                    if nb in retained_set and nb not in hops:
                        hops[nb] = hops[node] + 1
                        nxt_frontier.append(nb)
            frontier = nxt_frontier
        if pz not in hops:
            return []
        max_len = hops[pz] + CORRIDOR_EXTRA_HOPS

        paths: list[tuple[float, list[int]]] = []
        budget = MAX_ENUMERATED_PATHS

        def dfs(node: int, visited: set[int], acc: float, path: list[int]) -> None:
            nonlocal budget
            if budget <= 0:
                return
            if node == pz1:
                budget -= 1
                paths.append((acc, list(path)))
                return
            if len(path) + hops.get(node, max_len) > max_len + 1:
                return
            for nxt in lg.neighbors(node):
                if nxt in retained_set and nxt not in visited and nxt in hops:
                    visited.add(nxt)
                    path.append(nxt)
                    dfs(nxt, visited, acc + weight.get(nxt, 0.0), path)
                    path.pop()
                    visited.remove(nxt)

        dfs(pz, {pz}, weight.get(pz, 0.0), [pz])
        paths.sort(key=lambda p: -p[0])
        return [p for _w, p in paths[: self._max_attempts]]

    # ------------------------------------------------------------------
    # step 3: fine-grained vertex-weighted routing
    # ------------------------------------------------------------------
    def _weighted_leg(
        self,
        u: int,
        v: int,
        corridor: list[int],
        direction: tuple[float, float],
    ) -> list[int] | None:
        """Vertex-weighted shortest path inside the corridor partitions."""
        lg = self._filter.landmark_graph
        # The memoised frozenset keys the induced-subgraph LRU in
        # ``dijkstra_restricted``: repeated legs through the same
        # corridor reuse the cached CSR submatrix.
        allowed = self._filter.corridor_vertices(corridor)
        psi: dict[int, float] = {}
        for pi in corridor:
            dests = self._suitable_destinations(pi, direction)
            for c in lg.members(pi):
                # psi_c: chance of a *suitable* request materialising at
                # c — the accumulated transition probability towards the
                # suitable destinations, weighted by how much pick-up
                # demand c actually generates.
                mass = self._model.mass_to(c, dests)
                demand = self._model.relative_pickup_frequency(c)
                psi[c] = max(mass * demand, MIN_PSI)
        # The paper weights vertex c by 1/psi_c.  Raw reciprocals can be
        # astronomically large for never-observed vertices and would make
        # Dijkstra chase any observed vertex regardless of distance, so
        # we use the bounded equivalent scale * (1 - psi_c / psi_max):
        # minimising it prefers high-psi vertices, discounting up to
        # ``scale`` seconds per hot vertex on top of the travel-time
        # objective.  Normalising by the corridor's peak psi keeps the
        # preference meaningful even when absolute probabilities are
        # tiny (they always are: psi is a per-trip probability).
        psi_max = max(psi.values(), default=MIN_PSI)
        scale = self._network.meters_to_seconds(self._steering_m)

        def weight(c: int) -> float:
            return scale * (1.0 - psi.get(c, 0.0) / psi_max)

        try:
            _cost, path = dijkstra_restricted(self._network, u, v, allowed, vertex_weight=weight)
            return path
        except PathNotFound:
            return None

    def partition_demand_share(self, pi: int) -> float:
        """Share of historical pick-up demand generated inside ``P_i``."""
        lg = self._filter.landmark_graph
        cached = getattr(self, "_demand_share", None)
        if cached is None:
            cached = []
            for z in range(lg.num_partitions):
                cached.append(
                    sum(self._model.pickup_frequency(v) for v in lg.members(z))
                )
            self._demand_share = cached
        return cached[pi]

    def cruise_route(
        self,
        start_node: int,
        start_time: float,
        max_duration_s: float = 600.0,
    ) -> TaxiRoute | None:
        """A passenger-seeking cruise for an idle taxi (non-peak mode).

        When online requests are inadequate, a vacant taxi heads for
        the partition with the best demand-per-travel-time trade-off
        and approaches it through demand-hot vertices.  Returns ``None``
        when the taxi already stands in the best partition's hot spot.
        """
        lg = self._filter.landmark_graph
        here = lg.partition_of(start_node)
        hour = int(start_time // 3600) % 24
        candidates: list[int] = []
        scores: list[float] = []
        for pi in range(lg.num_partitions):
            share = self.partition_demand_share(pi)
            if self.demand_predictor is not None:
                # Blend the hour-of-day rate with the overall share: the
                # hourly estimate is sharper but noisier (few observed
                # days per hour), the overall share is stable.
                share = 0.5 * share + 0.5 * self.demand_predictor.share(pi, hour)
            if share <= 0.0:
                continue
            travel = lg.landmark_cost(here, pi)
            if travel > max_duration_s:
                continue
            candidates.append(pi)
            scores.append(share / (1.0 + travel / 300.0))
        if not candidates:
            return None
        # Sample the target proportionally to its score instead of
        # taking the argmax: greedy targeting would herd every vacant
        # taxi onto one hotspot and strip coverage everywhere else.
        # The seed is derived from (position, time) so runs stay
        # deterministic.
        rng = np.random.default_rng((start_node * 1_000_003 + int(start_time)) & 0x7FFFFFFF)
        weights = np.asarray(scores)
        weights = weights / weights.sum()
        best_target = int(candidates[rng.choice(len(candidates), p=weights)])
        target_vertex = max(
            lg.members(best_target), key=self._model.pickup_count
        )
        if target_vertex == start_node:
            # Already parked on the hot spot; hop to the runner-up so the
            # taxi keeps sweeping demand instead of standing still.
            neighbors = [z for z in lg.neighbors(best_target)
                         if self.partition_demand_share(z) > 0]
            if not neighbors:
                return None
            nxt = max(neighbors, key=self.partition_demand_share)
            target_vertex = max(lg.members(nxt), key=self._model.pickup_count)
            if target_vertex == start_node:
                return None
            best_target = nxt
        corridor = self._filter.filter_partitions(here, best_target)
        path = self._weighted_leg(start_node, target_vertex, corridor, (0.0, 0.0))
        if path is None or len(path) < 2:
            try:
                path = self._engine.path(start_node, target_vertex)
            except PathNotFound:
                return None
            if len(path) < 2:
                return None
        nodes = [path[0]]
        times = [start_time]
        for u, v in zip(path, path[1:]):
            times.append(times[-1] + self._network.edge_cost(u, v))
            nodes.append(v)
        # A cruise has no schedule stops: stop_positions stays empty.
        return TaxiRoute(nodes=nodes, times=times, stop_positions=[])

    def route_for_schedule(
        self,
        start_node: int,
        start_time: float,
        stops: Sequence[Stop],
        taxi_vector: MobilityVector | None = None,
    ) -> TaxiRoute:
        """Plan a probability-seeking route meeting every stop deadline.

        Per leg, corridors are tried best-first; a candidate leg is kept
        only if the whole schedule remains feasible assuming shortest
        paths for the remaining legs.  Exhausted attempts fall back to
        the basic (shortest-path) leg; if even that breaks a deadline
        the schedule instance is infeasible.
        """
        if taxi_vector is None:
            return super().route_for_schedule(start_node, start_time, stops)
        with self._obs.stage("route.probabilistic"):
            return self._plan_probabilistic(start_node, start_time, stops, taxi_vector)

    def _plan_probabilistic(
        self,
        start_node: int,
        start_time: float,
        stops: Sequence[Stop],
        taxi_vector: MobilityVector,
    ) -> TaxiRoute:
        direction = taxi_vector.direction
        lg = self._filter.landmark_graph

        # Baseline slack: arrival times if every leg took the shortest path.
        base_times = arrival_times(start_node, start_time, stops, self.cost)
        if not deadlines_met(stops, base_times):
            raise RouteInfeasible("schedule infeasible even with shortest paths")
        # Remaining slack from each leg onwards.
        slack_from = [0.0] * len(stops)
        running = float("inf")
        for k in range(len(stops) - 1, -1, -1):
            running = min(running, stops[k].deadline - base_times[k])
            slack_from[k] = running

        legs: list[list[int]] = []
        node = start_node
        consumed_extra = 0.0
        for k, stop in enumerate(stops):
            shortest_cost = self.cost(node, stop.node)
            budget = slack_from[k] - consumed_extra
            chosen: list[int] | None = None

            pz, pz1 = lg.partition_of(node), lg.partition_of(stop.node)
            retained = self._filter.filter_partitions(pz, pz1)
            weight = {pi: self.partition_probability(pi, direction) for pi in retained}
            for corridor in self._corridors(retained, pz, pz1, weight):
                path = self._weighted_leg(node, stop.node, corridor, direction)
                if path is None:
                    continue
                extra = self._network.path_cost_s(path) - shortest_cost
                if extra <= budget + 1e-9:
                    chosen = path
                    consumed_extra += max(0.0, extra)
                    break
            if chosen is None:
                chosen = self.leg_path(node, stop.node)
                extra = self._network.path_cost_s(chosen) - shortest_cost
                if extra > budget + 1e-9:
                    raise RouteInfeasible(
                        f"no deadline-respecting leg from {node} to {stop.node}"
                    )
                consumed_extra += max(0.0, extra)
            legs.append(chosen)
            node = stop.node

        route = compose_route(self._network, start_node, start_time, legs)
        stop_times = [route.times[i] for i in route.stop_positions]
        if not deadlines_met(stops, stop_times):
            raise RouteInfeasible("probabilistic route misses a deadline")
        return route
