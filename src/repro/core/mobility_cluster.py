"""Mobility vectors and mobility clustering (Section IV-B2 of the paper).

A *mobility vector* (Definition 9) points from an origin to a
destination; two movers can plausibly share a taxi when their vectors'
travel directions are similar, measured by cosine similarity (Eq. 1)
against a threshold ``lambda`` (the paper defaults to cos 45 deg ~ 0.707).

Requests and busy taxis are grouped into *mobility clusters*: the first
request seeds a cluster, later ones join the best cluster whose general
vector is within ``lambda`` or found a new one.  Each cluster maintains
a *general mobility vector* (member origins and destinations averaged)
and a taxi list ``C_a.L_t`` of the busy taxis travelling the same way —
the right-hand side of the candidate-search intersection (Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..network.geo import cosine_similarity

#: Default direction threshold: cos(45 degrees).
DEFAULT_LAMBDA = 0.707

#: Sentinel unit for a zero-length direction: aligned with everything
#: (:func:`cosine_similarity` returns 1.0 for degenerate vectors).
ZERO_UNIT = (0.0, 0.0, 0.0)


def direction_unit(dx: float, dy: float) -> tuple[float, float, float]:
    """``(x/scale, y/scale, hypot(...))`` — the rescaled components and
    norm that :func:`cosine_similarity` derives from a direction, cached
    so the per-dispatch alignment tests skip straight to the dot
    product.  :data:`ZERO_UNIT` (by identity) marks degenerate vectors.
    """
    scale = max(abs(dx), abs(dy))
    if scale == 0.0:
        return ZERO_UNIT
    xn = dx / scale
    yn = dy / scale
    return (xn, yn, math.hypot(xn, yn))


def unit_similarity(
    a: tuple[float, float, float], b: tuple[float, float, float]
) -> float:
    """:func:`cosine_similarity` over two precomputed units, bit for bit.

    ``a`` and ``b`` are :func:`direction_unit` results; either being
    :data:`ZERO_UNIT` yields 1.0 exactly like the scalar reference.
    """
    if a is ZERO_UNIT or b is ZERO_UNIT:
        return 1.0
    value = (a[0] * b[0] + a[1] * b[1]) / (a[2] * b[2])
    return max(-1.0, min(1.0, value))


@dataclass(frozen=True, slots=True)
class MobilityVector:
    """A directed origin -> destination vector on the plane (Definition 9)."""

    ox: float
    oy: float
    dx: float
    dy: float

    @property
    def direction(self) -> tuple[float, float]:
        """The travel-direction components ``(dx - ox, dy - oy)``."""
        return (self.dx - self.ox, self.dy - self.oy)

    def similarity(self, other: "MobilityVector") -> float:
        """Cosine similarity of the two travel directions (Eq. 1)."""
        ax, ay = self.direction
        bx, by = other.direction
        return cosine_similarity(ax, ay, bx, by)

    def is_aligned(self, other: "MobilityVector", lam: float = DEFAULT_LAMBDA) -> bool:
        """Whether the direction difference is small enough (cos >= lambda)."""
        return self.similarity(other) >= lam


class _Cluster:
    """Internal cluster state: member sums for the general vector."""

    __slots__ = (
        "cluster_id",
        "members",
        "sum_ox",
        "sum_oy",
        "sum_dx",
        "sum_dy",
        "taxis",
        "_cached_vector",
    )

    def __init__(self, cluster_id: int) -> None:
        self.cluster_id = cluster_id
        self.members: dict[int, MobilityVector] = {}
        self.sum_ox = 0.0
        self.sum_oy = 0.0
        self.sum_dx = 0.0
        self.sum_dy = 0.0
        self.taxis: set[int] = set()
        self._cached_vector: MobilityVector | None = None

    def add(self, member_id: int, vec: MobilityVector) -> None:
        self.members[member_id] = vec
        self.sum_ox += vec.ox
        self.sum_oy += vec.oy
        self.sum_dx += vec.dx
        self.sum_dy += vec.dy
        self._cached_vector = None

    def remove(self, member_id: int) -> None:
        vec = self.members.pop(member_id)
        self.sum_ox -= vec.ox
        self.sum_oy -= vec.oy
        self.sum_dx -= vec.dx
        self.sum_dy -= vec.dy
        self._cached_vector = None

    def general_vector(self) -> MobilityVector:
        if self._cached_vector is None:
            n = max(len(self.members), 1)
            self._cached_vector = MobilityVector(
                self.sum_ox / n, self.sum_oy / n, self.sum_dx / n, self.sum_dy / n
            )
        return self._cached_vector


class MobilityClusterIndex:
    """Incremental mobility clustering of requests plus taxi lists.

    Parameters
    ----------
    lam:
        Direction threshold ``lambda``; joining a cluster requires the
        cosine similarity with its general vector to reach ``lam``.

    The index is updated only when requests arrive or finish and when
    taxi routes change, as the paper prescribes ("negligible
    computation overheads").
    """

    def __init__(self, lam: float = DEFAULT_LAMBDA) -> None:
        if not -1.0 <= lam <= 1.0:
            raise ValueError("lambda must be a cosine in [-1, 1]")
        self._lam = float(lam)
        self._clusters: dict[int, _Cluster] = {}
        self._cluster_of_request: dict[int, int] = {}
        self._cluster_of_taxi: dict[int, int] = {}
        self._taxi_vectors: dict[int, MobilityVector] = {}
        self._taxi_units: dict[int, tuple[float, float, float]] = {}
        self._next_id = 0
        # Cached (cluster ids, normalised direction units) over the live
        # clusters, rebuilt lazily after membership changes; the
        # alignment lookups on the dispatch hot path then reduce to one
        # dot product per cluster (a dispatch sees ~a dozen clusters,
        # below the break-even size of an array kernel).
        self._table: tuple[list[int], list[tuple[float, float, float]]] | None = None

    # ------------------------------------------------------------------
    @property
    def lam(self) -> float:
        """The direction threshold ``lambda``."""
        return self._lam

    @property
    def num_clusters(self) -> int:
        """Number of live clusters."""
        return len(self._clusters)

    def cluster_ids(self) -> list[int]:
        """Ids of all live clusters."""
        return list(self._clusters)

    def general_vector(self, cluster_id: int) -> MobilityVector:
        """The cluster's general mobility vector."""
        return self._clusters[cluster_id].general_vector()

    def members_of(self, cluster_id: int) -> set[int]:
        """Request ids currently in the cluster."""
        return set(self._clusters[cluster_id].members)

    def taxi_list(self, cluster_id: int) -> set[int]:
        """``C_a.L_t``: busy taxis travelling with the cluster."""
        return set(self._clusters[cluster_id].taxis)

    def cluster_of_request(self, request_id: int) -> int | None:
        """Cluster holding ``request_id``, if any."""
        return self._cluster_of_request.get(request_id)

    def cluster_of_taxi(self, taxi_id: int) -> int | None:
        """Cluster whose taxi list holds ``taxi_id``, if any."""
        return self._cluster_of_taxi.get(taxi_id)

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def _direction_table(self) -> tuple[list[int], list[tuple[float, float, float]]]:
        """Cluster ids (dict order) plus their general-vector units."""
        table = self._table
        if table is None:
            ids = list(self._clusters)
            units: list[tuple[float, float, float]] = []
            for cid in ids:
                dx, dy = self._clusters[cid].general_vector().direction
                units.append(direction_unit(dx, dy))
            table = (ids, units)
            self._table = table
        return table

    def _best_cluster(self, vec: MobilityVector) -> tuple[int | None, float]:
        if not self._clusters:
            return None, -2.0
        ids, units = self._direction_table()
        bu = direction_unit(*vec.direction)
        # Strict improvement keeps the first maximum, matching a
        # :func:`cosine_similarity` loop over dict iteration order.
        best_k = 0
        best = -2.0
        for k, unit in enumerate(units):
            sim = unit_similarity(unit, bu)
            if sim > best:
                best = sim
                best_k = k
        return ids[best_k], best

    def add_request(self, request_id: int, vec: MobilityVector) -> int:
        """Place a request: join the most similar cluster or found a new one.

        Returns the cluster id the request ended up in.
        """
        if request_id in self._cluster_of_request:
            raise ValueError(f"request {request_id} is already clustered")
        best_id, best_sim = self._best_cluster(vec)
        if best_id is None or best_sim < self._lam:
            cluster = _Cluster(self._next_id)
            self._next_id += 1
            self._clusters[cluster.cluster_id] = cluster
            best_id = cluster.cluster_id
        self._clusters[best_id].add(request_id, vec)
        self._cluster_of_request[request_id] = best_id
        self._table = None
        return best_id

    def remove_request(self, request_id: int) -> None:
        """Drop a finished/expired request; empty clusters are deleted."""
        cid = self._cluster_of_request.pop(request_id, None)
        if cid is None:
            return
        cluster = self._clusters[cid]
        cluster.remove(request_id)
        if not cluster.members:
            for taxi_id in cluster.taxis:
                self._cluster_of_taxi.pop(taxi_id, None)
            del self._clusters[cid]
        self._table = None

    def matching_clusters(self, vec: MobilityVector) -> list[int]:
        """Clusters whose general vector is aligned with ``vec``.

        Candidate searching uses the aligned clusters' taxi lists; in
        the common case this is a single cluster (the paper's ``C_a``).
        """
        if not self._clusters:
            return []
        ids, units = self._direction_table()
        bu = direction_unit(*vec.direction)
        lam = self._lam
        return [
            ids[k] for k, unit in enumerate(units) if unit_similarity(unit, bu) >= lam
        ]

    def aligned_taxis(self, vec: MobilityVector) -> set[int]:
        """Union of ``C_a.L_t`` over all clusters aligned with ``vec``."""
        out: set[int] = set()
        for cid in self.matching_clusters(vec):
            out.update(self._clusters[cid].taxis)
        return out

    # ------------------------------------------------------------------
    # taxi side
    # ------------------------------------------------------------------
    def update_taxi(self, taxi_id: int, vec: MobilityVector | None) -> int | None:
        """(Re)assign a busy taxi to the most aligned cluster.

        ``vec`` is the taxi's mobility vector — current location to the
        centroid of its passengers' destinations.  Pass ``None`` for an
        empty taxi (the paper does not cluster empty taxis); the taxi is
        then removed from any cluster.  Returns the new cluster id.
        """
        old = self._cluster_of_taxi.pop(taxi_id, None)
        if old is not None and old in self._clusters:
            self._clusters[old].taxis.discard(taxi_id)
        if vec is None:
            self._taxi_vectors.pop(taxi_id, None)
            self._taxi_units.pop(taxi_id, None)
            return None
        self._taxi_vectors[taxi_id] = vec
        self._taxi_units[taxi_id] = direction_unit(*vec.direction)
        best_id, best_sim = self._best_cluster(vec)
        if best_id is None or best_sim < self._lam:
            return None
        self._clusters[best_id].taxis.add(taxi_id)
        self._cluster_of_taxi[taxi_id] = best_id
        return best_id

    def taxi_vector(self, taxi_id: int) -> MobilityVector | None:
        """Last known mobility vector of a busy taxi."""
        return self._taxi_vectors.get(taxi_id)

    def taxi_unit(self, taxi_id: int) -> tuple[float, float, float] | None:
        """Normalised direction unit of a busy taxi's mobility vector.

        ``None`` when the taxi has no vector; :data:`ZERO_UNIT` (by
        identity) when the vector is degenerate.  Candidate searching
        uses this for its per-taxi similarity fallback without
        re-deriving the components every dispatch.
        """
        return self._taxi_units.get(taxi_id)

    def memory_bytes(self) -> int:
        """Rough footprint of the clustering structures."""
        total = 0
        for cluster in self._clusters.values():
            total += 128 + 72 * len(cluster.members) + 28 * len(cluster.taxis)
        total += 56 * (len(self._cluster_of_request) + len(self._cluster_of_taxi))
        total += 72 * len(self._taxi_vectors)
        return total
