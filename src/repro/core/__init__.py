"""The paper's core contribution: indexing, matching, routing, payment."""

from .matching import Matcher, MatchResult, request_vector, taxi_vector
from .mobility_cluster import (
    DEFAULT_LAMBDA,
    MobilityClusterIndex,
    MobilityVector,
)
from .mtshare import MTShare
from .partition_filter import PartitionFilter
from .payment import (
    DEFAULT_BETA,
    DEFAULT_ETA,
    FareSchedule,
    PassengerCharge,
    PaymentModel,
    Settlement,
)
from .routing import BasicRouter, ProbabilisticRouter, RouteInfeasible, compose_route

__all__ = [
    "BasicRouter",
    "DEFAULT_BETA",
    "DEFAULT_ETA",
    "DEFAULT_LAMBDA",
    "FareSchedule",
    "MTShare",
    "MatchResult",
    "Matcher",
    "MobilityClusterIndex",
    "MobilityVector",
    "PartitionFilter",
    "PassengerCharge",
    "PaymentModel",
    "ProbabilisticRouter",
    "RouteInfeasible",
    "Settlement",
    "compose_route",
    "request_vector",
    "taxi_vector",
]
