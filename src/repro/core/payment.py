"""The mT-Share payment model (Section IV-D, Eqs. 5-8).

Ridesharing creates a monetary *benefit*: the metered fare of the
passengers' individual shortest-path trips exceeds the metered fare of
the single shared route.  mT-Share splits that benefit between the
driver (share ``1 - beta``) and the passengers as a group (share
``beta``), and divides the passenger share proportionally to *detour
rates* — passengers who detoured more are compensated more — with a
base rate ``eta`` guaranteeing everyone a positive saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

DEFAULT_BETA = 0.8
DEFAULT_ETA = 0.01


@dataclass(frozen=True, slots=True)
class FareSchedule:
    """A metered taxi tariff: flag-fall plus a per-kilometre rate.

    Defaults approximate the Chengdu taxi tariff of the study period:
    8 yuan covering the first 2 km, then 1.9 yuan per km.
    """

    base_fare: float = 8.0
    base_distance_m: float = 2000.0
    per_km: float = 1.9

    def fare(self, distance_m: float) -> float:
        """Metered fare for a trip of ``distance_m`` metres."""
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        extra = max(0.0, distance_m - self.base_distance_m)
        return self.base_fare + self.per_km * extra / 1000.0


@dataclass(frozen=True, slots=True)
class PassengerCharge:
    """Outcome of the payment model for one passenger."""

    request_id: int
    regular_fare: float
    shared_fare: float
    detour_rate: float

    @property
    def saving(self) -> float:
        """Absolute saving versus riding alone."""
        return self.regular_fare - self.shared_fare


@dataclass(frozen=True, slots=True)
class Settlement:
    """Full settlement of one ridesharing episode."""

    charges: tuple[PassengerCharge, ...]
    route_fare: float
    benefit: float
    driver_income: float

    @property
    def total_passenger_payment(self) -> float:
        """Sum of all shared fares."""
        return sum(c.shared_fare for c in self.charges)

    @property
    def total_regular_fare(self) -> float:
        """What the same passengers would have paid riding alone."""
        return sum(c.regular_fare for c in self.charges)


class PaymentModel:
    """Benefit sharing between a taxi driver and ridesharing passengers.

    Parameters
    ----------
    schedule:
        The metered tariff used for all fares.
    beta:
        Passenger share of the benefit (Eq. 8); the driver keeps
        ``1 - beta``.  The paper fixes ``beta = 0.8``.
    eta:
        Base detour rate (Eq. 6) so zero-detour passengers still get a
        positive share.  The paper fixes ``eta = 0.01``.
    """

    def __init__(
        self,
        schedule: FareSchedule | None = None,
        beta: float = DEFAULT_BETA,
        eta: float = DEFAULT_ETA,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must lie in [0, 1]")
        if eta <= 0:
            raise ValueError("eta must be positive so shares are well-defined")
        self._schedule = schedule if schedule is not None else FareSchedule()
        self._beta = float(beta)
        self._eta = float(eta)

    @property
    def schedule(self) -> FareSchedule:
        """The tariff in force."""
        return self._schedule

    @property
    def beta(self) -> float:
        """Passenger share of the benefit."""
        return self._beta

    @property
    def eta(self) -> float:
        """Base detour rate."""
        return self._eta

    # ------------------------------------------------------------------
    def detour_rate(self, shared_distance_m: float, shortest_distance_m: float) -> float:
        """``sigma_i`` (Eq. 6): base rate plus relative detour.

        ``shared_distance_m`` is the distance the passenger actually
        travelled on board; ``shortest_distance_m`` the direct
        shortest-path distance of their trip.
        """
        if shortest_distance_m <= 0:
            raise ValueError("shortest distance must be positive")
        detour = max(0.0, shared_distance_m - shortest_distance_m)
        return self._eta + detour / shortest_distance_m

    def projected_detour_rate(
        self,
        travelled_so_far_m: float,
        remaining_shortest_m: float,
        shortest_distance_m: float,
    ) -> float:
        """``sigma_j`` for a passenger still on board (Eq. 7).

        Assumes the taxi finishes their trip along the shortest path
        from the current drop-off point.
        """
        if shortest_distance_m <= 0:
            raise ValueError("shortest distance must be positive")
        projected = travelled_so_far_m + remaining_shortest_m
        detour = max(0.0, projected - shortest_distance_m)
        return self._eta + detour / shortest_distance_m

    def benefit(
        self,
        shortest_distances_m: Sequence[float],
        route_distance_m: float,
    ) -> float:
        """``B`` (Eq. 5): sum of individual fares minus the route fare."""
        individual = sum(self._schedule.fare(d) for d in shortest_distances_m)
        return individual - self._schedule.fare(route_distance_m)

    def settle(
        self,
        shortest_distances_m: Mapping[int, float],
        shared_distances_m: Mapping[int, float],
        route_distance_m: float,
    ) -> Settlement:
        """Settle a completed ridesharing episode (Eqs. 5-8).

        Parameters
        ----------
        shortest_distances_m:
            Per request: the direct shortest-path trip distance.
        shared_distances_m:
            Per request: the distance actually travelled on board.
        route_distance_m:
            Total distance the taxi drove for the episode.

        The benefit is clamped at zero: when sharing saved nothing
        (single passenger, or detours ate the gain) everyone simply
        pays the regular fare and the driver earns the metered route.
        """
        if set(shortest_distances_m) != set(shared_distances_m):
            raise ValueError("shortest and shared distance maps must cover the same requests")
        ids = sorted(shortest_distances_m)
        regular = {i: self._schedule.fare(shortest_distances_m[i]) for i in ids}
        route_fare = self._schedule.fare(route_distance_m)
        benefit = max(0.0, sum(regular.values()) - route_fare)

        sigmas = {
            i: self.detour_rate(shared_distances_m[i], shortest_distances_m[i]) for i in ids
        }
        sigma_total = sum(sigmas.values())
        charges: list[PassengerCharge] = []
        for i in ids:
            share = sigmas[i] / sigma_total if sigma_total > 0 else 0.0
            shared_fare = regular[i] - self._beta * benefit * share
            charges.append(
                PassengerCharge(
                    request_id=i,
                    regular_fare=regular[i],
                    shared_fare=shared_fare,
                    detour_rate=sigmas[i],
                )
            )
        driver_income = route_fare + (1.0 - self._beta) * benefit
        return Settlement(
            charges=tuple(charges),
            route_fare=route_fare,
            benefit=benefit,
            driver_income=driver_income,
        )

    def fare_at_dropoff(
        self,
        arriving_id: int,
        shortest_distances_m: Mapping[int, float],
        shared_distances_m: Mapping[int, float],
        projected_extra_m: Mapping[int, float],
        route_distance_m: float,
    ) -> float:
        """On-line fare for the passenger being dropped off (Eq. 8).

        ``projected_extra_m`` gives, for each co-rider still on board,
        the shortest-path distance from the arriving passenger's
        destination to theirs (the ``R^s_(d_ri, d_rj)`` term of Eq. 7);
        the arriving passenger's own entry must be 0.
        """
        ids = sorted(shortest_distances_m)
        if arriving_id not in shortest_distances_m:
            raise ValueError("arriving passenger missing from the distance maps")
        regular = {i: self._schedule.fare(shortest_distances_m[i]) for i in ids}
        benefit = max(0.0, sum(regular.values()) - self._schedule.fare(route_distance_m))
        sigmas: dict[int, float] = {}
        for i in ids:
            if i == arriving_id:
                sigmas[i] = self.detour_rate(shared_distances_m[i], shortest_distances_m[i])
            else:
                sigmas[i] = self.projected_detour_rate(
                    shared_distances_m[i],
                    projected_extra_m.get(i, 0.0),
                    shortest_distances_m[i],
                )
        sigma_total = sum(sigmas.values())
        share = sigmas[arriving_id] / sigma_total if sigma_total > 0 else 0.0
        return regular[arriving_id] - self._beta * benefit * share
