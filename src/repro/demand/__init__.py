"""Demand substrate: ride requests, trip datasets, synthetic trace generation."""

from .dataset import TripDataset
from .prediction import DemandPredictor
from .generator import (
    WEEKEND_HOURLY_PROFILE,
    WORKDAY_HOURLY_PROFILE,
    ZONE_TYPES,
    ChengduLikeDemand,
    Zone,
)
from .request import RequestError, RideRequest, ServedTrip, TripRecord

__all__ = [
    "ChengduLikeDemand",
    "DemandPredictor",
    "RequestError",
    "RideRequest",
    "ServedTrip",
    "TripDataset",
    "TripRecord",
    "WEEKEND_HOURLY_PROFILE",
    "WORKDAY_HOURLY_PROFILE",
    "ZONE_TYPES",
    "Zone",
]
