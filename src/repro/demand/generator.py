"""Synthetic Chengdu-like taxi demand generator.

The paper's workload is the Didi GAIA Chengdu trace: 7.07M transactions
inside the 2nd Ring Road, with a pronounced morning peak on workdays and
a flatter weekend profile (their Fig. 5).  That trace is proprietary, so
this module synthesises a statistically similar one:

* the city is covered by *zones* (anchored at hotspot vertices) with
  types — residential, business, leisure, transport hub;
* each hour of day has per-zone-type origin weights and an
  origin-type -> destination-type flow matrix (commuting towards
  business zones in the morning peak, outward in the evening, diffuse
  on weekends), which gives vertices *learnable transition patterns* —
  exactly what bipartite map partitioning and probabilistic routing
  consume;
* arrivals are Poisson within each hour with rates following an
  hourly profile calibrated to the paper's peak/non-peak contrast
  (8–9 a.m. workday is the busiest hour; 10–11 a.m. weekend carries
  roughly half that load).

Generated records carry the same fields as the GAIA data (trip id, taxi
id, release time, origin/destination vertices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..network.graph import RoadNetwork
from .dataset import TripDataset

ZONE_TYPES = ("residential", "business", "leisure", "transport")

#: Hourly demand multipliers (0-23h) for workdays, shaped after the
#: paper's Fig. 5(a): morning peak 8-9, evening peak 17-19, quiet night.
WORKDAY_HOURLY_PROFILE = np.array(
    [
        0.15, 0.10, 0.08, 0.08, 0.10, 0.25, 0.55, 0.85,
        1.00, 0.90, 0.70, 0.65, 0.70, 0.68, 0.66, 0.68,
        0.75, 0.92, 0.95, 0.80, 0.60, 0.45, 0.35, 0.22,
    ]
)

#: Weekend profile: later, flatter, with a broad midday plateau.
WEEKEND_HOURLY_PROFILE = np.array(
    [
        0.20, 0.15, 0.10, 0.08, 0.08, 0.12, 0.25, 0.40,
        0.50, 0.52, 0.52, 0.55, 0.58, 0.60, 0.60, 0.58,
        0.58, 0.60, 0.62, 0.60, 0.55, 0.48, 0.40, 0.30,
    ]
)


def _flow_matrix(hour: int, weekend: bool, concentration: float = 1.0) -> np.ndarray:
    """Origin-type -> destination-type flow shares for one hour of day.

    Rows/columns follow :data:`ZONE_TYPES`.  Workday mornings push
    residential -> business/transport; evenings reverse the commute;
    weekends favour leisure.  ``concentration > 1`` sharpens the flows
    (urban demand runs along a few corridors; Chengdu's morning peak is
    strongly commute-dominated), ``< 1`` flattens them.  Rows are
    normalised to sum to 1.
    """
    base = np.full((4, 4), 0.10)
    if weekend:
        if 9 <= hour < 21:
            base[:, 2] += 0.45  # everyone heads to leisure zones
            base[0, 2] += 0.15
        else:
            base[:, 0] += 0.40  # heading home
    else:
        if 6 <= hour < 10:
            base[0, 1] += 0.60  # residential -> business commute
            base[0, 3] += 0.15
            base[3, 1] += 0.30
        elif 16 <= hour < 20:
            base[1, 0] += 0.60  # business -> residential commute
            base[1, 2] += 0.15
            base[2, 0] += 0.25
        else:
            base[:, 1] += 0.15
            base[:, 0] += 0.15
    if concentration != 1.0:  # repro-lint: disable=REP004 reason=exact default sentinel; base**1.0 is the identity, any perturbed value takes the power path
        base = base ** concentration
    return base / base.sum(axis=1, keepdims=True)


def _origin_weights(hour: int, weekend: bool) -> np.ndarray:
    """Relative pick-up intensity per zone type for one hour of day."""
    if weekend:
        if 9 <= hour < 21:
            w = np.array([0.9, 0.3, 1.2, 0.6])
        else:
            w = np.array([0.5, 0.2, 1.0, 0.5])
    else:
        if 6 <= hour < 10:
            w = np.array([1.5, 0.3, 0.3, 0.9])
        elif 16 <= hour < 20:
            w = np.array([0.4, 1.5, 0.6, 0.8])
        else:
            w = np.array([0.8, 0.8, 0.6, 0.6])
    return w / w.sum()


@dataclass(frozen=True, slots=True)
class Zone:
    """A demand hotspot: an anchor vertex, a spread, and a type."""

    zone_id: int
    zone_type: str
    anchor: int
    member_vertices: np.ndarray


class ChengduLikeDemand:
    """Zone-structured demand model over a road network.

    Parameters
    ----------
    network:
        The road network vertices are drawn from.
    num_zones:
        Number of hotspot zones; each is assigned a type round-robin
        with residential over-represented (as in real cities).
    vertices_per_zone:
        How many nearby vertices each zone spans (demand is spread over
        them with distance-decaying weights).
    hourly_requests:
        Expected number of requests in the single busiest hour (workday
        8-9 a.m.).  The paper's busiest hour has 29,534 requests on the
        full-size network; scale this down proportionally to network
        size for tractable experiments.
    num_taxis_in_trace:
        Taxi-id space for the generated historical records.
    seed:
        Deterministic seed for zone placement and trip sampling.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_zones: int = 12,
        vertices_per_zone: int = 16,
        hourly_requests: int = 1200,
        num_taxis_in_trace: int = 400,
        concentration: float = 4.0,
        seed: int = 42,
    ) -> None:
        if num_zones < len(ZONE_TYPES):
            raise ValueError(f"need at least {len(ZONE_TYPES)} zones, one per type")
        if hourly_requests < 1:
            raise ValueError("hourly_requests must be positive")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self._network = network
        self._seed = int(seed)
        self._num_zones = int(num_zones)
        self._vertices_per_zone = int(vertices_per_zone)
        self._rng = np.random.default_rng(seed)
        self._hourly_requests = int(hourly_requests)
        self._num_taxis = int(num_taxis_in_trace)
        self._concentration = float(concentration)
        self._zones = self._place_zones(num_zones, vertices_per_zone)
        self._zone_ids_by_type = {
            zt: [z.zone_id for z in self._zones if z.zone_type == zt] for zt in ZONE_TYPES
        }
        # Stable zone-to-zone affinities create commute corridors: trips
        # from a given zone concentrate on a few partner zones, which is
        # both realistic and what makes transition patterns learnable.
        raw = self._rng.exponential(1.0, size=(num_zones, num_zones)) ** self._concentration
        np.fill_diagonal(raw, raw.min() * 0.1)
        self._zone_affinity = raw

    # ------------------------------------------------------------------
    def _place_zones(self, num_zones: int, vertices_per_zone: int) -> list[Zone]:
        """Pick well-spread anchor vertices and grow zones around them."""
        xy = np.asarray(self._network.xy)
        n = xy.shape[0]
        vertices_per_zone = min(vertices_per_zone, n)

        # Farthest-point sampling spreads anchors across the city.
        anchors = [int(self._rng.integers(n))]
        d2 = ((xy - xy[anchors[0]]) ** 2).sum(axis=1)
        for _ in range(1, num_zones):
            anchors.append(int(np.argmax(d2)))
            d2 = np.minimum(d2, ((xy - xy[anchors[-1]]) ** 2).sum(axis=1))

        # Type assignment: residential twice as common as the others.
        type_cycle = ("residential", "business", "residential", "leisure", "transport")
        zones = []
        for zid, anchor in enumerate(anchors):
            dist = np.hypot(xy[:, 0] - xy[anchor, 0], xy[:, 1] - xy[anchor, 1])
            members = np.argsort(dist)[:vertices_per_zone]
            zones.append(
                Zone(
                    zone_id=zid,
                    zone_type=type_cycle[zid % len(type_cycle)],
                    anchor=anchor,
                    member_vertices=members,
                )
            )
        return zones

    @property
    def network(self) -> RoadNetwork:
        """The underlying road network."""
        return self._network

    @property
    def zones(self) -> list[Zone]:
        """All demand zones."""
        return list(self._zones)

    def _sample_vertex_in_zone(self, zone: Zone, rng: np.random.Generator) -> int:
        """Pick a zone vertex with weight decaying by rank from the anchor.

        The decay exponent 1.5 keeps most of a zone's demand on its few
        innermost vertices — real pick-up heat maps are sharply peaked
        (taxi queues, mall entrances), and this is what probabilistic
        routing learns to aim for.
        """
        m = zone.member_vertices.shape[0]
        weights = (1.0 + np.arange(m)) ** -1.5
        weights /= weights.sum()
        return int(zone.member_vertices[rng.choice(m, p=weights)])

    def _sample_zone_of_type(
        self,
        zone_type: str,
        rng: np.random.Generator,
        origin_zone: Zone | None = None,
    ) -> Zone:
        """Pick a zone of the given type; when an origin zone is known,
        weight the choice by the stable zone-to-zone affinities."""
        ids = self._zone_ids_by_type[zone_type]
        if origin_zone is None or len(ids) == 1:
            return self._zones[ids[int(rng.integers(len(ids)))]]
        weights = self._zone_affinity[origin_zone.zone_id, ids]
        weights = weights / weights.sum()
        return self._zones[ids[int(rng.choice(len(ids), p=weights))]]

    # ------------------------------------------------------------------
    def generate_hour(
        self,
        day: int,
        hour: int,
        weekend: bool = False,
        rate_scale: float = 1.0,
    ) -> list[tuple[float, int, int]]:
        """Sample ``(release_time, origin, destination)`` trips for one hour.

        Release times are absolute seconds from the start of ``day 0``.
        """
        profile = WEEKEND_HOURLY_PROFILE if weekend else WORKDAY_HOURLY_PROFILE
        lam = self._hourly_requests * profile[hour % 24] * rate_scale
        rng = np.random.default_rng(self._rng.integers(2**63) ^ (day * 24 + hour))
        count = int(rng.poisson(lam))
        flows = _flow_matrix(hour % 24, weekend, self._concentration)
        origin_w = _origin_weights(hour % 24, weekend)
        type_index = {zt: i for i, zt in enumerate(ZONE_TYPES)}

        start = (day * 24 + hour) * 3600.0
        times = np.sort(rng.uniform(start, start + 3600.0, size=count))
        trips = []
        for t in times:
            o_type = ZONE_TYPES[int(rng.choice(4, p=origin_w))]
            d_type = ZONE_TYPES[int(rng.choice(4, p=flows[type_index[o_type]]))]
            o_zone = self._sample_zone_of_type(o_type, rng)
            d_zone = self._sample_zone_of_type(d_type, rng, origin_zone=o_zone)
            origin = self._sample_vertex_in_zone(o_zone, rng)
            destination = self._sample_vertex_in_zone(d_zone, rng)
            if origin == destination:
                continue
            trips.append((float(t), origin, destination))
        return trips

    def generate_window(
        self,
        day: int,
        start_hour: int,
        num_hours: int,
        weekend: bool = False,
        rate_scale: float = 1.0,
    ) -> TripDataset:
        """Generate a :class:`TripDataset` covering consecutive hours."""
        rows: list[tuple[float, int, int]] = []
        for h in range(start_hour, start_hour + num_hours):
            rows.extend(self.generate_hour(day, h, weekend=weekend, rate_scale=rate_scale))
        return self._to_dataset(rows)

    def generate_days(
        self,
        num_days: int,
        weekend_days: set[int] | None = None,
        rate_scale: float = 1.0,
    ) -> TripDataset:
        """Generate several full days; days in ``weekend_days`` use the
        weekend profile (defaults to days 5 and 6 of each week)."""
        if weekend_days is None:
            weekend_days = {d for d in range(num_days) if d % 7 in (5, 6)}
        rows: list[tuple[float, int, int]] = []
        for day in range(num_days):
            weekend = day in weekend_days
            for hour in range(24):
                rows.extend(self.generate_hour(day, hour, weekend=weekend, rate_scale=rate_scale))
        return self._to_dataset(rows)

    def spec_dict(self) -> dict:
        """The parameters that fully determine generated traces.

        Used by the artifact store to key persisted traces: two
        generators with equal spec dicts (on equal networks) produce
        bit-identical datasets from the same call sequence.
        """
        return {
            "num_zones": self._num_zones,
            "vertices_per_zone": self._vertices_per_zone,
            "hourly_requests": self._hourly_requests,
            "num_taxis_in_trace": self._num_taxis,
            "concentration": self._concentration,
            "seed": self._seed,
        }

    def replay_days_rng(self, num_days: int, num_rows: int) -> None:
        """Advance the internal RNG exactly as ``generate_days`` would.

        The artifact store persists generated traces; a process that
        loads one skips the sampling but must leave this object's RNG in
        the *same state* a fresh generation would have, so later calls
        (e.g. ``generate_window`` for the Fig. 21 workloads) stay
        bit-identical between cold and warm processes.  ``generate_days``
        consumes exactly one scalar seed draw per generated hour (the
        per-trip sampling runs on derived generators) plus one taxi-id
        array draw of the final row count — replayed here verbatim.
        """
        for _ in range(24 * num_days):
            self._rng.integers(2**63)
        self._rng.integers(0, max(self._num_taxis, 1), size=num_rows)

    def _to_dataset(self, rows: list[tuple[float, int, int]]) -> TripDataset:
        rng = self._rng
        m = len(rows)
        taxi_ids = rng.integers(0, max(self._num_taxis, 1), size=m)
        return TripDataset(
            release_times=np.array([r[0] for r in rows], dtype=np.float64),
            origins=np.array([r[1] for r in rows], dtype=np.int64),
            destinations=np.array([r[2] for r in rows], dtype=np.int64),
            taxi_ids=np.asarray(taxi_ids, dtype=np.int64),
        )
