"""Hour-aware demand prediction over map partitions.

The paper mines *where* trips go (the transition model); its non-peak
premise — taxis seeking street hails where demand is — also needs
*when and where trips start*.  :class:`DemandPredictor` estimates the
historical pick-up intensity of every map partition for every hour of
the week-day/week-end cycle, so probabilistic cruising can aim at the
areas that are hot *now* rather than hot on average.  This is the
simple statistical end of the demand-prediction literature the paper
cites ([40], [46], [52]); plugging in a learned model only requires the
same ``rate(partition, hour)`` interface.
"""

from __future__ import annotations

import numpy as np

from ..demand.dataset import TripDataset


class DemandPredictor:
    """Per-partition, per-hour pick-up rates from historical trips.

    Parameters
    ----------
    rates:
        ``(num_partitions, 24)`` array: mean pick-ups per hour-of-day
        in each partition, averaged over the observed days.
    """

    def __init__(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=np.float64)
        if rates.ndim != 2 or rates.shape[1] != 24:
            raise ValueError("rates must be (num_partitions, 24)")
        if (rates < 0).any():
            raise ValueError("rates must be non-negative")
        self._rates = rates

    @classmethod
    def fit(
        cls,
        history: TripDataset,
        partition_of_vertex: np.ndarray,
        num_partitions: int,
    ) -> "DemandPredictor":
        """Estimate rates from a historical trip dataset.

        ``partition_of_vertex`` maps every road vertex to its partition
        (a :class:`~repro.partitioning.bipartite.MapPartitioning`'s
        ``labels``).  Each trip contributes one pick-up to its origin's
        partition at its release hour; counts are averaged over the
        number of days each hour-of-day was observed.
        """
        labels = np.asarray(partition_of_vertex, dtype=np.int64)
        counts = np.zeros((num_partitions, 24), dtype=np.float64)
        if len(history):
            hours_abs = (history.release_times // 3600.0).astype(np.int64)
            hod = hours_abs % 24
            parts = labels[history.origins]
            np.add.at(counts, (parts, hod), 1.0)
            # Days observed per hour-of-day.
            first = int(history.release_times.min() // 86400)
            last = int(history.release_times.max() // 86400)
            days = max(1, last - first + 1)
            counts /= days
        return cls(counts)

    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Number of partitions covered."""
        return self._rates.shape[0]

    @property
    def rates(self) -> np.ndarray:
        """Read-only view of the ``(num_partitions, 24)`` rate table.

        This is the whole fitted state, so persisting it (the artifact
        store does) and reconstructing via ``DemandPredictor(rates)``
        is an exact round trip.
        """
        view = self._rates.view()
        view.flags.writeable = False
        return view

    def rate(self, partition: int, hour: int) -> float:
        """Expected pick-ups per hour in ``partition`` at hour-of-day."""
        return float(self._rates[partition, hour % 24])

    def rate_at_time(self, partition: int, t_seconds: float) -> float:
        """Rate at an absolute simulation time."""
        return self.rate(partition, int(t_seconds // 3600) % 24)

    def hot_partitions(self, hour: int, top: int = 5) -> list[int]:
        """The ``top`` partitions by pick-up rate at hour-of-day.

        ``kind="stable"`` is load-bearing, not a style choice: the
        fitted rates are tie-heavy (sparse histories leave many
        partitions with identical counts), and NumPy's default
        introsort breaks ties by whatever the pivot pattern happens to
        be for that dtype/size — which can differ across NumPy
        versions.  A stable sort on the negated column fixes the tie
        order to ascending partition id, so hotspot rankings (and
        every decision downstream of them) are reproducible anywhere.
        """
        column = self._rates[:, hour % 24]
        order = np.argsort(-column, kind="stable")
        return [int(z) for z in order[:top] if column[z] > 0]

    def share(self, partition: int, hour: int) -> float:
        """Partition's share of the city's pick-ups at hour-of-day."""
        total = float(self._rates[:, hour % 24].sum())
        if total <= 0:
            return 0.0
        return self.rate(partition, hour) / total

    def memory_bytes(self) -> int:
        """Footprint of the rate table."""
        return self._rates.nbytes
